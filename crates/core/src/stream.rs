//! On-disk / in-memory layout of an AE-SZ compressed stream.
//!
//! The stream mirrors the paper's description of the compressed data: "a
//! header containing metadata (with trivial space cost), lossy compressed
//! latent vectors from autoencoders, and quantization bins (losslessly
//! encoded)" — plus the block means of mean-predicted blocks and the escaped
//! unpredictable values that SZ-style quantization always needs.
//!
//! # Validated header invariants
//!
//! [`Stream::from_bytes`] is the trust boundary of the decoder: it fully
//! validates the header *before* any payload byte is interpreted, so
//! truncated or hostile input yields a [`DecompressError`] instead of a
//! panic or an attacker-sized allocation. A successfully parsed [`Stream`]
//! guarantees:
//!
//! * the input starts with [`MAGIC`] (version 3: followed by the 16-byte
//!   [`ModelId`] of the encoding network) or [`MAGIC_V2`] (version 2: no
//!   model id, parsed as "model id unknown");
//! * the rank is 1–3, and the total element count neither overflows `usize`
//!   nor exceeds [`MAX_FIELD_ELEMS`];
//! * `data_min`/`data_max` are finite with `data_min <= data_max`, and
//!   `rel_eb` is finite and positive;
//! * `block_size >= 1` with `block_size^rank` (the padded block volume) no
//!   larger than [`MAX_FIELD_ELEMS`], and `latent_dim >= 1`; `quant_bins`
//!   is in `4..=2³¹` and `latent_eb_fraction` is finite and non-negative
//!   (the header is self-describing: decoding never depends on the
//!   decoder's own configuration of these parameters);
//! * the stored block count equals the block-grid size implied by the dims
//!   and `block_size`, and the packed predictor flags for exactly that many
//!   blocks are present, with no flag holding the invalid bit pattern
//!   `0b11`;
//! * a stream whose policy is `LorenzoOnly` contains no AE-predicted block;
//! * every section length prefix fits inside the remaining input (a corrupt
//!   varint cannot drive a huge `Vec` or a slice panic), and no trailing
//!   bytes follow the last section.
//!
//! Payload-level consistency (symbol counts vs. block geometry, escape
//! counts, latent payload size) is validated by
//! [`crate::AeSz::try_decompress`] before reconstruction starts.

use aesz_codec::varint::{read_f32, read_f64, read_uvarint, write_f32, write_f64, write_uvarint};
use aesz_tensor::Dims;

use crate::config::PredictorPolicy;
use crate::error::DecompressError;

/// Magic bytes identifying a current AE-SZ stream (version 3: the magic is
/// followed by the 16-byte content-addressed [`ModelId`] of the network that
/// encoded the stream, so a decoder can resolve the exact trained model —
/// or fail with a dedicated "missing model" error instead of decoding
/// garbage).
pub const MAGIC: &[u8; 8] = b"AESZ0003";

/// Magic bytes of the previous stream version, which carries no model id.
/// Still fully decodable: such streams parse with
/// [`Header::model_id`]` == None` ("model id unknown") and rely on the
/// geometry checks alone, exactly as they did before version 3.
pub const MAGIC_V2: &[u8; 8] = b"AESZ0002";

pub use aesz_metrics::container::MAX_FIELD_ELEMS;
use aesz_metrics::container::MODEL_ID_LEN;
pub use aesz_metrics::ModelId;

/// Per-block predictor choice, two bits per block in the stream.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BlockPredictor {
    /// Autoencoder prediction from the lossily compressed latent vector.
    Ae = 0,
    /// Classic first-order Lorenzo within the block.
    Lorenzo = 1,
    /// Constant block-mean prediction ("mean-Lorenzo").
    Mean = 2,
}

impl BlockPredictor {
    /// Decode a two-bit flag; the fourth bit pattern (`0b11`) is unassigned
    /// and returns `None` so corrupted flags fail decoding instead of being
    /// silently misread as a valid predictor.
    pub fn try_from_bits(bits: u8) -> Option<BlockPredictor> {
        match bits & 0b11 {
            0 => Some(BlockPredictor::Ae),
            1 => Some(BlockPredictor::Lorenzo),
            2 => Some(BlockPredictor::Mean),
            _ => None,
        }
    }
}

/// Parsed header of an AE-SZ stream.
#[derive(Debug, Clone, PartialEq)]
pub struct Header {
    /// Content-addressed id of the trained model that encoded the stream
    /// (`None` for version-2 streams, which predate model provenance).
    /// Serialized immediately after the magic so it can be peeked without
    /// parsing the rest of the header ([`peek_model_id`]).
    pub model_id: Option<ModelId>,
    /// Extents of the original field.
    pub dims: Dims,
    /// Global minimum of the original field (for the [-1, 1] normalization).
    pub data_min: f32,
    /// Global maximum of the original field.
    pub data_max: f32,
    /// Value-range-relative error bound the stream was compressed with.
    pub rel_eb: f64,
    /// Block edge length.
    pub block_size: usize,
    /// Latent vector length of the model that produced the stream.
    pub latent_dim: usize,
    /// Number of linear quantization bins the residual codes were written
    /// with; the decoder must dequantize with the same bin count.
    pub quant_bins: usize,
    /// Fraction of the data error bound used for the latent quantizer
    /// ([`crate::AeSzConfig::latent_eb_fraction`] at compression time); the
    /// decoder must reconstruct latents at the same scale.
    pub latent_eb_fraction: f64,
    /// Predictor policy used (Adaptive / AeOnly / LorenzoOnly).
    pub policy: PredictorPolicy,
}

/// Fully parsed AE-SZ stream: header, per-block predictor flags, and the four
/// compressed payload sections.
#[derive(Debug, Clone, PartialEq)]
pub struct Stream {
    /// Stream header.
    pub header: Header,
    /// Predictor choice per block, in block-grid scan order.
    pub predictors: Vec<BlockPredictor>,
    /// "custo."-encoded latent indices of the AE-predicted blocks.
    pub latent_section: Vec<u8>,
    /// zlite-compressed little-endian means of the mean-predicted blocks.
    pub means_section: Vec<u8>,
    /// Huffman+zlite-encoded quantization codes of every block, concatenated.
    pub codes_section: Vec<u8>,
    /// zlite-compressed little-endian unpredictable values.
    pub unpredictable_section: Vec<u8>,
}

fn write_dims(out: &mut Vec<u8>, dims: Dims) {
    let e = dims.extents();
    out.push(e.len() as u8);
    for &d in &e {
        write_uvarint(out, d as u64);
    }
}

fn read_dims(buf: &[u8], pos: &mut usize) -> Result<Dims, DecompressError> {
    let rank = usize::from(
        *buf.get(*pos)
            .ok_or(DecompressError::Truncated("rank byte"))?,
    );
    *pos += 1;
    if !(1..=3).contains(&rank) {
        return Err(DecompressError::InvalidHeader("rank must be 1-3"));
    }
    let mut e = Vec::with_capacity(rank);
    for _ in 0..rank {
        let ext = read_uvarint(buf, pos).ok_or(DecompressError::Truncated("extent"))?;
        if ext > MAX_FIELD_ELEMS as u64 {
            return Err(DecompressError::InvalidHeader("extent too large"));
        }
        e.push(
            usize::try_from(ext).map_err(|_| DecompressError::InvalidHeader("extent too large"))?,
        );
    }
    e.iter()
        .try_fold(1usize, |acc, &ext| acc.checked_mul(ext))
        .filter(|&n| n <= MAX_FIELD_ELEMS)
        .ok_or(DecompressError::InvalidHeader("field too large"))?;
    match rank {
        1 => Ok(Dims::d1(e[0])),
        2 => Ok(Dims::d2(e[0], e[1])),
        _ => Ok(Dims::d3(e[0], e[1], e[2])),
    }
}

fn write_section(out: &mut Vec<u8>, section: &[u8]) {
    write_uvarint(out, section.len() as u64);
    out.extend_from_slice(section);
}

fn read_section(
    buf: &[u8],
    pos: &mut usize,
    what: &'static str,
) -> Result<Vec<u8>, DecompressError> {
    let len = read_uvarint(buf, pos).ok_or(DecompressError::Truncated(what))?;
    // Reject length prefixes that exceed the remaining input outright; the
    // declared length is never trusted into an allocation or slice index.
    let remaining = buf.len() - *pos;
    if len > remaining as u64 {
        return Err(DecompressError::Truncated(what));
    }
    let len = usize::try_from(len).map_err(|_| DecompressError::Truncated(what))?;
    let bytes = buf
        .get(*pos..*pos + len)
        .ok_or(DecompressError::Truncated(what))?
        .to_vec();
    *pos += len;
    Ok(bytes)
}

impl Stream {
    /// Serialize the stream to bytes: version 3 (magic + model id) when the
    /// header carries a model id, the id-less version 2 layout otherwise.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::new();
        match self.header.model_id {
            Some(id) => {
                out.extend_from_slice(MAGIC);
                out.extend_from_slice(id.as_bytes());
            }
            None => out.extend_from_slice(MAGIC_V2),
        }
        write_dims(&mut out, self.header.dims);
        write_f32(&mut out, self.header.data_min);
        write_f32(&mut out, self.header.data_max);
        write_f64(&mut out, self.header.rel_eb);
        write_uvarint(&mut out, self.header.block_size as u64);
        write_uvarint(&mut out, self.header.latent_dim as u64);
        write_uvarint(&mut out, self.header.quant_bins as u64);
        write_f64(&mut out, self.header.latent_eb_fraction);
        out.push(match self.header.policy {
            PredictorPolicy::Adaptive => 0,
            PredictorPolicy::AeOnly => 1,
            PredictorPolicy::LorenzoOnly => 2,
        });
        write_uvarint(&mut out, self.predictors.len() as u64);
        // Two bits per block, packed four to a byte.
        let mut packed = vec![0u8; self.predictors.len().div_ceil(4)];
        for (i, &p) in self.predictors.iter().enumerate() {
            if let Some(slot) = packed.get_mut(i / 4) {
                *slot |= (p as u8) << ((i % 4) * 2);
            }
        }
        out.extend_from_slice(&packed);
        write_section(&mut out, &self.latent_section);
        write_section(&mut out, &self.means_section);
        write_section(&mut out, &self.codes_section);
        write_section(&mut out, &self.unpredictable_section);
        out
    }

    /// Parse and validate a stream from bytes produced by
    /// [`Stream::to_bytes`]. See the module docs for the invariants a
    /// returned `Stream` satisfies.
    pub fn from_bytes(bytes: &[u8]) -> Result<Stream, DecompressError> {
        if bytes.len() < MAGIC.len() {
            return Err(DecompressError::Truncated("magic"));
        }
        let mut pos = MAGIC.len();
        let model_id = match &bytes[..MAGIC.len()] {
            m if m == MAGIC => {
                let id = bytes
                    .get(pos..)
                    .and_then(ModelId::from_prefix)
                    .ok_or(DecompressError::Truncated("model id"))?;
                pos += MODEL_ID_LEN;
                Some(id)
            }
            m if m == MAGIC_V2 => None,
            _ => return Err(DecompressError::BadMagic),
        };
        let dims = read_dims(bytes, &mut pos)?;
        let data_min = read_f32(bytes, &mut pos).ok_or(DecompressError::Truncated("data_min"))?;
        let data_max = read_f32(bytes, &mut pos).ok_or(DecompressError::Truncated("data_max"))?;
        if !data_min.is_finite() || !data_max.is_finite() || data_min > data_max {
            return Err(DecompressError::InvalidHeader("data range"));
        }
        let rel_eb = read_f64(bytes, &mut pos).ok_or(DecompressError::Truncated("rel_eb"))?;
        if !rel_eb.is_finite() || rel_eb <= 0.0 {
            return Err(DecompressError::InvalidHeader("rel_eb"));
        }
        // Validate wire integers in the u64 domain *before* narrowing; an
        // `as usize` here would wrap on 32-bit targets and let a value like
        // 2^32 + 8 masquerade as a tiny block size.
        let block_size_raw =
            read_uvarint(bytes, &mut pos).ok_or(DecompressError::Truncated("block_size"))?;
        if block_size_raw == 0 || block_size_raw > MAX_FIELD_ELEMS as u64 {
            return Err(DecompressError::InvalidHeader("block_size"));
        }
        // Reconstruction allocates padded block_size^rank buffers; cap that
        // volume like the field itself so a tiny hostile stream (e.g. a 1×1
        // field claiming a 2³⁰ block edge) cannot abort on allocation.
        let rank_exp =
            u32::try_from(dims.rank()).map_err(|_| DecompressError::InvalidHeader("rank"))?;
        if block_size_raw
            .checked_pow(rank_exp)
            .is_none_or(|v| v > MAX_FIELD_ELEMS as u64)
        {
            return Err(DecompressError::InvalidHeader("block volume"));
        }
        let block_size = usize::try_from(block_size_raw)
            .map_err(|_| DecompressError::InvalidHeader("block_size"))?;
        let latent_dim_raw =
            read_uvarint(bytes, &mut pos).ok_or(DecompressError::Truncated("latent_dim"))?;
        if latent_dim_raw == 0 || latent_dim_raw > MAX_FIELD_ELEMS as u64 {
            return Err(DecompressError::InvalidHeader("latent_dim"));
        }
        let latent_dim = usize::try_from(latent_dim_raw)
            .map_err(|_| DecompressError::InvalidHeader("latent_dim"))?;
        let quant_bins =
            read_uvarint(bytes, &mut pos).ok_or(DecompressError::Truncated("quant_bins"))?;
        // The quantizer requires at least 4 bins; the cap keeps the value
        // within usize on every target (codes are u32 anyway).
        if !(4..=1 << 31).contains(&quant_bins) {
            return Err(DecompressError::InvalidHeader("quant_bins"));
        }
        let quant_bins = usize::try_from(quant_bins)
            .map_err(|_| DecompressError::InvalidHeader("quant_bins"))?;
        let latent_eb_fraction =
            read_f64(bytes, &mut pos).ok_or(DecompressError::Truncated("latent_eb_fraction"))?;
        if !latent_eb_fraction.is_finite() || latent_eb_fraction < 0.0 {
            return Err(DecompressError::InvalidHeader("latent_eb_fraction"));
        }
        let policy = match bytes.get(pos).ok_or(DecompressError::Truncated("policy"))? {
            0 => PredictorPolicy::Adaptive,
            1 => PredictorPolicy::AeOnly,
            2 => PredictorPolicy::LorenzoOnly,
            _ => return Err(DecompressError::InvalidHeader("policy value")),
        };
        pos += 1;
        let n_blocks_raw =
            read_uvarint(bytes, &mut pos).ok_or(DecompressError::Truncated("n_blocks"))?;
        // The block count is implied by the dims and block size; a stream
        // claiming anything else is corrupt, and rejecting it here bounds
        // the predictor-flag allocation by the (already capped) field size.
        // The comparison stays in u64 so a count like 2^32 + k cannot alias
        // the expected value on 32-bit targets.
        let expected_blocks: usize = dims
            .block_grid(block_size)
            .iter()
            .try_fold(1usize, |acc, &g| acc.checked_mul(g))
            .ok_or(DecompressError::InvalidHeader("block grid overflow"))?;
        if n_blocks_raw != expected_blocks as u64 {
            return Err(DecompressError::Inconsistent(
                "block count does not match dims / block_size",
            ));
        }
        let n_blocks = expected_blocks;
        let packed_len = n_blocks.div_ceil(4);
        let packed = bytes
            .get(pos..pos + packed_len)
            .ok_or(DecompressError::Truncated("predictor flags"))?;
        pos += packed_len;
        let mut predictors = Vec::with_capacity(n_blocks.min(MAX_FIELD_ELEMS));
        for i in 0..n_blocks {
            let byte = *packed
                .get(i / 4)
                .ok_or(DecompressError::Truncated("predictor flags"))?;
            let p = BlockPredictor::try_from_bits(byte >> ((i % 4) * 2))
                .ok_or(DecompressError::InvalidHeader("predictor flag 0b11"))?;
            if p == BlockPredictor::Ae && policy == PredictorPolicy::LorenzoOnly {
                return Err(DecompressError::Inconsistent(
                    "AE-predicted block in a LorenzoOnly stream",
                ));
            }
            predictors.push(p);
        }
        let latent_section = read_section(bytes, &mut pos, "latent section")?;
        let means_section = read_section(bytes, &mut pos, "means section")?;
        let codes_section = read_section(bytes, &mut pos, "codes section")?;
        let unpredictable_section = read_section(bytes, &mut pos, "unpredictable section")?;
        if pos != bytes.len() {
            return Err(DecompressError::Inconsistent("trailing bytes"));
        }
        Ok(Stream {
            header: Header {
                model_id,
                dims,
                data_min,
                data_max,
                rel_eb,
                block_size,
                latent_dim,
                quant_bins,
                latent_eb_fraction,
                policy,
            },
            predictors,
            latent_section,
            means_section,
            codes_section,
            unpredictable_section,
        })
    }
}

/// Read only the model id of a serialized AE-SZ stream (payload bytes, no
/// container frame), without parsing or validating anything else — the cheap
/// pre-dispatch hook a registry uses to resolve the right trained model.
/// Returns `None` for version-2 streams (no id) and for anything too short
/// or mis-tagged to carry one.
#[deprecated(
    note = "use `aesz_metrics::container::peek`, which reports the model id (and the codec, \
            version and payload length) from a complete framed stream; this payload-level \
            peek survives only as a shim"
)]
pub fn peek_model_id(bytes: &[u8]) -> Option<ModelId> {
    if bytes.len() < MAGIC.len() || &bytes[..MAGIC.len()] != MAGIC {
        return None;
    }
    ModelId::from_prefix(&bytes[MAGIC.len()..])
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_stream() -> Stream {
        Stream {
            header: Header {
                model_id: None,
                dims: Dims::d2(100, 200),
                data_min: -1.5,
                data_max: 2.5,
                rel_eb: 1e-3,
                block_size: 32,
                latent_dim: 16,
                quant_bins: 65_536,
                latent_eb_fraction: 0.1,
                policy: PredictorPolicy::Adaptive,
            },
            // 100×200 with 32-blocks → 4×7 grid = 28 blocks.
            predictors: (0..28)
                .map(|i| match i % 3 {
                    0 => BlockPredictor::Ae,
                    1 => BlockPredictor::Lorenzo,
                    _ => BlockPredictor::Mean,
                })
                .collect(),
            latent_section: vec![1, 2, 3],
            means_section: vec![4, 5],
            codes_section: vec![6, 7, 8, 9],
            unpredictable_section: vec![],
        }
    }

    #[test]
    fn roundtrip_preserves_everything() {
        let s = sample_stream();
        let bytes = s.to_bytes();
        let parsed = Stream::from_bytes(&bytes).unwrap();
        assert_eq!(parsed, s);
    }

    #[test]
    #[allow(deprecated)] // pins the shim's behavior until it is removed
    fn v3_streams_carry_a_peekable_model_id() {
        let mut s = sample_stream();
        let id = ModelId::of(b"the trained network");
        s.header.model_id = Some(id);
        let bytes = s.to_bytes();
        assert_eq!(&bytes[..8], MAGIC);
        assert_eq!(peek_model_id(&bytes), Some(id));
        let parsed = Stream::from_bytes(&bytes).unwrap();
        assert_eq!(parsed, s);
        for len in 0..bytes.len() {
            assert!(
                Stream::from_bytes(&bytes[..len]).is_err(),
                "prefix of {len} bytes parsed as a complete v3 stream"
            );
        }

        // Version-2 streams decode as "model id unknown" and peek as None.
        let v2 = sample_stream().to_bytes();
        assert_eq!(&v2[..8], MAGIC_V2);
        assert_eq!(peek_model_id(&v2), None);
        assert_eq!(Stream::from_bytes(&v2).unwrap().header.model_id, None);
        assert_eq!(peek_model_id(&bytes[..10]), None);
        assert_eq!(peek_model_id(b"garbage"), None);
    }

    #[test]
    fn payload_magic_is_pinned_to_the_container_peek() {
        // `aesz_metrics::container::peek` sniffs the AE-SZ payload magic to
        // report a framed stream's model id without depending on this crate;
        // the two constants must never drift apart.
        assert_eq!(aesz_metrics::container::AESZ_PAYLOAD_MAGIC, *MAGIC);
    }

    #[test]
    fn v3_header_costs_exactly_the_model_id() {
        let mut s = sample_stream();
        let v2_len = s.to_bytes().len();
        s.header.model_id = Some(ModelId::of(b"net"));
        assert_eq!(s.to_bytes().len(), v2_len + 16);
    }

    #[test]
    fn header_overhead_is_trivial() {
        // The paper calls the header "trivial space cost"; ours is tens of bytes.
        let s = sample_stream();
        let empty_payload = s.to_bytes().len()
            - s.latent_section.len()
            - s.means_section.len()
            - s.codes_section.len()
            - s.unpredictable_section.len();
        assert!(empty_payload < 64, "header is {empty_payload} bytes");
    }

    #[test]
    fn corrupt_magic_and_truncation_are_rejected() {
        let s = sample_stream();
        let mut bytes = s.to_bytes();
        assert!(Stream::from_bytes(&bytes[..10]).is_err());
        bytes[0] = b'X';
        assert_eq!(Stream::from_bytes(&bytes), Err(DecompressError::BadMagic));
    }

    #[test]
    fn every_truncated_prefix_is_rejected() {
        let bytes = sample_stream().to_bytes();
        for len in 0..bytes.len() {
            assert!(
                Stream::from_bytes(&bytes[..len]).is_err(),
                "prefix of {len} bytes parsed as a complete stream"
            );
        }
    }

    #[test]
    fn all_predictor_policies_roundtrip() {
        for policy in [
            PredictorPolicy::Adaptive,
            PredictorPolicy::AeOnly,
            PredictorPolicy::LorenzoOnly,
        ] {
            let mut s = sample_stream();
            s.header.policy = policy;
            if policy == PredictorPolicy::LorenzoOnly {
                // LorenzoOnly streams must not contain AE blocks.
                for p in s.predictors.iter_mut() {
                    if *p == BlockPredictor::Ae {
                        *p = BlockPredictor::Lorenzo;
                    }
                }
            }
            let parsed = Stream::from_bytes(&s.to_bytes()).unwrap();
            assert_eq!(parsed.header.policy, policy);
        }
    }

    #[test]
    fn predictor_flags_pack_two_bits_each() {
        let s = sample_stream();
        let parsed = Stream::from_bytes(&s.to_bytes()).unwrap();
        assert_eq!(parsed.predictors, s.predictors);
    }

    #[test]
    fn invalid_flag_pattern_is_an_error() {
        assert_eq!(
            BlockPredictor::try_from_bits(0b00),
            Some(BlockPredictor::Ae)
        );
        assert_eq!(
            BlockPredictor::try_from_bits(0b01),
            Some(BlockPredictor::Lorenzo)
        );
        assert_eq!(
            BlockPredictor::try_from_bits(0b10),
            Some(BlockPredictor::Mean)
        );
        assert_eq!(BlockPredictor::try_from_bits(0b11), None);

        // Force the first block's flag to 0b11 in a serialized stream.
        let s = sample_stream();
        let mut bytes = s.to_bytes();
        let flags_at = bytes.len()
            - s.unpredictable_section.len()
            - 1
            - s.codes_section.len()
            - 1
            - s.means_section.len()
            - 1
            - s.latent_section.len()
            - 1
            - s.predictors.len().div_ceil(4);
        bytes[flags_at] |= 0b11;
        assert_eq!(
            Stream::from_bytes(&bytes),
            Err(DecompressError::InvalidHeader("predictor flag 0b11"))
        );
    }

    #[test]
    fn invalid_header_fields_are_rejected() {
        let base = sample_stream();

        let mut s = base.clone();
        s.header.block_size = 0;
        assert!(matches!(
            Stream::from_bytes(&s.to_bytes()),
            Err(DecompressError::InvalidHeader("block_size"))
        ));

        let mut s = base.clone();
        s.header.latent_dim = 0;
        assert!(matches!(
            Stream::from_bytes(&s.to_bytes()),
            Err(DecompressError::InvalidHeader("latent_dim"))
        ));

        let mut s = base.clone();
        s.header.quant_bins = 3;
        assert!(matches!(
            Stream::from_bytes(&s.to_bytes()),
            Err(DecompressError::InvalidHeader("quant_bins"))
        ));

        let mut s = base.clone();
        s.header.latent_eb_fraction = f64::NAN;
        assert!(matches!(
            Stream::from_bytes(&s.to_bytes()),
            Err(DecompressError::InvalidHeader("latent_eb_fraction"))
        ));
        s.header.latent_eb_fraction = -0.1;
        assert!(Stream::from_bytes(&s.to_bytes()).is_err());

        let mut s = base.clone();
        s.header.rel_eb = f64::NAN;
        assert!(Stream::from_bytes(&s.to_bytes()).is_err());
        s.header.rel_eb = -1.0;
        assert!(Stream::from_bytes(&s.to_bytes()).is_err());

        let mut s = base.clone();
        s.header.data_min = f32::INFINITY;
        assert!(Stream::from_bytes(&s.to_bytes()).is_err());
        s.header.data_min = 5.0;
        s.header.data_max = -5.0;
        assert!(Stream::from_bytes(&s.to_bytes()).is_err());
    }

    #[test]
    fn oversized_block_volume_is_rejected() {
        // A 1×1 field with a 2³⁰ block edge has a block grid of exactly one
        // block, so it passes the count check — but reconstructing it would
        // allocate a (2³⁰)² padded buffer. The volume cap must reject it.
        let s = Stream {
            header: Header {
                model_id: None,
                dims: Dims::d2(1, 1),
                data_min: 0.0,
                data_max: 1.0,
                rel_eb: 1e-3,
                block_size: 1 << 30,
                latent_dim: 1,
                quant_bins: 65_536,
                latent_eb_fraction: 0.1,
                policy: PredictorPolicy::Adaptive,
            },
            predictors: vec![BlockPredictor::Lorenzo],
            latent_section: vec![],
            means_section: vec![],
            codes_section: vec![],
            unpredictable_section: vec![],
        };
        assert_eq!(
            Stream::from_bytes(&s.to_bytes()),
            Err(DecompressError::InvalidHeader("block volume"))
        );
    }

    #[test]
    fn block_count_must_match_the_grid() {
        let mut s = sample_stream();
        s.predictors.pop();
        assert!(matches!(
            Stream::from_bytes(&s.to_bytes()),
            Err(DecompressError::Inconsistent(_))
        ));
        let mut s = sample_stream();
        s.predictors.push(BlockPredictor::Lorenzo);
        assert!(Stream::from_bytes(&s.to_bytes()).is_err());
    }

    #[test]
    fn lorenzo_only_streams_may_not_contain_ae_blocks() {
        let mut s = sample_stream();
        s.header.policy = PredictorPolicy::LorenzoOnly;
        assert_eq!(
            Stream::from_bytes(&s.to_bytes()),
            Err(DecompressError::Inconsistent(
                "AE-predicted block in a LorenzoOnly stream"
            ))
        );
    }

    #[test]
    fn oversized_dims_and_section_lengths_are_rejected() {
        // Dims whose product overflows / exceeds the cap.
        let mut hostile = Vec::new();
        hostile.extend_from_slice(MAGIC);
        hostile.extend_from_slice(&[0u8; MODEL_ID_LEN]); // v3 model id slot
        hostile.push(3);
        for _ in 0..3 {
            aesz_codec::varint::write_uvarint(&mut hostile, (MAX_FIELD_ELEMS as u64) - 1);
        }
        hostile.extend_from_slice(&[0u8; 64]);
        assert!(matches!(
            Stream::from_bytes(&hostile),
            Err(DecompressError::InvalidHeader("field too large"))
        ));

        // A section length prefix far beyond the remaining input.
        let s = sample_stream();
        let good = s.to_bytes();
        let latent_len_at = good.len()
            - s.unpredictable_section.len()
            - 1
            - s.codes_section.len()
            - 1
            - s.means_section.len()
            - 1
            - s.latent_section.len()
            - 1;
        let mut bytes = good[..latent_len_at].to_vec();
        aesz_codec::varint::write_uvarint(&mut bytes, u64::MAX / 2);
        assert!(matches!(
            Stream::from_bytes(&bytes),
            Err(DecompressError::Truncated("latent section"))
        ));
    }

    #[test]
    fn trailing_bytes_are_rejected() {
        let mut bytes = sample_stream().to_bytes();
        bytes.push(0);
        assert_eq!(
            Stream::from_bytes(&bytes),
            Err(DecompressError::Inconsistent("trailing bytes"))
        );
    }
}
