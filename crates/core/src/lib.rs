//! # aesz-core
//!
//! AE-SZ: the autoencoder-based error-bounded lossy compressor that is the
//! primary contribution of the paper (Section IV). The compressor follows
//! Algorithm 1:
//!
//! 1. split the input field into fixed-size blocks (32×32 in 2D, 8×8×8 in 3D),
//! 2. per block, predict with (a) the pre-trained SWAE decoder fed an
//!    error-bounded lossily compressed latent vector and (b) the classic /
//!    mean Lorenzo predictor, and keep whichever has the lower l1 loss,
//! 3. linear-scale-quantize the residuals against the user error bound
//!    (65,536 bins, unpredictable escape),
//! 4. entropy-code everything with Huffman + the zlite (Zstd stand-in) stage.
//!
//! The compressed stream holds a small header, the per-block predictor
//! choices, the lossily compressed latent vectors of AE-predicted blocks
//! ("custo." codec, Section IV-E), the block means of mean-predicted blocks,
//! the quantization codes, and the escaped (unpredictable) values.
//!
//! The trained network is stored *separately* from the compressed data (see
//! [`aesz_nn::serialize`]) because one model serves every snapshot of an
//! application — exactly the offline-training / online-compression split of
//! Fig. 2.

#![forbid(unsafe_code)]

// Wire-parsing modules (the `aesz-lint` deny-set, see the repo-root
// lint.toml) must not panic on attacker-shaped bytes; the clippy headers
// below enforce the same contract (rule R1) at the compiler level. Tests
// are exempt via clippy.toml's allow-*-in-tests keys.
#[deny(
    clippy::unwrap_used,
    clippy::expect_used,
    clippy::panic,
    clippy::unreachable,
    clippy::todo,
    clippy::unimplemented
)]
pub mod compressor;
pub mod config;
pub mod error;
pub mod latent;
#[deny(
    clippy::unwrap_used,
    clippy::expect_used,
    clippy::panic,
    clippy::unreachable,
    clippy::todo,
    clippy::unimplemented
)]
pub mod stream;
pub mod training;

pub use compressor::{AeSz, CompressionReport};
pub use config::{AeSzConfig, PredictorPolicy};
pub use error::DecompressError;
pub use latent::LatentCodec;
// Deprecated shim (see `aesz_metrics::container::peek`); re-exported so the
// old `aesz_core::peek_model_id` path keeps resolving for downstream users.
#[allow(deprecated)]
pub use stream::peek_model_id;
pub use training::{train_swae_for_field, training_blocks_from_field};
