//! The AE-SZ compressor / decompressor (Algorithm 1 of the paper).

use aesz_codec::{compress_bytes, decode_codes, decompress_bytes, encode_codes};
use aesz_metrics::Compressor;
use aesz_nn::models::conv_ae::ConvAutoencoder;
use aesz_predictors::{lorenzo, mean, QuantizedBlock, Quantizer};
use aesz_tensor::{BlockSpec, Dims, Field};

use crate::config::{AeSzConfig, PredictorPolicy};
use crate::latent::LatentCodec;
use crate::stream::{BlockPredictor, Header, Stream};

/// Per-compression statistics (drives Fig. 10 and the section-size analysis).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CompressionReport {
    /// Total number of blocks in the field.
    pub total_blocks: usize,
    /// Blocks predicted by the autoencoder.
    pub ae_blocks: usize,
    /// Blocks predicted by classic Lorenzo.
    pub lorenzo_blocks: usize,
    /// Blocks predicted by their mean.
    pub mean_blocks: usize,
    /// Total compressed size in bytes.
    pub compressed_bytes: usize,
    /// Bytes spent on the lossily compressed latent vectors.
    pub latent_bytes: usize,
    /// Bytes spent on the entropy-coded quantization codes.
    pub codes_bytes: usize,
    /// Bytes spent on block means.
    pub means_bytes: usize,
    /// Bytes spent on escaped (unpredictable) values.
    pub unpredictable_bytes: usize,
}

impl CompressionReport {
    /// Fraction of blocks predicted by the autoencoder (the y-axis of Fig. 10).
    pub fn ae_fraction(&self) -> f64 {
        if self.total_blocks == 0 {
            0.0
        } else {
            self.ae_blocks as f64 / self.total_blocks as f64
        }
    }
}

/// The AE-SZ error-bounded lossy compressor: a pre-trained blockwise SWAE
/// predictor combined with the (mean-)Lorenzo predictor and SZ-style
/// quantization + entropy coding.
pub struct AeSz {
    model: ConvAutoencoder,
    config: AeSzConfig,
    last_report: CompressionReport,
}

/// Batch size used when pushing blocks through the network.
const AE_BATCH: usize = 32;

impl AeSz {
    /// Build a compressor around a pre-trained model.
    ///
    /// # Panics
    /// Panics when the model's block size does not match the configuration.
    pub fn new(model: ConvAutoencoder, config: AeSzConfig) -> Self {
        assert_eq!(
            model.config().block_size,
            config.block_size,
            "model was trained for block size {}, config asks for {}",
            model.config().block_size,
            config.block_size
        );
        AeSz {
            model,
            config,
            last_report: CompressionReport::default(),
        }
    }

    /// The compressor configuration.
    pub fn config(&self) -> &AeSzConfig {
        &self.config
    }

    /// Change the predictor policy (used by the Fig. 11 ablation).
    pub fn set_policy(&mut self, policy: PredictorPolicy) {
        self.config.policy = policy;
    }

    /// The underlying trained model.
    pub fn model(&self) -> &ConvAutoencoder {
        &self.model
    }

    /// Statistics of the most recent [`AeSz::compress`] call.
    pub fn last_report(&self) -> CompressionReport {
        self.last_report
    }

    fn abs_bound(rel_eb: f64, lo: f32, hi: f32) -> f64 {
        let range = (hi - lo) as f64;
        if range > 0.0 {
            rel_eb * range
        } else {
            rel_eb.max(1e-12)
        }
    }

    fn rank(dims: Dims) -> usize {
        dims.rank()
    }

    /// Extract the valid-region values of a padded block buffer.
    fn padded_to_valid(padded: &[f32], spec: &BlockSpec, rank: usize) -> Vec<f32> {
        let b = spec.nominal;
        let mut out = Vec::with_capacity(spec.valid_len());
        match rank {
            1 => {
                out.extend_from_slice(&padded[..spec.size[0]]);
            }
            2 => {
                for y in 0..spec.size[0] {
                    for x in 0..spec.size[1] {
                        out.push(padded[y * b + x]);
                    }
                }
            }
            _ => {
                for z in 0..spec.size[0] {
                    for y in 0..spec.size[1] {
                        for x in 0..spec.size[2] {
                            out.push(padded[(z * b + y) * b + x]);
                        }
                    }
                }
            }
        }
        out
    }

    /// Scatter valid-region values back into a padded block buffer.
    fn valid_to_padded(valid: &[f32], spec: &BlockSpec, rank: usize) -> Vec<f32> {
        let b = spec.nominal;
        let mut out = vec![0.0f32; spec.padded_len(rank)];
        let mut it = valid.iter();
        match rank {
            1 => {
                for slot in out.iter_mut().take(spec.size[0]) {
                    *slot = *it.next().expect("length checked");
                }
            }
            2 => {
                for y in 0..spec.size[0] {
                    for x in 0..spec.size[1] {
                        out[y * b + x] = *it.next().expect("length checked");
                    }
                }
            }
            _ => {
                for z in 0..spec.size[0] {
                    for y in 0..spec.size[1] {
                        for x in 0..spec.size[2] {
                            out[(z * b + y) * b + x] = *it.next().expect("length checked");
                        }
                    }
                }
            }
        }
        out
    }

    /// Compress a field, returning the stream bytes and the per-block report.
    pub fn compress_with_report(
        &mut self,
        field: &Field,
        rel_eb: f64,
    ) -> (Vec<u8>, CompressionReport) {
        assert!(
            rel_eb > 0.0 && rel_eb.is_finite(),
            "error bound must be positive"
        );
        let dims = field.dims();
        let rank = Self::rank(dims);
        let bs = self.config.block_size;
        let (lo, hi) = field.min_max();
        let range = (hi - lo) as f64;
        let abs_eb = Self::abs_bound(rel_eb, lo, hi);
        let quantizer = Quantizer::new(abs_eb, self.config.quant_bins);
        // Latent error bound: fraction of the *normalised-domain* bound
        // (normalised range is 2, so e_norm = 2·rel_eb).
        let latent_eb = (self.config.latent_eb_fraction * 2.0 * rel_eb).max(1e-9);
        let latent_codec = LatentCodec::new(latent_eb);
        let latent_dim = self.model.config().latent_dim;
        let block_len = self.model.config().block_len();

        let specs: Vec<BlockSpec> = field.blocks(bs).collect();
        let n_blocks = specs.len();

        // --- AE path (skipped entirely under the LorenzoOnly policy) ---
        // Normalise every padded block, push through encoder, quantize the
        // latents, decode the quantized latents, denormalise the predictions.
        let use_ae = self.config.policy != PredictorPolicy::LorenzoOnly && range > 0.0;
        let mut ae_preds: Vec<Vec<f32>> = Vec::new();
        let mut latent_indices_per_block: Vec<Vec<i64>> = Vec::new();
        if use_ae {
            ae_preds.reserve(n_blocks);
            latent_indices_per_block.reserve(n_blocks);
            let norm = |v: f32| 2.0 * (v - lo) / range as f32 - 1.0;
            for chunk in specs.chunks(AE_BATCH) {
                let mut batch = Vec::with_capacity(chunk.len() * block_len);
                for spec in chunk {
                    let blk = field.extract_block(spec);
                    batch.extend(blk.data.iter().map(|&v| norm(v)));
                }
                let latents = self.model.encode_blocks(&batch, chunk.len());
                // Quantize + dequantize the latents (the z → z_d path of Fig. 5).
                let mut zd = Vec::with_capacity(latents.len());
                for bi in 0..chunk.len() {
                    let z = &latents[bi * latent_dim..(bi + 1) * latent_dim];
                    let idx = latent_codec.quantize(z);
                    zd.extend(latent_codec.dequantize(&idx));
                    latent_indices_per_block.push(idx);
                }
                let decoded = self.model.decode_latents(&zd, chunk.len());
                for bi in 0..chunk.len() {
                    let pred_norm = &decoded[bi * block_len..(bi + 1) * block_len];
                    // Denormalise back to the data domain.
                    let pred: Vec<f32> = pred_norm
                        .iter()
                        .map(|&v| (v + 1.0) * 0.5 * range as f32 + lo)
                        .collect();
                    ae_preds.push(pred);
                }
            }
        }

        // --- Per-block predictor selection and quantization ---
        let mut predictors = Vec::with_capacity(n_blocks);
        let mut all_codes: Vec<u32> = Vec::with_capacity(field.len());
        let mut unpredictable: Vec<f32> = Vec::new();
        let mut means: Vec<f32> = Vec::new();
        let mut kept_latent_indices: Vec<i64> = Vec::new();
        let mut report = CompressionReport {
            total_blocks: n_blocks,
            ..CompressionReport::default()
        };

        for (bi, spec) in specs.iter().enumerate() {
            let valid = field.read_block_valid(spec);
            // Candidate losses.
            let ae_loss = if use_ae {
                let pred_valid = Self::padded_to_valid(&ae_preds[bi], spec, rank);
                Some(
                    valid
                        .iter()
                        .zip(pred_valid.iter())
                        .map(|(&a, &b)| (a as f64 - b as f64).abs())
                        .sum::<f64>(),
                )
            } else {
                None
            };
            let lorenzo_preds = lorenzo::ideal_predictions(&valid, &spec.size);
            let lorenzo_loss: f64 = valid
                .iter()
                .zip(lorenzo_preds.iter())
                .map(|(&a, &b)| (a as f64 - b as f64).abs())
                .sum();
            let mean_value = mean::block_mean(&valid);
            let mean_loss = mean::mean_l1_loss(&valid);

            let choice = match self.config.policy {
                PredictorPolicy::AeOnly if use_ae => BlockPredictor::Ae,
                PredictorPolicy::LorenzoOnly | PredictorPolicy::AeOnly => {
                    if mean_loss < lorenzo_loss {
                        BlockPredictor::Mean
                    } else {
                        BlockPredictor::Lorenzo
                    }
                }
                PredictorPolicy::Adaptive => {
                    let lor_best = lorenzo_loss.min(mean_loss);
                    match ae_loss {
                        Some(al) if al < lor_best => BlockPredictor::Ae,
                        _ => {
                            if mean_loss < lorenzo_loss {
                                BlockPredictor::Mean
                            } else {
                                BlockPredictor::Lorenzo
                            }
                        }
                    }
                }
            };

            let block = match choice {
                BlockPredictor::Ae => {
                    report.ae_blocks += 1;
                    kept_latent_indices.extend_from_slice(&latent_indices_per_block[bi]);
                    let pred_valid = Self::padded_to_valid(&ae_preds[bi], spec, rank);
                    let (blk, _) = quantizer.quantize_buffer(&valid, &pred_valid);
                    blk
                }
                BlockPredictor::Lorenzo => {
                    report.lorenzo_blocks += 1;
                    let (blk, _) = lorenzo::compress(&valid, &spec.size, &quantizer);
                    blk
                }
                BlockPredictor::Mean => {
                    report.mean_blocks += 1;
                    means.push(mean_value);
                    let (blk, _) = mean::compress(&valid, mean_value, &quantizer);
                    blk
                }
            };
            predictors.push(choice);
            all_codes.extend_from_slice(&block.codes);
            unpredictable.extend_from_slice(&block.unpredictable);
        }

        // --- Assemble the stream ---
        let latent_section = latent_codec.encode(&kept_latent_indices, latent_dim);
        let means_bytes: Vec<u8> = means.iter().flat_map(|v| v.to_le_bytes()).collect();
        let means_section = compress_bytes(&means_bytes);
        let codes_section = encode_codes(&all_codes);
        let unpred_bytes: Vec<u8> = unpredictable.iter().flat_map(|v| v.to_le_bytes()).collect();
        let unpredictable_section = compress_bytes(&unpred_bytes);

        report.latent_bytes = latent_section.len();
        report.codes_bytes = codes_section.len();
        report.means_bytes = means_section.len();
        report.unpredictable_bytes = unpredictable_section.len();

        let stream = Stream {
            header: Header {
                dims,
                data_min: lo,
                data_max: hi,
                rel_eb,
                block_size: bs,
                latent_dim,
                policy: self.config.policy,
            },
            predictors,
            latent_section,
            means_section,
            codes_section,
            unpredictable_section,
        };
        let bytes = stream.to_bytes();
        report.compressed_bytes = bytes.len();
        self.last_report = report;
        (bytes, report)
    }

    /// Reconstruct a field from a compressed stream.
    pub fn decompress_stream(&mut self, bytes: &[u8]) -> Field {
        let stream = Stream::from_bytes(bytes).expect("valid AE-SZ stream");
        let h = &stream.header;
        let dims = h.dims;
        let rank = Self::rank(dims);
        let bs = h.block_size;
        let (lo, hi) = (h.data_min, h.data_max);
        let range = (hi - lo) as f64;
        let abs_eb = Self::abs_bound(h.rel_eb, lo, hi);
        let quantizer = Quantizer::new(abs_eb, self.config.quant_bins);
        let latent_eb = (self.config.latent_eb_fraction * 2.0 * h.rel_eb).max(1e-9);
        let latent_codec = LatentCodec::new(latent_eb);
        let block_len = self.model.config().block_len();

        let all_codes = decode_codes(&stream.codes_section).expect("codes section");
        let unpred_bytes = decompress_bytes(&stream.unpredictable_section).expect("unpredictable");
        let unpredictable: Vec<f32> = unpred_bytes
            .chunks_exact(4)
            .map(|c| f32::from_le_bytes([c[0], c[1], c[2], c[3]]))
            .collect();
        let means_bytes = decompress_bytes(&stream.means_section).expect("means section");
        let means: Vec<f32> = means_bytes
            .chunks_exact(4)
            .map(|c| f32::from_le_bytes([c[0], c[1], c[2], c[3]]))
            .collect();
        let (latent_indices, latent_dim) = latent_codec
            .decode(&stream.latent_section)
            .expect("latent section");

        let mut field = Field::zeros(dims);
        let specs: Vec<BlockSpec> = field.blocks(bs).collect();
        assert_eq!(specs.len(), stream.predictors.len(), "block count mismatch");

        // Decode the AE predictions for every AE block, in batches.
        let ae_block_ids: Vec<usize> = stream
            .predictors
            .iter()
            .enumerate()
            .filter(|(_, &p)| p == BlockPredictor::Ae)
            .map(|(i, _)| i)
            .collect();
        assert_eq!(
            latent_indices.len(),
            ae_block_ids.len() * latent_dim,
            "latent payload does not match the number of AE blocks"
        );
        let mut ae_pred_by_block: std::collections::HashMap<usize, Vec<f32>> =
            std::collections::HashMap::with_capacity(ae_block_ids.len());
        for (chunk_no, chunk) in ae_block_ids.chunks(AE_BATCH).enumerate() {
            let mut zd = Vec::with_capacity(chunk.len() * latent_dim);
            for (k, _) in chunk.iter().enumerate() {
                let offset = (chunk_no * AE_BATCH + k) * latent_dim;
                let idx = &latent_indices[offset..offset + latent_dim];
                zd.extend(latent_codec.dequantize(idx));
            }
            let decoded = self.model.decode_latents(&zd, chunk.len());
            for (k, &bid) in chunk.iter().enumerate() {
                let pred_norm = &decoded[k * block_len..(k + 1) * block_len];
                let pred: Vec<f32> = pred_norm
                    .iter()
                    .map(|&v| (v + 1.0) * 0.5 * range as f32 + lo)
                    .collect();
                ae_pred_by_block.insert(bid, pred);
            }
        }

        // Walk the blocks, consuming codes / unpredictables / means in order.
        let mut code_pos = 0usize;
        let mut unpred_pos = 0usize;
        let mut mean_pos = 0usize;
        for (bi, spec) in specs.iter().enumerate() {
            let n = spec.valid_len();
            let codes = &all_codes[code_pos..code_pos + n];
            code_pos += n;
            let escapes = codes.iter().filter(|&&c| c == 0).count();
            let blk = QuantizedBlock {
                codes: codes.to_vec(),
                unpredictable: unpredictable[unpred_pos..unpred_pos + escapes].to_vec(),
            };
            unpred_pos += escapes;
            let valid = match stream.predictors[bi] {
                BlockPredictor::Ae => {
                    let pred = &ae_pred_by_block[&bi];
                    let pred_valid = Self::padded_to_valid(pred, spec, rank);
                    quantizer.dequantize_buffer(&blk, &pred_valid)
                }
                BlockPredictor::Lorenzo => lorenzo::decompress(&blk, &spec.size, &quantizer),
                BlockPredictor::Mean => {
                    let m = means[mean_pos];
                    mean_pos += 1;
                    mean::decompress(&blk, m, &quantizer)
                }
            };
            let padded = Self::valid_to_padded(&valid, spec, rank);
            field.write_block(spec, &padded);
        }
        field
    }
}

impl Compressor for AeSz {
    fn name(&self) -> &'static str {
        "AE-SZ"
    }

    fn compress(&mut self, field: &Field, rel_eb: f64) -> Vec<u8> {
        self.compress_with_report(field, rel_eb).0
    }

    fn decompress(&mut self, bytes: &[u8]) -> Field {
        self.decompress_stream(bytes)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::training::{train_swae_for_field, TrainingOptions};
    use aesz_datagen::Application;
    use aesz_metrics::verify_error_bound;

    /// A quickly trained 2D compressor shared by the tests in this module.
    fn quick_aesz_2d(field: &Field) -> AeSz {
        let opts = TrainingOptions {
            block_size: 16,
            latent_dim: 8,
            channels: vec![4, 8],
            epochs: 3,
            max_blocks: 96,
            seed: 17,
            ..TrainingOptions::default_for_rank(2)
        };
        let model = train_swae_for_field(std::slice::from_ref(field), &opts);
        AeSz::new(
            model,
            AeSzConfig {
                block_size: 16,
                ..AeSzConfig::default_2d()
            },
        )
    }

    #[test]
    fn roundtrip_respects_error_bound_2d() {
        let field = Application::CesmCldhgh.generate(Dims::d2(64, 64), 51);
        let mut aesz = quick_aesz_2d(&field);
        for rel_eb in [1e-2, 1e-3] {
            let bytes = aesz.compress(&field, rel_eb);
            let recon = aesz.decompress(&bytes);
            let abs = rel_eb * field.value_range() as f64;
            verify_error_bound(field.as_slice(), recon.as_slice(), abs, abs * 1e-3)
                .expect("error bound must hold");
            assert!(bytes.len() < field.len() * 4, "must actually compress");
        }
    }

    #[test]
    fn report_accounts_for_every_block() {
        let field = Application::CesmCldhgh.generate(Dims::d2(64, 48), 52);
        let mut aesz = quick_aesz_2d(&field);
        let (_, report) = aesz.compress_with_report(&field, 1e-2);
        assert_eq!(
            report.ae_blocks + report.lorenzo_blocks + report.mean_blocks,
            report.total_blocks
        );
        assert_eq!(report.total_blocks, field.block_count(16));
        assert!(report.compressed_bytes > 0);
        assert!(report.ae_fraction() >= 0.0 && report.ae_fraction() <= 1.0);
    }

    #[test]
    fn policy_ablation_changes_block_assignment() {
        let field = Application::CesmCldhgh.generate(Dims::d2(64, 64), 53);
        let mut aesz = quick_aesz_2d(&field);
        aesz.set_policy(PredictorPolicy::AeOnly);
        let (_, r_ae) = aesz.compress_with_report(&field, 1e-2);
        assert_eq!(r_ae.ae_blocks, r_ae.total_blocks);
        aesz.set_policy(PredictorPolicy::LorenzoOnly);
        let (bytes, r_lor) = aesz.compress_with_report(&field, 1e-2);
        assert_eq!(r_lor.ae_blocks, 0);
        // Both policies must still satisfy the error bound.
        let recon = aesz.decompress(&bytes);
        let abs = 1e-2 * field.value_range() as f64;
        verify_error_bound(field.as_slice(), recon.as_slice(), abs, abs * 1e-3).unwrap();
    }

    #[test]
    fn constant_field_compresses_to_almost_nothing() {
        let field = Field::from_vec(Dims::d2(32, 32), vec![4.2; 1024]).unwrap();
        let mut aesz = quick_aesz_2d(&Application::CesmCldhgh.generate(Dims::d2(32, 32), 3));
        let bytes = aesz.compress(&field, 1e-3);
        let recon = aesz.decompress(&bytes);
        assert_eq!(recon.as_slice(), field.as_slice());
        assert!(
            bytes.len() < 300,
            "constant field produced {} bytes",
            bytes.len()
        );
    }

    #[test]
    fn finer_bounds_cost_more_bits() {
        let field = Application::CesmFreqsh.generate(Dims::d2(64, 64), 54);
        let mut aesz = quick_aesz_2d(&field);
        let coarse = aesz.compress(&field, 1e-1).len();
        let fine = aesz.compress(&field, 1e-4).len();
        assert!(fine > coarse, "fine {fine} <= coarse {coarse}");
    }
}
