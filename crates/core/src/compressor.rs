//! The AE-SZ compressor / decompressor (Algorithm 1 of the paper).
//!
//! Both directions are organized as a *fallible, parallel block pipeline*:
//!
//! * **Fallible** — both directions return `Result`. Compression rejects
//!   unusable bounds and non-finite fields with a [`CompressError`];
//!   [`AeSz::try_decompress`] validates the stream header and every
//!   payload-level invariant (code counts, escape counts, latent payload
//!   size, model geometry) and returns a [`DecompressError`] on any
//!   violation. The [`Compressor`] trait impl wraps the raw AE-SZ stream in
//!   the workspace container frame; the inherent methods work on the
//!   unframed stream.
//! * **Parallel** — the per-block predictor/quantization work is partitioned
//!   into contiguous chunks of [`AeSzConfig::chunk_blocks`] blocks and fanned
//!   out with rayon, while AE inference runs in wide batches of
//!   `AE_PARALLEL_BATCH` blocks (the convolution layers parallelize per
//!   sample; the batch is bounded so activation memory stays independent of
//!   the field size).
//!   Chunk outputs are merged in block order, so the parallel path produces
//!   **byte-identical** streams and reports to the serial reference
//!   ([`AeSz::compress_with_report_serial`] / [`AeSz::try_decompress_serial`]).

use aesz_codec::{compress_bytes, decode_codes_capped, decompress_bytes_capped, encode_codes};
use aesz_metrics::{CodecId, CompressError, Compressor, EmbeddedModel, ErrorBound, ModelId};
use aesz_nn::models::conv_ae::ConvAutoencoder;
use aesz_nn::serialize::save_model;
use aesz_nn::NnScratch;
use aesz_predictors::{lorenzo, mean, Quantizer};
use aesz_tensor::{BlockSpec, Dims, Field};
use rayon::prelude::*;

use crate::config::{AeSzConfig, PredictorPolicy};
use crate::error::DecompressError;
use crate::latent::LatentCodec;
use crate::stream::{BlockPredictor, Header, Stream, MAX_FIELD_ELEMS};

/// Per-compression statistics (drives Fig. 10 and the section-size analysis).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CompressionReport {
    /// Total number of blocks in the field.
    pub total_blocks: usize,
    /// Blocks predicted by the autoencoder.
    pub ae_blocks: usize,
    /// Blocks predicted by classic Lorenzo.
    pub lorenzo_blocks: usize,
    /// Blocks predicted by their mean.
    pub mean_blocks: usize,
    /// Total compressed size in bytes.
    pub compressed_bytes: usize,
    /// Bytes spent on the lossily compressed latent vectors.
    pub latent_bytes: usize,
    /// Bytes spent on the entropy-coded quantization codes.
    pub codes_bytes: usize,
    /// Bytes spent on block means.
    pub means_bytes: usize,
    /// Bytes spent on escaped (unpredictable) values.
    pub unpredictable_bytes: usize,
}

impl CompressionReport {
    /// Fraction of blocks predicted by the autoencoder (the y-axis of Fig. 10).
    pub fn ae_fraction(&self) -> f64 {
        if self.total_blocks == 0 {
            0.0
        } else {
            self.ae_blocks as f64 / self.total_blocks as f64
        }
    }
}

/// The AE-SZ error-bounded lossy compressor: a pre-trained blockwise SWAE
/// predictor combined with the (mean-)Lorenzo predictor and SZ-style
/// quantization + entropy coding.
///
/// Cloning deep-copies the model, so forked instances (see
/// [`Compressor::fork`]) encode and decode independently across threads.
#[derive(Clone)]
pub struct AeSz {
    model: ConvAutoencoder,
    /// Content-addressed id of `model`, computed once at construction and
    /// stamped into every stream this instance writes (hashing the weights
    /// per compression would be wasted work).
    model_id: ModelId,
    config: AeSzConfig,
    last_report: CompressionReport,
    /// Resident inference buffers; warm after the first batch, clone cold.
    scratch: AeSzScratch,
}

/// Per-instance buffers of the AE inference stages: the network scratch plus
/// the batch/latent/decode staging vectors that `ae_predict_blocks` and
/// `ae_decode_latents` cycle through. All reach their high-water mark on the
/// first batch, making AE inference allocation-free for the rest of the
/// field. Clones are cold — a [`Compressor::fork`] must not drag a sibling's
/// megabytes along; each fork warms its own, which is exactly the per-worker
/// residency model of `aesz serve`.
#[derive(Default)]
struct AeSzScratch {
    nn: NnScratch,
    batch: Vec<f32>,
    latents: Vec<f32>,
    zd: Vec<f32>,
    decoded: Vec<f32>,
}

impl Clone for AeSzScratch {
    fn clone(&self) -> Self {
        AeSzScratch::default()
    }
}

/// Batch size used by the serial reference path when pushing blocks through
/// the network.
const AE_BATCH: usize = 32;

/// Batch size of the parallel path's AE inference. Wide enough to keep every
/// core busy in the per-sample conv parallelism (and far wider than
/// [`AE_BATCH`]'s stop-and-go batching), but bounded so peak activation
/// memory stays independent of the field size. Batch partitioning provably
/// does not change the network outputs, so this only affects speed/memory.
const AE_PARALLEL_BATCH: usize = 1024;

/// Everything the per-block compression stage produces for one *chunk* of
/// blocks. Chunk-level outputs (instead of per-block `QuantizedBlock`s) keep
/// the hot loop at O(1) heap allocations per chunk: block-level buffers live
/// in [`BlockScratch`] and are appended here.
struct ChunkOut {
    /// `(predictor choice, block mean)` per block, in block order; the mean
    /// is meaningful only when the choice is [`BlockPredictor::Mean`].
    choices: Vec<(BlockPredictor, f32)>,
    codes: Vec<u32>,
    unpredictable: Vec<f32>,
}

/// Scratch buffers reused across every block of one chunk, so the per-block
/// predictor-selection/quantization loop performs no heap allocation after
/// the first block warms the buffers up.
#[derive(Default)]
struct BlockScratch {
    valid: Vec<f32>,
    pred_valid: Vec<f32>,
    codes: Vec<u32>,
    unpredictable: Vec<f32>,
    recon: Vec<f32>,
}

impl AeSz {
    /// Build a compressor around a pre-trained model.
    ///
    /// # Panics
    /// Panics when the model's block size does not match the configuration.
    pub fn new(model: ConvAutoencoder, config: AeSzConfig) -> Self {
        // lint:allow(R1): documented `# Panics` contract on a constructor that
        // takes programmer-supplied configuration, not untrusted wire input
        assert_eq!(
            model.config().block_size,
            config.block_size,
            "model was trained for block size {}, config asks for {}",
            model.config().block_size,
            config.block_size
        );
        let model_id = aesz_nn::serialize::model_id(&model);
        AeSz {
            model,
            model_id,
            config,
            last_report: CompressionReport::default(),
            scratch: AeSzScratch::default(),
        }
    }

    /// Build a compressor around a (typically deserialized) trained model
    /// with the default configuration for the model's rank, taking the block
    /// size from the model itself — the constructor the model store uses
    /// when all it has is a model file.
    pub fn from_model(model: ConvAutoencoder) -> Self {
        let mut config = match model.config().spatial_rank {
            3 => AeSzConfig::default_3d(),
            _ => AeSzConfig::default_2d(),
        };
        config.block_size = model.config().block_size;
        AeSz::new(model, config)
    }

    /// Content-addressed id of the model this instance encodes and decodes
    /// with (the id stamped into its streams).
    pub fn model_id(&self) -> ModelId {
        self.model_id
    }

    /// The compressor configuration.
    pub fn config(&self) -> &AeSzConfig {
        &self.config
    }

    /// Change the predictor policy (used by the Fig. 11 ablation).
    pub fn set_policy(&mut self, policy: PredictorPolicy) {
        self.config.policy = policy;
    }

    /// The underlying trained model.
    pub fn model(&self) -> &ConvAutoencoder {
        &self.model
    }

    /// Statistics of the most recent [`AeSz::compress`] call.
    pub fn last_report(&self) -> CompressionReport {
        self.last_report
    }

    /// Absolute error bound for a value-range-relative bound `rel_eb` on a
    /// field spanning `[lo, hi]`.
    ///
    /// # Degenerate-range contract
    /// For a constant (or empty) field `hi == lo`, a *relative* bound has no
    /// scale to be relative to. In that case `rel_eb` is interpreted as an
    /// **absolute** bound, floored at `1e-12` so the quantizer stays valid.
    /// Compression additionally stores constant fields through the mean
    /// predictor with the exact constant as the mean, so the reconstruction
    /// is bit-exact regardless of the bound.
    fn abs_bound(rel_eb: f64, lo: f32, hi: f32) -> f64 {
        let range = (hi - lo) as f64;
        if range > 0.0 {
            rel_eb * range
        } else {
            rel_eb.max(1e-12)
        }
    }

    fn rank(dims: Dims) -> usize {
        dims.rank()
    }

    /// Extract the valid-region values of a padded block buffer into a
    /// caller-owned buffer (cleared first) with row-contiguous copies.
    fn padded_to_valid_into(padded: &[f32], spec: &BlockSpec, rank: usize, out: &mut Vec<f32>) {
        let b = spec.nominal.max(1);
        out.clear();
        out.reserve(spec.valid_len());
        match rank {
            1 => {
                out.extend(padded.iter().take(spec.size[0]));
            }
            2 => {
                for row in padded.chunks(b).take(spec.size[0]) {
                    out.extend(row.iter().take(spec.size[1]));
                }
            }
            _ => {
                for plane in padded.chunks(b * b).take(spec.size[0]) {
                    for row in plane.chunks(b).take(spec.size[1]) {
                        out.extend(row.iter().take(spec.size[2]));
                    }
                }
            }
        }
    }

    /// Run every block through encoder → latent quantization → decoder in
    /// batches of `batch` blocks, returning the denormalised predictions and
    /// the quantized latent indices per block.
    fn ae_predict_blocks(
        &mut self,
        field: &Field,
        specs: &[BlockSpec],
        lo: f32,
        range: f64,
        latent_codec: &LatentCodec,
        batch: usize,
    ) -> (Vec<Vec<f32>>, Vec<Vec<i64>>) {
        let latent_dim = self.model.config().latent_dim;
        let block_len = self.model.config().block_len();
        let mut ae_preds = Vec::with_capacity(specs.len());
        let mut latent_indices_per_block = Vec::with_capacity(specs.len());
        let norm = |v: f32| 2.0 * (v - lo) / range as f32 - 1.0;
        let sc = &mut self.scratch;
        for chunk in specs.chunks(batch.max(1)) {
            sc.batch.clear();
            for spec in chunk {
                let blk = field.extract_block(spec);
                sc.batch.extend(blk.data.iter().map(|&v| norm(v)));
            }
            if self
                .model
                .encode_blocks_into(&sc.batch, chunk.len(), &mut sc.latents, &mut sc.nn)
                .is_err()
            {
                // Unreachable: the batch is shaped by the loop above. Fall
                // back to zero latents so downstream shapes stay consistent.
                sc.latents.clear();
                sc.latents.resize(chunk.len() * latent_dim, 0.0);
            }
            // Quantize + dequantize the latents (the z → z_d path of Fig. 5).
            sc.zd.clear();
            for z in sc.latents.chunks(latent_dim.max(1)).take(chunk.len()) {
                let idx = latent_codec.quantize(z);
                sc.zd.extend(latent_codec.dequantize(&idx));
                latent_indices_per_block.push(idx);
            }
            if self
                .model
                .decode_latents_into(&sc.zd, chunk.len(), &mut sc.decoded, &mut sc.nn)
                .is_err()
            {
                // Unreachable: the latents are shaped by the quantize loop.
                sc.decoded.clear();
                sc.decoded.resize(chunk.len() * block_len, 0.0);
            }
            for pred_norm in sc.decoded.chunks(block_len.max(1)).take(chunk.len()) {
                // Denormalise back to the data domain.
                let pred: Vec<f32> = pred_norm
                    .iter()
                    .map(|&v| (v + 1.0) * 0.5 * range as f32 + lo)
                    .collect();
                ae_preds.push(pred);
            }
        }
        (ae_preds, latent_indices_per_block)
    }

    /// Decode the latent indices of the AE-predicted blocks (one model-sized
    /// latent vector per block) back into denormalised block predictions, in
    /// batches of `batch` blocks.
    fn ae_decode_latents(
        &mut self,
        latent_indices: &[i64],
        lo: f32,
        range: f64,
        latent_codec: &LatentCodec,
        batch: usize,
    ) -> Vec<Vec<f32>> {
        let latent_dim = self.model.config().latent_dim.max(1);
        let block_len = self.model.config().block_len();
        debug_assert_eq!(latent_indices.len() % latent_dim, 0);
        let n_ae = latent_indices.len() / latent_dim;
        let mut preds = Vec::with_capacity(n_ae.min(MAX_FIELD_ELEMS));
        let batch = batch.max(1);
        let sc = &mut self.scratch;
        for group in latent_indices.chunks(batch * latent_dim) {
            let n = group.len() / latent_dim;
            sc.zd.clear();
            for idx in group.chunks(latent_dim) {
                sc.zd.extend(latent_codec.dequantize(idx));
            }
            if self
                .model
                .decode_latents_into(&sc.zd, n, &mut sc.decoded, &mut sc.nn)
                .is_err()
            {
                // Unreachable: the latents are shaped by the dequantize loop.
                sc.decoded.clear();
                sc.decoded.resize(n * block_len, 0.0);
            }
            for pred_norm in sc.decoded.chunks(block_len.max(1)).take(n) {
                preds.push(
                    pred_norm
                        .iter()
                        .map(|&v| (v + 1.0) * 0.5 * range as f32 + lo)
                        .collect(),
                );
            }
        }
        preds
    }

    /// Compress a field with the parallel pipeline, returning the raw
    /// (unframed) stream bytes and the per-block report.
    ///
    /// Rejects unusable bounds and empty or non-finite fields with a
    /// [`CompressError`] instead of panicking. Pair with
    /// [`AeSz::try_decompress`]; the [`Compressor`] trait adds the workspace
    /// container frame on top of this stream.
    pub fn compress_with_report(
        &mut self,
        field: &Field,
        bound: ErrorBound,
    ) -> Result<(Vec<u8>, CompressionReport), CompressError> {
        self.compress_impl(field, bound, true)
    }

    /// Serial reference implementation of [`AeSz::compress_with_report`];
    /// produces byte-identical streams (kept for benchmarking and as a
    /// differential-testing oracle).
    pub fn compress_with_report_serial(
        &mut self,
        field: &Field,
        bound: ErrorBound,
    ) -> Result<(Vec<u8>, CompressionReport), CompressError> {
        self.compress_impl(field, bound, false)
    }

    fn compress_impl(
        &mut self,
        field: &Field,
        bound: ErrorBound,
        parallel: bool,
    ) -> Result<(Vec<u8>, CompressionReport), CompressError> {
        bound.validate()?;
        if field.is_empty() {
            return Err(CompressError::UnsupportedField("field has no elements"));
        }
        let dims = field.dims();
        let rank = Self::rank(dims);
        let bs = self.config.block_size;
        let (lo, hi) = field.min_max();
        if !lo.is_finite() || !hi.is_finite() {
            return Err(CompressError::UnsupportedField(
                "field contains non-finite values; the error bound is undefined",
            ));
        }
        let range = (hi - lo) as f64;
        // The (version-2) stream header stores a range-relative bound, so an
        // absolute request is converted against the data range here; on a
        // degenerate range the stored value doubles as the absolute bound
        // (the contract of `abs_bound`). Deriving `abs_eb` from the *stored*
        // `rel_eb` keeps encoder and decoder quantizers bit-identical.
        let rel_eb = bound.to_range_rel(lo, hi).value();
        if !rel_eb.is_finite() || rel_eb <= 0.0 {
            return Err(CompressError::InvalidBound(
                "bound underflows relative to the data range",
            ));
        }
        let abs_eb = Self::abs_bound(rel_eb, lo, hi);
        let quantizer = Quantizer::new(abs_eb, self.config.quant_bins);
        // Latent error bound: fraction of the *normalised-domain* bound
        // (normalised range is 2, so e_norm = 2·rel_eb).
        let latent_eb = (self.config.latent_eb_fraction * 2.0 * rel_eb).max(1e-9);
        let latent_codec = LatentCodec::new(latent_eb);
        let latent_dim = self.model.config().latent_dim;

        let specs: Vec<BlockSpec> = field.blocks(bs).collect();
        let n_blocks = specs.len();

        // --- AE path (skipped under LorenzoOnly, for degenerate ranges, and
        // for fields whose rank the model was not built for) ---
        let use_ae = self.config.policy != PredictorPolicy::LorenzoOnly
            && range > 0.0
            && rank == self.model.config().spatial_rank;
        let (ae_preds, latent_indices_per_block) = if use_ae {
            let batch = if parallel {
                AE_PARALLEL_BATCH
            } else {
                AE_BATCH
            };
            self.ae_predict_blocks(field, &specs, lo, range, &latent_codec, batch)
        } else {
            (Vec::new(), Vec::new())
        };

        // --- Per-block predictor selection and quantization, chunked ---
        let policy = self.config.policy;
        // Selects the predictor and quantizes one block; the quantized codes
        // and escapes land in `scratch.codes` / `scratch.unpredictable`.
        let compute_block = |spec: &BlockSpec,
                             ae_pred: Option<&[f32]>,
                             scratch: &mut BlockScratch|
         -> (BlockPredictor, f32) {
            field.read_block_valid_into(spec, &mut scratch.valid);
            if range == 0.0 {
                // Constant field: store the exact constant as the block mean
                // so reconstruction is bit-exact (see `abs_bound`).
                mean::compress_into(
                    &scratch.valid,
                    lo,
                    &quantizer,
                    &mut scratch.codes,
                    &mut scratch.unpredictable,
                    &mut scratch.recon,
                );
                return (BlockPredictor::Mean, lo);
            }
            // AE candidate: valid-region prediction plus its L1 loss.
            let ae_loss = ae_pred.map(|pred| {
                Self::padded_to_valid_into(pred, spec, rank, &mut scratch.pred_valid);
                scratch
                    .valid
                    .iter()
                    .zip(scratch.pred_valid.iter())
                    .map(|(&a, &b)| (a as f64 - b as f64).abs())
                    .sum::<f64>()
            });
            let lorenzo_loss = lorenzo::l1_loss(&scratch.valid, &spec.size);
            let mean_value = mean::block_mean(&scratch.valid);
            let mean_loss = mean::mean_l1_loss(&scratch.valid);

            let choice = match policy {
                PredictorPolicy::AeOnly if ae_loss.is_some() => BlockPredictor::Ae,
                PredictorPolicy::LorenzoOnly | PredictorPolicy::AeOnly => {
                    if mean_loss < lorenzo_loss {
                        BlockPredictor::Mean
                    } else {
                        BlockPredictor::Lorenzo
                    }
                }
                PredictorPolicy::Adaptive => {
                    let lor_best = lorenzo_loss.min(mean_loss);
                    match ae_loss {
                        Some(al) if al < lor_best => BlockPredictor::Ae,
                        _ => {
                            if mean_loss < lorenzo_loss {
                                BlockPredictor::Mean
                            } else {
                                BlockPredictor::Lorenzo
                            }
                        }
                    }
                }
            };

            match choice {
                // `choice` is only Ae when an AE prediction exists, so
                // `scratch.pred_valid` was filled by the loss pass above.
                BlockPredictor::Ae => quantizer.quantize_buffer_into(
                    &scratch.valid,
                    &scratch.pred_valid,
                    &mut scratch.codes,
                    &mut scratch.unpredictable,
                    &mut scratch.recon,
                ),
                BlockPredictor::Lorenzo => lorenzo::compress_into(
                    &scratch.valid,
                    &spec.size,
                    &quantizer,
                    &mut scratch.codes,
                    &mut scratch.unpredictable,
                    &mut scratch.recon,
                ),
                BlockPredictor::Mean => mean::compress_into(
                    &scratch.valid,
                    mean_value,
                    &quantizer,
                    &mut scratch.codes,
                    &mut scratch.unpredictable,
                    &mut scratch.recon,
                ),
            }
            (choice, mean_value)
        };

        let chunk = self.config.chunk_blocks.max(1);
        let n_chunks = n_blocks.div_ceil(chunk);
        let mut slots: Vec<Option<ChunkOut>> = (0..n_chunks).map(|_| None).collect();
        let fill_chunk = |ci: usize| -> ChunkOut {
            let start = ci * chunk;
            let end = (start + chunk).min(n_blocks);
            let chunk_specs = specs.get(start..end).unwrap_or(&[]);
            let mut scratch = BlockScratch::default();
            let mut out = ChunkOut {
                choices: Vec::with_capacity(chunk_specs.len()),
                codes: Vec::new(),
                unpredictable: Vec::new(),
            };
            for (spec, bi) in chunk_specs.iter().zip(start..) {
                let ae_pred = ae_preds.get(bi).map(Vec::as_slice);
                let (choice, mean_value) = compute_block(spec, ae_pred, &mut scratch);
                out.choices.push((choice, mean_value));
                out.codes.extend_from_slice(&scratch.codes);
                out.unpredictable.extend_from_slice(&scratch.unpredictable);
            }
            out
        };
        if parallel {
            slots.par_chunks_mut(1).enumerate().for_each(|(ci, group)| {
                if let Some(slot) = group.first_mut() {
                    *slot = Some(fill_chunk(ci));
                }
            });
        } else {
            for (ci, slot) in slots.iter_mut().enumerate() {
                *slot = Some(fill_chunk(ci));
            }
        }

        // --- Deterministic merge in block order ---
        let mut predictors = Vec::with_capacity(n_blocks.min(MAX_FIELD_ELEMS));
        let mut all_codes: Vec<u32> = Vec::with_capacity(field.len());
        let mut unpredictable: Vec<f32> = Vec::new();
        let mut means: Vec<f32> = Vec::new();
        let mut kept_latent_indices: Vec<i64> = Vec::new();
        let mut report = CompressionReport {
            total_blocks: n_blocks,
            ..CompressionReport::default()
        };
        let mut bi = 0usize;
        for slot in slots {
            #[expect(clippy::expect_used)]
            // lint:allow(R1): fill_chunk writes every slot (slots covers the
            // same chunk grid) before this merge runs
            let out = slot.expect("every chunk fills its slot");
            for &(choice, mean_value) in &out.choices {
                match choice {
                    BlockPredictor::Ae => {
                        report.ae_blocks += 1;
                        let idx = latent_indices_per_block
                            .get(bi)
                            .map_or(&[][..], Vec::as_slice);
                        kept_latent_indices.extend_from_slice(idx);
                    }
                    BlockPredictor::Lorenzo => report.lorenzo_blocks += 1,
                    BlockPredictor::Mean => {
                        report.mean_blocks += 1;
                        means.push(mean_value);
                    }
                }
                predictors.push(choice);
                bi += 1;
            }
            all_codes.extend_from_slice(&out.codes);
            unpredictable.extend_from_slice(&out.unpredictable);
        }

        // --- Assemble the stream ---
        let latent_section = latent_codec.encode(&kept_latent_indices, latent_dim);
        let means_bytes: Vec<u8> = means.iter().flat_map(|v| v.to_le_bytes()).collect();
        let means_section = compress_bytes(&means_bytes);
        let codes_section = encode_codes(&all_codes);
        let unpred_bytes: Vec<u8> = unpredictable.iter().flat_map(|v| v.to_le_bytes()).collect();
        let unpredictable_section = compress_bytes(&unpred_bytes);

        report.latent_bytes = latent_section.len();
        report.codes_bytes = codes_section.len();
        report.means_bytes = means_section.len();
        report.unpredictable_bytes = unpredictable_section.len();

        let stream = Stream {
            header: Header {
                model_id: Some(self.model_id),
                dims,
                data_min: lo,
                data_max: hi,
                rel_eb,
                block_size: bs,
                latent_dim,
                quant_bins: self.config.quant_bins,
                latent_eb_fraction: self.config.latent_eb_fraction,
                policy: self.config.policy,
            },
            predictors,
            latent_section,
            means_section,
            codes_section,
            unpredictable_section,
        };
        let bytes = stream.to_bytes();
        report.compressed_bytes = bytes.len();
        self.last_report = report;
        Ok((bytes, report))
    }

    /// Reconstruct a field from a compressed stream, returning an error on
    /// any malformed, truncated or inconsistent input (never panicking and
    /// never allocating more than the validated header implies).
    pub fn try_decompress(&mut self, bytes: &[u8]) -> Result<Field, DecompressError> {
        self.decompress_impl(bytes, true)
    }

    /// Serial reference implementation of [`AeSz::try_decompress`]; produces
    /// identical fields (kept for benchmarking and differential testing).
    pub fn try_decompress_serial(&mut self, bytes: &[u8]) -> Result<Field, DecompressError> {
        self.decompress_impl(bytes, false)
    }

    fn decompress_impl(&mut self, bytes: &[u8], parallel: bool) -> Result<Field, DecompressError> {
        let stream = Stream::from_bytes(bytes)?;
        let h = &stream.header;
        let dims = h.dims;
        let rank = Self::rank(dims);
        let bs = h.block_size;
        let (lo, hi) = (h.data_min, h.data_max);
        let range = (hi - lo) as f64;
        let abs_eb = Self::abs_bound(h.rel_eb, lo, hi);
        if !abs_eb.is_finite() || abs_eb <= 0.0 {
            return Err(DecompressError::InvalidHeader("absolute error bound"));
        }
        // Quantizer and latent scale come from the (validated) stream header,
        // never from this compressor's own configuration — a decoder
        // configured differently from the encoder must still reconstruct
        // correctly.
        let quantizer = Quantizer::new(abs_eb, h.quant_bins);
        let latent_eb = (h.latent_eb_fraction * 2.0 * h.rel_eb).max(1e-9);
        if !latent_eb.is_finite() {
            return Err(DecompressError::InvalidHeader("latent error bound"));
        }
        let latent_codec = LatentCodec::new(latent_eb);

        // --- Payload-level consistency checks (counts before contents) ---
        let n_points = dims.len();
        let n_blocks = stream.predictors.len();
        let all_codes = decode_codes_capped(&stream.codes_section, n_points)?;
        if all_codes.len() != n_points {
            return Err(DecompressError::Inconsistent(
                "code count does not match dims",
            ));
        }
        let escapes_total = all_codes.iter().filter(|&&c| c == 0).count();
        let unpred_bytes =
            decompress_bytes_capped(&stream.unpredictable_section, escapes_total * 4)?;
        if unpred_bytes.len() != escapes_total * 4 {
            return Err(DecompressError::Inconsistent(
                "unpredictable count does not match escape codes",
            ));
        }
        let unpredictable: Vec<f32> = unpred_bytes
            .chunks_exact(4)
            .map(|c| f32::from_le_bytes([c[0], c[1], c[2], c[3]]))
            .collect();
        let n_mean = stream
            .predictors
            .iter()
            .filter(|&&p| p == BlockPredictor::Mean)
            .count();
        let means_bytes = decompress_bytes_capped(&stream.means_section, n_mean * 4)?;
        if means_bytes.len() != n_mean * 4 {
            return Err(DecompressError::Inconsistent(
                "mean count does not match mean-predicted blocks",
            ));
        }
        let means: Vec<f32> = means_bytes
            .chunks_exact(4)
            .map(|c| f32::from_le_bytes([c[0], c[1], c[2], c[3]]))
            .collect();

        let n_ae = stream
            .predictors
            .iter()
            .filter(|&&p| p == BlockPredictor::Ae)
            .count();
        if n_ae > 0 {
            // Provenance first: a version-3 stream names the exact network
            // that encoded it, and holding a *different* model — even one
            // with coincidentally matching geometry — must fail as "missing
            // model" so a registry can resolve the right one and retry.
            // Streams with no AE-predicted blocks decode model-free.
            if let Some(stream_id) = h.model_id {
                if stream_id != self.model_id {
                    return Err(DecompressError::MissingModel {
                        model_id: stream_id,
                    });
                }
            }
            // Geometry check: the only defence version-2 streams have, and a
            // cheap invariant for version 3.
            if h.block_size != self.model.config().block_size
                || h.latent_dim != self.model.config().latent_dim
                || rank != self.model.config().spatial_rank
            {
                return Err(DecompressError::ModelMismatch {
                    stream_block_size: h.block_size,
                    stream_latent_dim: h.latent_dim,
                    model_block_size: self.model.config().block_size,
                    model_latent_dim: self.model.config().latent_dim,
                });
            }
        }
        let max_latents = n_ae
            .checked_mul(h.latent_dim)
            .ok_or(DecompressError::InvalidHeader("latent payload overflow"))?;
        let (latent_indices, lat_dim) =
            latent_codec.decode_capped(&stream.latent_section, max_latents)?;
        if n_ae > 0 && lat_dim != h.latent_dim {
            return Err(DecompressError::Inconsistent(
                "latent section dim disagrees with header",
            ));
        }
        if latent_indices.len() != n_ae * h.latent_dim {
            return Err(DecompressError::Inconsistent(
                "latent payload does not match the number of AE blocks",
            ));
        }

        // --- Batched AE decode over all AE blocks ---
        let batch = if parallel {
            AE_PARALLEL_BATCH
        } else {
            AE_BATCH
        };
        let ae_preds = if n_ae > 0 {
            self.ae_decode_latents(&latent_indices, lo, range, &latent_codec, batch)
        } else {
            Vec::new()
        };

        // --- Per-block offsets so chunks can work independently ---
        let mut field = Field::zeros(dims);
        let specs: Vec<BlockSpec> = field.blocks(bs).collect();
        debug_assert_eq!(specs.len(), n_blocks, "validated by Stream::from_bytes");
        let mut code_off = Vec::with_capacity((n_blocks + 1).min(MAX_FIELD_ELEMS));
        let mut code_end = 0usize;
        code_off.push(0usize);
        for spec in &specs {
            code_end = code_end.saturating_add(spec.valid_len());
            code_off.push(code_end);
        }
        if code_end != n_points {
            return Err(DecompressError::Inconsistent(
                "block geometry does not cover the field",
            ));
        }
        let mut esc_off = Vec::with_capacity((n_blocks + 1).min(MAX_FIELD_ELEMS));
        let mut mean_off = Vec::with_capacity(n_blocks.min(MAX_FIELD_ELEMS));
        let mut ae_ord = Vec::with_capacity(n_blocks.min(MAX_FIELD_ELEMS));
        let (mut esc, mut me, mut ae) = (0usize, 0usize, 0usize);
        esc_off.push(0usize);
        let mut code_rest = all_codes.as_slice();
        for (p, spec) in stream.predictors.iter().zip(&specs) {
            mean_off.push(me);
            ae_ord.push(ae);
            match p {
                BlockPredictor::Mean => me += 1,
                BlockPredictor::Ae => ae += 1,
                BlockPredictor::Lorenzo => {}
            }
            let (block_codes, rest) = code_rest.split_at(spec.valid_len().min(code_rest.len()));
            code_rest = rest;
            esc += block_codes.iter().filter(|&&c| c == 0).count();
            esc_off.push(esc);
        }

        // --- Chunked parallel reconstruction, then ordered write-back ---
        // Every offset table is exact by the payload checks above, so the
        // lookups below cannot fail; `None` is still surfaced as an error
        // rather than trusted away. Each chunk reconstructs its blocks
        // through reused scratch buffers and concatenates the valid-region
        // values into one buffer (O(1) allocations per chunk).
        let predictors = &stream.predictors;
        let reconstruct_block = |bi: usize, scratch: &mut BlockScratch| -> Option<()> {
            let spec = specs.get(bi)?;
            let codes = all_codes.get(*code_off.get(bi)?..*code_off.get(bi + 1)?)?;
            let unpred = unpredictable.get(*esc_off.get(bi)?..*esc_off.get(bi + 1)?)?;
            match predictors.get(bi)? {
                BlockPredictor::Ae => {
                    let pred = ae_preds.get(*ae_ord.get(bi)?)?;
                    Self::padded_to_valid_into(pred, spec, rank, &mut scratch.pred_valid);
                    quantizer.dequantize_buffer_into(
                        codes,
                        unpred,
                        &scratch.pred_valid,
                        &mut scratch.valid,
                    );
                }
                BlockPredictor::Lorenzo => {
                    lorenzo::decompress_into(
                        codes,
                        unpred,
                        &spec.size,
                        &quantizer,
                        &mut scratch.valid,
                    );
                }
                BlockPredictor::Mean => {
                    let mean = *means.get(*mean_off.get(bi)?)?;
                    mean::decompress_into(codes, unpred, mean, &quantizer, &mut scratch.valid);
                }
            }
            Some(())
        };
        let chunk = self.config.chunk_blocks.max(1);
        let n_chunks = n_blocks.div_ceil(chunk);
        let mut slots: Vec<Option<Vec<f32>>> = (0..n_chunks).map(|_| None).collect();
        let fill_chunk = |ci: usize| -> Option<Vec<f32>> {
            let start = ci * chunk;
            let end = (start + chunk).min(n_blocks);
            let mut scratch = BlockScratch::default();
            let mut buf: Vec<f32> = Vec::new();
            for bi in start..end {
                reconstruct_block(bi, &mut scratch)?;
                buf.extend_from_slice(&scratch.valid);
            }
            Some(buf)
        };
        if parallel {
            slots.par_chunks_mut(1).enumerate().for_each(|(ci, group)| {
                if let Some(slot) = group.first_mut() {
                    *slot = fill_chunk(ci);
                }
            });
        } else {
            for (ci, slot) in slots.iter_mut().enumerate() {
                *slot = fill_chunk(ci);
            }
        }
        let mut bi = 0usize;
        for slot in slots.iter_mut() {
            let buf = slot.take().ok_or(DecompressError::Inconsistent(
                "internal: block reconstruction left a hole",
            ))?;
            let end = (bi + chunk).min(n_blocks);
            let mut off = 0usize;
            for spec in specs.get(bi..end).unwrap_or(&[]) {
                let n = spec.valid_len();
                let vals = buf.get(off..off + n).ok_or(DecompressError::Inconsistent(
                    "internal: chunk buffer underrun",
                ))?;
                field.write_block_valid(spec, vals);
                off += n;
            }
            bi = end;
        }
        Ok(field)
    }
}

impl Compressor for AeSz {
    fn codec_id(&self) -> CodecId {
        CodecId::AeSz
    }

    fn fork(&self) -> Box<dyn Compressor> {
        Box::new(self.clone())
    }

    fn embedded_model(&self) -> Option<EmbeddedModel> {
        Some(EmbeddedModel::new(CodecId::AeSz, &save_model(&self.model)))
    }

    fn embedded_model_id(&self) -> Option<ModelId> {
        Some(self.model_id)
    }

    fn compress_payload(
        &mut self,
        field: &Field,
        bound: ErrorBound,
    ) -> Result<Vec<u8>, CompressError> {
        self.compress_with_report(field, bound).map(|(b, _)| b)
    }

    fn decompress_payload(
        &mut self,
        payload: &[u8],
    ) -> Result<Field, aesz_metrics::DecompressError> {
        self.try_decompress(payload).map_err(Into::into)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::training::{train_swae_for_field, TrainingOptions};
    use aesz_datagen::Application;
    use aesz_metrics::verify_error_bound;

    /// A quickly trained 2D compressor shared by the tests in this module.
    fn quick_aesz_2d(field: &Field) -> AeSz {
        let opts = TrainingOptions {
            block_size: 16,
            latent_dim: 8,
            channels: vec![4, 8],
            epochs: 3,
            max_blocks: 96,
            seed: 17,
            ..TrainingOptions::default_for_rank(2)
        };
        let model = train_swae_for_field(std::slice::from_ref(field), &opts);
        AeSz::new(
            model,
            AeSzConfig {
                block_size: 16,
                ..AeSzConfig::default_2d()
            },
        )
    }

    #[test]
    fn roundtrip_respects_error_bound_2d() {
        let field = Application::CesmCldhgh.generate(Dims::d2(64, 64), 51);
        let mut aesz = quick_aesz_2d(&field);
        for rel_eb in [1e-2, 1e-3] {
            let (bytes, _) = aesz
                .compress_with_report(&field, ErrorBound::rel(rel_eb))
                .expect("valid input");
            let recon = aesz.try_decompress(&bytes).expect("valid stream");
            let abs = rel_eb * field.value_range() as f64;
            verify_error_bound(field.as_slice(), recon.as_slice(), abs, abs * 1e-3)
                .expect("error bound must hold");
            assert!(bytes.len() < field.len() * 4, "must actually compress");
        }
    }

    #[test]
    fn report_accounts_for_every_block() {
        let field = Application::CesmCldhgh.generate(Dims::d2(64, 48), 52);
        let mut aesz = quick_aesz_2d(&field);
        let (_, report) = aesz
            .compress_with_report(&field, ErrorBound::rel(1e-2))
            .expect("valid input");
        assert_eq!(
            report.ae_blocks + report.lorenzo_blocks + report.mean_blocks,
            report.total_blocks
        );
        assert_eq!(report.total_blocks, field.block_count(16));
        assert!(report.compressed_bytes > 0);
        assert!(report.ae_fraction() >= 0.0 && report.ae_fraction() <= 1.0);
    }

    #[test]
    fn policy_ablation_changes_block_assignment() {
        let field = Application::CesmCldhgh.generate(Dims::d2(64, 64), 53);
        let mut aesz = quick_aesz_2d(&field);
        aesz.set_policy(PredictorPolicy::AeOnly);
        let (_, r_ae) = aesz
            .compress_with_report(&field, ErrorBound::rel(1e-2))
            .expect("valid input");
        assert_eq!(r_ae.ae_blocks, r_ae.total_blocks);
        aesz.set_policy(PredictorPolicy::LorenzoOnly);
        let (bytes, r_lor) = aesz
            .compress_with_report(&field, ErrorBound::rel(1e-2))
            .expect("valid input");
        assert_eq!(r_lor.ae_blocks, 0);
        // Both policies must still satisfy the error bound.
        let recon = aesz.try_decompress(&bytes).expect("valid stream");
        let abs = 1e-2 * field.value_range() as f64;
        verify_error_bound(field.as_slice(), recon.as_slice(), abs, abs * 1e-3).unwrap();
    }

    #[test]
    fn constant_field_compresses_to_almost_nothing() {
        let field = Field::from_vec(Dims::d2(32, 32), vec![4.2; 1024]).unwrap();
        let mut aesz = quick_aesz_2d(&Application::CesmCldhgh.generate(Dims::d2(32, 32), 3));
        let (bytes, _) = aesz
            .compress_with_report(&field, ErrorBound::rel(1e-3))
            .expect("valid input");
        let recon = aesz.try_decompress(&bytes).expect("valid stream");
        assert_eq!(recon.as_slice(), field.as_slice());
        assert!(
            bytes.len() < 300,
            "constant field produced {} bytes",
            bytes.len()
        );
    }

    #[test]
    fn constant_fields_reconstruct_exactly_at_any_bound() {
        // The degenerate-range contract of `abs_bound`: constant fields are
        // stored through the mean predictor and come back bit-exact, even
        // for values that are awkward in f32 and for extreme bounds.
        let mut aesz = quick_aesz_2d(&Application::CesmCldhgh.generate(Dims::d2(32, 32), 3));
        for value in [0.0f32, 4.2, -1.0e-7, 3.3333333e12] {
            for rel_eb in [1e-1, 1e-6, 1e-12] {
                let field = Field::from_vec(Dims::d2(32, 32), vec![value; 1024]).unwrap();
                let (bytes, _) = aesz
                    .compress_with_report(&field, ErrorBound::rel(rel_eb))
                    .expect("valid input");
                let recon = aesz.try_decompress(&bytes).expect("valid stream");
                assert_eq!(
                    recon.as_slice(),
                    field.as_slice(),
                    "constant {value} at eb {rel_eb} must reconstruct exactly"
                );
            }
        }
    }

    #[test]
    fn finer_bounds_cost_more_bits() {
        let field = Application::CesmFreqsh.generate(Dims::d2(64, 64), 54);
        let mut aesz = quick_aesz_2d(&field);
        let coarse = aesz
            .compress_with_report(&field, ErrorBound::rel(1e-1))
            .expect("valid input")
            .0
            .len();
        let fine = aesz
            .compress_with_report(&field, ErrorBound::rel(1e-4))
            .expect("valid input")
            .0
            .len();
        assert!(fine > coarse, "fine {fine} <= coarse {coarse}");
    }

    #[test]
    fn parallel_and_serial_paths_are_bit_identical() {
        let field = Application::CesmCldhgh.generate(Dims::d2(80, 56), 55);
        let mut aesz = quick_aesz_2d(&field);
        for rel_eb in [1e-2, 1e-3] {
            let (par_bytes, par_report) = aesz
                .compress_with_report(&field, ErrorBound::rel(rel_eb))
                .expect("valid input");
            let (ser_bytes, ser_report) = aesz
                .compress_with_report_serial(&field, ErrorBound::rel(rel_eb))
                .expect("valid input");
            assert_eq!(par_bytes, ser_bytes, "streams must be byte-identical");
            assert_eq!(par_report, ser_report, "reports must match");
            let par_field = aesz.try_decompress(&par_bytes).unwrap();
            let ser_field = aesz.try_decompress_serial(&par_bytes).unwrap();
            assert_eq!(par_field.as_slice(), ser_field.as_slice());
        }
    }

    #[test]
    fn chunk_size_does_not_change_the_stream() {
        let field = Application::CesmCldhgh.generate(Dims::d2(64, 64), 56);
        let mut aesz = quick_aesz_2d(&field);
        let (reference, _) = aesz
            .compress_with_report(&field, ErrorBound::rel(1e-2))
            .expect("valid input");
        for chunk_blocks in [1, 3, 1000] {
            aesz.config.chunk_blocks = chunk_blocks;
            let (bytes, _) = aesz
                .compress_with_report(&field, ErrorBound::rel(1e-2))
                .expect("valid input");
            assert_eq!(bytes, reference, "chunk_blocks={chunk_blocks}");
        }
    }

    #[test]
    fn rank1_fields_fall_back_to_lorenzo_predictors() {
        // The 2D model cannot predict 1D blocks; the pipeline must route
        // rank-1 fields through (mean-)Lorenzo under any policy.
        let field = Field::from_fn(Dims::d1(333), |c| ((c[0] as f32) * 0.1).sin());
        let mut aesz = quick_aesz_2d(&Application::CesmCldhgh.generate(Dims::d2(32, 32), 3));
        let (bytes, report) = aesz
            .compress_with_report(&field, ErrorBound::rel(1e-3))
            .expect("valid input");
        assert_eq!(report.ae_blocks, 0);
        let recon = aesz.try_decompress(&bytes).expect("valid stream");
        let abs = 1e-3 * field.value_range() as f64;
        verify_error_bound(field.as_slice(), recon.as_slice(), abs, abs * 1e-3).unwrap();
    }

    #[test]
    fn decoder_with_different_config_still_reconstructs_correctly() {
        // The stream header is self-describing: quant_bins and
        // latent_eb_fraction are read from the stream, so a decoder whose own
        // configuration differs must still honour the error bound.
        let field = Application::CesmCldhgh.generate(Dims::d2(64, 64), 58);
        let mut aesz = quick_aesz_2d(&field);
        let (bytes, _) = aesz
            .compress_with_report(&field, ErrorBound::rel(1e-3))
            .expect("valid input");
        aesz.config.quant_bins = 1024;
        aesz.config.latent_eb_fraction = 0.5;
        let recon = aesz.try_decompress(&bytes).expect("valid stream");
        let abs = 1e-3 * field.value_range() as f64;
        verify_error_bound(field.as_slice(), recon.as_slice(), abs, abs * 1e-3)
            .expect("decoder config must not affect reconstruction");
    }

    #[test]
    #[allow(deprecated)] // payload-level peek is exactly what a frameless core stream needs
    fn wrong_model_is_reported_as_missing_model_not_geometry() {
        let field = Application::CesmCldhgh.generate(Dims::d2(64, 64), 57);
        let mut aesz = quick_aesz_2d(&field);
        let (bytes, report) = aesz
            .compress_with_report(&field, ErrorBound::rel(1e-2))
            .expect("valid input");
        if report.ae_blocks == 0 {
            return; // nothing latent-coded; any model can decode it
        }
        // Streams carry the encoder's content-addressed model id…
        assert_eq!(
            crate::stream::peek_model_id(&bytes),
            Some(aesz.model_id()),
            "streams must be stamped with the encoder's model id"
        );
        // …so a compressor around *any* other model — different latent size
        // or even identical geometry but different weights — must refuse the
        // stream with the dedicated missing-model error naming that id.
        let opts = TrainingOptions {
            block_size: 16,
            latent_dim: 4,
            channels: vec![4, 8],
            epochs: 1,
            max_blocks: 16,
            seed: 5,
            ..TrainingOptions::default_for_rank(2)
        };
        let other_model = train_swae_for_field(std::slice::from_ref(&field), &opts);
        let mut other = AeSz::new(
            other_model,
            AeSzConfig {
                block_size: 16,
                ..AeSzConfig::default_2d()
            },
        );
        assert_eq!(
            other.try_decompress(&bytes),
            Err(DecompressError::MissingModel {
                model_id: aesz.model_id()
            })
        );
        // Same geometry, different weights: still missing-model, because the
        // id — not the shape — is the identity.
        let retrained = quick_aesz_2d(&Application::CesmFreqsh.generate(Dims::d2(64, 64), 99));
        assert_ne!(retrained.model_id(), aesz.model_id());
        let mut retrained = retrained;
        assert!(matches!(
            retrained.try_decompress(&bytes),
            Err(DecompressError::MissingModel { .. })
        ));
    }

    #[test]
    fn v2_streams_without_an_id_fall_back_to_geometry_checks() {
        // Strip the id from a v3 stream by re-serializing its parsed form
        // with `model_id: None` — exactly the bytes a pre-model encoder
        // would have produced.
        let field = Application::CesmCldhgh.generate(Dims::d2(64, 64), 60);
        let mut aesz = quick_aesz_2d(&field);
        let (bytes, report) = aesz
            .compress_with_report(&field, ErrorBound::rel(1e-2))
            .expect("valid input");
        let mut stream = crate::stream::Stream::from_bytes(&bytes).unwrap();
        stream.header.model_id = None;
        let v2_bytes = stream.to_bytes();
        // The same instance decodes the id-less stream identically.
        let a = aesz.try_decompress(&bytes).unwrap();
        let b = aesz.try_decompress(&v2_bytes).unwrap();
        assert_eq!(a.as_slice(), b.as_slice());
        if report.ae_blocks == 0 {
            return;
        }
        // A geometry-incompatible model gets the classic mismatch error.
        let opts = TrainingOptions {
            block_size: 16,
            latent_dim: 4,
            channels: vec![4, 8],
            epochs: 1,
            max_blocks: 16,
            seed: 5,
            ..TrainingOptions::default_for_rank(2)
        };
        let other_model = train_swae_for_field(std::slice::from_ref(&field), &opts);
        let mut other = AeSz::new(
            other_model,
            AeSzConfig {
                block_size: 16,
                ..AeSzConfig::default_2d()
            },
        );
        assert!(matches!(
            other.try_decompress(&v2_bytes),
            Err(DecompressError::ModelMismatch { .. })
        ));
    }

    #[test]
    fn from_model_adopts_the_models_geometry() {
        let field = Application::CesmCldhgh.generate(Dims::d2(64, 64), 61);
        let mut trained = quick_aesz_2d(&field);
        let (bytes, _) = trained
            .compress_with_report(&field, ErrorBound::rel(1e-2))
            .expect("valid input");
        let mut rebuilt = AeSz::from_model(trained.model().clone());
        assert_eq!(rebuilt.config().block_size, 16);
        assert_eq!(rebuilt.model_id(), trained.model_id());
        let a = trained.try_decompress(&bytes).unwrap();
        let b = rebuilt.try_decompress(&bytes).unwrap();
        assert_eq!(a.as_slice(), b.as_slice());
    }
}
