//! Error type of the fallible AE-SZ decode path.
//!
//! Every way a compressed stream can be unusable — truncation, bit flips,
//! hostile length prefixes, a model/stream mismatch — surfaces as a
//! [`DecompressError`] from [`crate::stream::Stream::from_bytes`] and
//! [`crate::AeSz::try_decompress`] instead of a panic or an unbounded
//! allocation. The [`aesz_metrics::Compressor`] trait impl folds this type
//! into the workspace-wide [`aesz_metrics::DecompressError`] hierarchy via
//! the `From` impl below.

use aesz_codec::hash::ModelId;
use aesz_codec::CodecError;

/// Why an AE-SZ stream could not be decompressed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DecompressError {
    /// The input does not start with the AE-SZ magic bytes.
    BadMagic,
    /// The input ended before the named header field or section was complete.
    Truncated(&'static str),
    /// A header field holds a value no valid stream can contain.
    InvalidHeader(&'static str),
    /// Header fields and payload sections disagree with each other.
    Inconsistent(&'static str),
    /// The stream names (by content-addressed id) a trained model this
    /// decoder does not hold — checked *before* any geometry comparison, so
    /// a wrong-model decode fails as "missing model", not as a coincidental
    /// geometry mismatch. A registry can resolve the id from a model store
    /// and retry.
    MissingModel {
        /// Content-addressed id of the model the stream was encoded with.
        model_id: ModelId,
    },
    /// The stream was produced with a different model geometry than the
    /// compressor trying to decode it.
    ModelMismatch {
        /// Block edge length recorded in the stream header.
        stream_block_size: usize,
        /// Latent vector length recorded in the stream header.
        stream_latent_dim: usize,
        /// Block edge length of the decoding model.
        model_block_size: usize,
        /// Latent vector length of the decoding model.
        model_latent_dim: usize,
    },
    /// An entropy-coded payload section failed to decode.
    Codec(CodecError),
}

impl From<CodecError> for DecompressError {
    fn from(e: CodecError) -> Self {
        DecompressError::Codec(e)
    }
}

impl From<DecompressError> for aesz_metrics::DecompressError {
    fn from(e: DecompressError) -> Self {
        use aesz_metrics::DecompressError as Api;
        match e {
            // The container frame already identified the stream as AE-SZ, so
            // a wrong *inner* magic is a header problem of the payload, not a
            // container-level `BadMagic`.
            DecompressError::BadMagic => Api::InvalidHeader("AE-SZ payload magic"),
            DecompressError::Truncated(what) => Api::Truncated(what),
            DecompressError::InvalidHeader(what) => Api::InvalidHeader(what),
            DecompressError::Inconsistent(what) => Api::Inconsistent(what),
            DecompressError::MissingModel { model_id } => Api::MissingModel {
                codec: aesz_metrics::CodecId::AeSz,
                model_id,
            },
            DecompressError::ModelMismatch {
                stream_block_size,
                stream_latent_dim,
                model_block_size,
                model_latent_dim,
            } => Api::ModelMismatch {
                stream_block_size,
                stream_latent_dim,
                model_block_size,
                model_latent_dim,
            },
            DecompressError::Codec(c) => Api::Codec(c),
        }
    }
}

impl std::fmt::Display for DecompressError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DecompressError::BadMagic => write!(f, "not an AE-SZ stream (bad magic)"),
            DecompressError::Truncated(what) => write!(f, "truncated stream: {what}"),
            DecompressError::InvalidHeader(what) => write!(f, "invalid header field: {what}"),
            DecompressError::Inconsistent(what) => write!(f, "inconsistent stream: {what}"),
            DecompressError::MissingModel { model_id } => write!(
                f,
                "stream was encoded with model {model_id}, which this decoder does not hold"
            ),
            DecompressError::ModelMismatch {
                stream_block_size,
                stream_latent_dim,
                model_block_size,
                model_latent_dim,
            } => write!(
                f,
                "stream was written with block size {stream_block_size} / latent dim \
                 {stream_latent_dim}, but the model expects block size {model_block_size} / \
                 latent dim {model_latent_dim}"
            ),
            DecompressError::Codec(e) => write!(f, "payload section failed to decode: {e}"),
        }
    }
}

impl std::error::Error for DecompressError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            DecompressError::Codec(e) => Some(e),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        assert!(DecompressError::BadMagic.to_string().contains("magic"));
        assert!(DecompressError::Truncated("codes section")
            .to_string()
            .contains("codes section"));
        assert!(DecompressError::from(CodecError::CorruptLz)
            .to_string()
            .contains("zlite"));
        let mm = DecompressError::ModelMismatch {
            stream_block_size: 32,
            stream_latent_dim: 16,
            model_block_size: 8,
            model_latent_dim: 4,
        };
        assert!(mm.to_string().contains("32"));
        assert!(mm.to_string().contains("4"));
    }

    #[test]
    fn folds_into_the_workspace_error_hierarchy() {
        use aesz_metrics::DecompressError as Api;
        assert_eq!(
            Api::from(DecompressError::Truncated("codes section")),
            Api::Truncated("codes section")
        );
        assert!(matches!(
            Api::from(DecompressError::BadMagic),
            Api::InvalidHeader(_)
        ));
        assert!(matches!(
            Api::from(DecompressError::ModelMismatch {
                stream_block_size: 32,
                stream_latent_dim: 16,
                model_block_size: 8,
                model_latent_dim: 4,
            }),
            Api::ModelMismatch {
                stream_block_size: 32,
                model_latent_dim: 4,
                ..
            }
        ));
        assert!(matches!(
            Api::from(DecompressError::from(CodecError::CorruptLz)),
            Api::Codec(CodecError::CorruptLz)
        ));
        let id = ModelId::of(b"weights");
        assert_eq!(
            Api::from(DecompressError::MissingModel { model_id: id }),
            Api::MissingModel {
                codec: aesz_metrics::CodecId::AeSz,
                model_id: id,
            }
        );
    }

    #[test]
    fn codec_errors_are_wrapped_with_source() {
        use std::error::Error;
        let e = DecompressError::from(CodecError::Malformed("header"));
        assert!(e.source().is_some());
        assert!(DecompressError::BadMagic.source().is_none());
    }
}
