//! The customized ("custo.") lossy codec for AE latent vectors (Section IV-E).
//!
//! Instead of storing raw `f32` latents, AE-SZ quantizes every latent element
//! with an error bound of `0.1·e` (one tenth of the data error bound) and
//! entropy-codes the quantization indices with Huffman + zlite. Crucially the
//! compression of each latent vector is independent of every other block —
//! unlike SZ2.1, whose cross-block prediction would break AE-SZ's ability to
//! drop the latents of Lorenzo-predicted blocks. Decoding the quantized
//! latents (`z_d` in Fig. 5) is what the decoder network consumes on both the
//! compression and decompression sides, so the two sides always see identical
//! predictions.

use aesz_codec::varint::{read_ivarint, read_uvarint, write_ivarint, write_uvarint};
use aesz_codec::{decode_codes_capped, encode_codes, CodecError};

/// Quantizes latent vectors with a fixed absolute error bound and
/// entropy-codes the indices.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LatentCodec {
    /// Absolute error bound applied to every latent element.
    pub abs_bound: f64,
}

impl LatentCodec {
    /// Codec with the given absolute per-element error bound.
    pub fn new(abs_bound: f64) -> Self {
        assert!(abs_bound > 0.0 && abs_bound.is_finite());
        LatentCodec { abs_bound }
    }

    /// Quantize a latent vector to integer indices; `dequantize_one` of each
    /// index reproduces the value the decoder will use.
    pub fn quantize(&self, latent: &[f32]) -> Vec<i64> {
        latent
            .iter()
            .map(|&v| (v as f64 / (2.0 * self.abs_bound)).round() as i64)
            .collect()
    }

    /// Reconstruct one latent element from its quantization index.
    pub fn dequantize_one(&self, index: i64) -> f32 {
        (index as f64 * 2.0 * self.abs_bound) as f32
    }

    /// Reconstruct a full latent vector from its indices.
    pub fn dequantize(&self, indices: &[i64]) -> Vec<f32> {
        indices.iter().map(|&i| self.dequantize_one(i)).collect()
    }

    /// Quantize and immediately dequantize (the `z → z_d` path of Fig. 5).
    pub fn roundtrip(&self, latent: &[f32]) -> Vec<f32> {
        self.dequantize(&self.quantize(latent))
    }

    /// Entropy-encode a set of quantized latent vectors (all of equal length).
    ///
    /// The indices are mapped to unsigned symbols by offsetting with the
    /// stream minimum, then Huffman + zlite coded; the minimum, the vector
    /// length and the vector count go into a small header.
    pub fn encode(&self, indices: &[i64], latent_dim: usize) -> Vec<u8> {
        let mut out = Vec::new();
        write_uvarint(&mut out, latent_dim as u64);
        write_uvarint(&mut out, indices.len() as u64);
        let min = indices.iter().copied().min().unwrap_or(0);
        write_ivarint(&mut out, min);
        let symbols: Vec<u32> = indices.iter().map(|&i| (i - min) as u32).collect();
        let payload = encode_codes(&symbols);
        write_uvarint(&mut out, payload.len() as u64);
        out.extend_from_slice(&payload);
        out
    }

    /// Decode a buffer produced by [`LatentCodec::encode`]; returns
    /// `(indices, latent_dim)`.
    pub fn decode(&self, bytes: &[u8]) -> Result<(Vec<i64>, usize), CodecError> {
        self.decode_capped(bytes, usize::MAX)
    }

    /// [`LatentCodec::decode`] with an upper bound on the declared index
    /// count, for untrusted input: a corrupt count or length prefix is
    /// rejected instead of driving a huge allocation or a slice panic.
    pub fn decode_capped(
        &self,
        bytes: &[u8],
        max_indices: usize,
    ) -> Result<(Vec<i64>, usize), CodecError> {
        let mut pos = 0usize;
        let latent_dim =
            read_uvarint(bytes, &mut pos).ok_or(CodecError::Malformed("latent_dim"))? as usize;
        let count = read_uvarint(bytes, &mut pos).ok_or(CodecError::Malformed("count"))? as usize;
        if count > max_indices {
            return Err(CodecError::Malformed("latent count exceeds cap"));
        }
        let min = read_ivarint(bytes, &mut pos).ok_or(CodecError::Malformed("min"))?;
        let payload_len =
            read_uvarint(bytes, &mut pos).ok_or(CodecError::Malformed("payload_len"))? as usize;
        let end = pos
            .checked_add(payload_len)
            .ok_or(CodecError::Malformed("payload length overflow"))?;
        let payload = bytes
            .get(pos..end)
            .ok_or(CodecError::Malformed("payload"))?;
        let symbols = decode_codes_capped(payload, count)?;
        if symbols.len() != count {
            return Err(CodecError::Malformed("latent symbol count"));
        }
        Ok((
            symbols
                .into_iter()
                .map(|s| (s as i64).wrapping_add(min))
                .collect(),
            latent_dim,
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn quantize_respects_bound() {
        let codec = LatentCodec::new(0.01);
        let latent: Vec<f32> = (0..64).map(|i| (i as f32 * 0.37).sin() * 2.0).collect();
        let rt = codec.roundtrip(&latent);
        for (a, b) in latent.iter().zip(rt.iter()) {
            assert!((a - b).abs() <= 0.01 + 1e-7);
        }
    }

    #[test]
    fn encode_decode_roundtrip() {
        let codec = LatentCodec::new(0.005);
        let latent: Vec<f32> = (0..256).map(|i| ((i % 13) as f32 - 6.0) * 0.1).collect();
        let indices = codec.quantize(&latent);
        let bytes = codec.encode(&indices, 16);
        let (decoded, dim) = codec.decode(&bytes).unwrap();
        assert_eq!(decoded, indices);
        assert_eq!(dim, 16);
    }

    #[test]
    fn empty_latent_set_is_fine() {
        let codec = LatentCodec::new(0.01);
        let bytes = codec.encode(&[], 8);
        let (decoded, dim) = codec.decode(&bytes).unwrap();
        assert!(decoded.is_empty());
        assert_eq!(dim, 8);
    }

    #[test]
    fn corrupted_buffer_is_an_error() {
        let codec = LatentCodec::new(0.01);
        let bytes = codec.encode(&[1, 2, 3, 4], 2);
        assert!(codec.decode(&bytes[..3]).is_err());
    }

    #[test]
    fn capped_decode_rejects_oversized_counts() {
        let codec = LatentCodec::new(0.01);
        let bytes = codec.encode(&[1, 2, 3, 4], 2);
        assert!(codec.decode_capped(&bytes, 4).is_ok());
        assert!(codec.decode_capped(&bytes, 3).is_err());
        // A hostile count prefix alone must not drive an allocation.
        let mut hostile = Vec::new();
        write_uvarint(&mut hostile, 2); // latent_dim
        write_uvarint(&mut hostile, u64::MAX); // count
        assert!(codec.decode_capped(&hostile, 1 << 20).is_err());
    }

    #[test]
    fn compresses_smooth_latents_well() {
        // Latents whose values cluster tightly should cost far less than 4 bytes each.
        let codec = LatentCodec::new(0.01);
        let latent: Vec<f32> = (0..4096).map(|i| ((i % 7) as f32) * 0.005).collect();
        let indices = codec.quantize(&latent);
        let bytes = codec.encode(&indices, 16);
        assert!(bytes.len() * 4 < latent.len() * 4, "{} bytes", bytes.len());
    }

    proptest! {
        /// The decoded latent the decompressor sees equals the one the
        /// compressor used, and both are within the bound of the original.
        #[test]
        fn prop_roundtrip_and_bound(
            latent in proptest::collection::vec(-5.0f32..5.0, 1..128),
            bound_exp in -4i32..-1,
        ) {
            let bound = 10f64.powi(bound_exp);
            let codec = LatentCodec::new(bound);
            let indices = codec.quantize(&latent);
            let bytes = codec.encode(&indices, latent.len());
            let (decoded, _) = codec.decode(&bytes).unwrap();
            prop_assert_eq!(&decoded, &indices);
            // The reconstructed latent is stored as f32, so allow one f32 ULP of
            // the value magnitude on top of the quantization bound.
            for (v, d) in latent.iter().zip(codec.dequantize(&decoded)) {
                let slack = (v.abs() as f64) * f32::EPSILON as f64 + 1e-9;
                prop_assert!((*v as f64 - d as f64).abs() <= bound + slack);
            }
        }
    }
}
