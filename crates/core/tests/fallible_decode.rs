//! Adversarial decode tests: every truncated prefix of a valid stream must
//! return an error, and every single-byte corruption must be handled
//! gracefully (an `Err` or a successful decode — never a panic, never an
//! attacker-sized allocation).

use aesz_core::training::{train_swae_for_field, TrainingOptions};
use aesz_core::{AeSz, AeSzConfig, DecompressError, PredictorPolicy};
use aesz_datagen::Application;
use aesz_metrics::ErrorBound;
use aesz_tensor::{Dims, Field};

/// A cheaply trained compressor whose streams contain all three block kinds.
fn tiny_aesz() -> AeSz {
    let field = Application::CesmCldhgh.generate(Dims::d2(24, 24), 7);
    let opts = TrainingOptions {
        block_size: 8,
        latent_dim: 4,
        channels: vec![4],
        epochs: 1,
        max_blocks: 9,
        seed: 3,
        ..TrainingOptions::default_for_rank(2)
    };
    let model = train_swae_for_field(std::slice::from_ref(&field), &opts);
    AeSz::new(
        model,
        AeSzConfig {
            block_size: 8,
            ..AeSzConfig::default_2d()
        },
    )
}

fn sample_stream(aesz: &mut AeSz) -> Vec<u8> {
    let field = Application::CesmCldhgh.generate(Dims::d2(24, 24), 11);
    aesz.compress_with_report(&field, ErrorBound::rel(1e-3))
        .expect("valid input")
        .0
}

#[test]
fn every_truncated_prefix_returns_an_error() {
    let mut aesz = tiny_aesz();
    let bytes = sample_stream(&mut aesz);
    // Sanity: the full stream decodes.
    aesz.try_decompress(&bytes).expect("valid stream");
    for len in 0..bytes.len() {
        let result = aesz.try_decompress(&bytes[..len]);
        assert!(
            result.is_err(),
            "prefix of {len}/{} bytes decoded successfully",
            bytes.len()
        );
    }
}

#[test]
fn single_byte_corruption_never_panics() {
    let mut aesz = tiny_aesz();
    let bytes = sample_stream(&mut aesz);
    for offset in 0..bytes.len() {
        // Flip a (varying) single bit at this offset.
        let mut corrupt = bytes.clone();
        corrupt[offset] ^= 1 << (offset % 8);
        let _ = aesz.try_decompress(&corrupt);
        // And the all-bits-flipped byte, which exercises different varint /
        // flag / tag paths.
        let mut corrupt = bytes.clone();
        corrupt[offset] ^= 0xFF;
        let _ = aesz.try_decompress(&corrupt);
    }
}

#[test]
fn garbage_and_resized_inputs_are_rejected() {
    let mut aesz = tiny_aesz();
    assert!(aesz.try_decompress(&[]).is_err());
    assert!(aesz.try_decompress(b"definitely not a stream").is_err());
    assert!(matches!(
        aesz.try_decompress(&[0xFF; 256]),
        Err(DecompressError::BadMagic)
    ));
    // A valid stream with appended garbage must be rejected, not ignored.
    let mut bytes = sample_stream(&mut aesz);
    bytes.extend_from_slice(&[0, 1, 2]);
    assert!(aesz.try_decompress(&bytes).is_err());
}

#[test]
fn policy_flag_consistency_is_enforced() {
    let mut aesz = tiny_aesz();
    let field = Application::CesmCldhgh.generate(Dims::d2(24, 24), 13);
    aesz.set_policy(PredictorPolicy::LorenzoOnly);
    let (bytes, report) = aesz
        .compress_with_report(&field, ErrorBound::rel(1e-3))
        .expect("valid input");
    assert_eq!(report.ae_blocks, 0);
    // LorenzoOnly streams decode fine…
    aesz.try_decompress(&bytes).expect("valid stream");
    // …and a compressor built for a different model geometry can decode them
    // too, because no latent payload is involved.
    let recon = aesz.try_decompress_serial(&bytes).expect("valid stream");
    assert_eq!(recon.dims(), field.dims());
}

#[test]
fn trait_level_decompress_reports_errors() {
    use aesz_metrics::Compressor;
    let mut aesz = tiny_aesz();
    let field = Field::from_fn(Dims::d2(16, 16), |c| (c[0] * 16 + c[1]) as f32);
    let bytes = Compressor::compress(&mut aesz, &field, ErrorBound::rel(1e-3)).expect("compress");
    assert!(Compressor::decompress(&mut aesz, &bytes).is_ok());
    for len in 0..bytes.len() {
        assert!(
            Compressor::decompress(&mut aesz, &bytes[..len]).is_err(),
            "framed prefix of {len} bytes decoded successfully"
        );
    }
    // Invalid compression requests are reported, not asserted.
    assert!(Compressor::compress(&mut aesz, &field, ErrorBound::rel(f64::NAN)).is_err());
    assert!(Compressor::compress(&mut aesz, &field, ErrorBound::abs(-1.0)).is_err());
}

#[test]
fn absolute_bounds_are_honoured() {
    let mut aesz = tiny_aesz();
    let field = Application::CesmCldhgh.generate(Dims::d2(24, 24), 19);
    let abs = 1e-3 * field.value_range() as f64;
    let (bytes, _) = aesz
        .compress_with_report(&field, ErrorBound::abs(abs))
        .expect("valid input");
    let recon = aesz.try_decompress(&bytes).expect("valid stream");
    let max_err = aesz_metrics::max_abs_error(field.as_slice(), recon.as_slice());
    assert!(
        max_err <= abs * (1.0 + 1e-9),
        "absolute bound {abs} violated: {max_err}"
    );
}
