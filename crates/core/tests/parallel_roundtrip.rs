//! Property tests of the parallel AE-SZ pipeline: round-trips over rank
//! 1/2/3 fields whose dims are *not* multiples of the block size (exercising
//! the `padded_to_valid` / `valid_to_padded` edge paths) at several error
//! bounds, asserting the error bound and serial-vs-parallel stream equality.

use std::sync::{Mutex, OnceLock};

use aesz_core::training::{train_swae_for_field, TrainingOptions};
use aesz_core::{AeSz, AeSzConfig};
use aesz_datagen::Application;
use aesz_metrics::verify_error_bound;
use aesz_tensor::{Dims, Field};
use proptest::prelude::*;

fn aesz_2d() -> &'static Mutex<AeSz> {
    static MODEL: OnceLock<Mutex<AeSz>> = OnceLock::new();
    MODEL.get_or_init(|| {
        let field = Application::CesmCldhgh.generate(Dims::d2(32, 32), 1);
        let opts = TrainingOptions {
            block_size: 8,
            latent_dim: 4,
            channels: vec![4],
            epochs: 1,
            max_blocks: 16,
            seed: 9,
            ..TrainingOptions::default_for_rank(2)
        };
        let model = train_swae_for_field(std::slice::from_ref(&field), &opts);
        Mutex::new(AeSz::new(
            model,
            AeSzConfig {
                block_size: 8,
                ..AeSzConfig::default_2d()
            },
        ))
    })
}

fn aesz_3d() -> &'static Mutex<AeSz> {
    static MODEL: OnceLock<Mutex<AeSz>> = OnceLock::new();
    MODEL.get_or_init(|| {
        let field = Application::NyxBaryonDensity.generate(Dims::d3(16, 16, 16), 1);
        let opts = TrainingOptions {
            block_size: 8,
            latent_dim: 8,
            channels: vec![4],
            epochs: 1,
            max_blocks: 16,
            seed: 9,
            ..TrainingOptions::default_for_rank(3)
        };
        let model = train_swae_for_field(std::slice::from_ref(&field), &opts);
        Mutex::new(AeSz::new(
            model,
            AeSzConfig {
                block_size: 8,
                ..AeSzConfig::default_3d()
            },
        ))
    })
}

/// Compress serially and in parallel, assert stream equality, decode through
/// both paths, assert field equality and the error bound.
fn check_roundtrip(aesz: &mut AeSz, field: &Field, rel_eb: f64) -> Result<(), String> {
    let bound = aesz_metrics::ErrorBound::rel(rel_eb);
    let (par_bytes, par_report) = aesz
        .compress_with_report(field, bound)
        .map_err(|e| format!("parallel compress failed: {e}"))?;
    let (ser_bytes, ser_report) = aesz
        .compress_with_report_serial(field, bound)
        .map_err(|e| format!("serial compress failed: {e}"))?;
    if par_bytes != ser_bytes {
        return Err(format!(
            "parallel ({} B) and serial ({} B) streams differ for dims {}",
            par_bytes.len(),
            ser_bytes.len(),
            field.dims()
        ));
    }
    if par_report != ser_report {
        return Err("parallel and serial reports differ".into());
    }
    let par_recon = aesz
        .try_decompress(&par_bytes)
        .map_err(|e| format!("parallel decode failed: {e}"))?;
    let ser_recon = aesz
        .try_decompress_serial(&par_bytes)
        .map_err(|e| format!("serial decode failed: {e}"))?;
    if par_recon.as_slice() != ser_recon.as_slice() {
        return Err("parallel and serial reconstructions differ".into());
    }
    let abs = rel_eb * field.value_range() as f64;
    if abs > 0.0 {
        verify_error_bound(field.as_slice(), par_recon.as_slice(), abs, abs * 1e-3)
            .map_err(|e| format!("error bound violated: {e}"))?;
    } else if par_recon.as_slice() != field.as_slice() {
        return Err("constant field did not reconstruct exactly".into());
    }
    Ok(())
}

proptest! {
    #[test]
    fn prop_roundtrip_rank1(
        n in 3usize..150,
        eb_exp in -4i32..0,
        seed in 0u64..1_000,
    ) {
        let rel_eb = 10f64.powi(eb_exp);
        let field = Field::from_fn(Dims::d1(n), |c| {
            let x = c[0] as f32 + seed as f32 * 0.13;
            (x * 0.21).sin() + 0.3 * (x * 0.047).cos()
        });
        let mut aesz = aesz_2d().lock().unwrap();
        if let Err(msg) = check_roundtrip(&mut aesz, &field, rel_eb) {
            prop_assert!(false, "{}", msg);
        }
    }

    #[test]
    fn prop_roundtrip_rank2(
        ny in 9usize..44,
        nx in 9usize..44,
        eb_exp in -4i32..0,
        seed in 0u64..1_000,
    ) {
        let rel_eb = 10f64.powi(eb_exp);
        let field = Application::CesmCldhgh.generate(Dims::d2(ny, nx), seed);
        let mut aesz = aesz_2d().lock().unwrap();
        if let Err(msg) = check_roundtrip(&mut aesz, &field, rel_eb) {
            prop_assert!(false, "{}", msg);
        }
    }

    #[test]
    fn prop_roundtrip_rank3(
        nz in 9usize..20,
        ny in 9usize..20,
        nx in 9usize..20,
        eb_exp in -4i32..0,
        seed in 0u64..1_000,
    ) {
        let rel_eb = 10f64.powi(eb_exp);
        let field = Application::NyxBaryonDensity.generate(Dims::d3(nz, ny, nx), seed);
        let mut aesz = aesz_3d().lock().unwrap();
        if let Err(msg) = check_roundtrip(&mut aesz, &field, rel_eb) {
            prop_assert!(false, "{}", msg);
        }
    }
}

#[test]
fn constant_fields_roundtrip_exactly_across_ranks() {
    let mut aesz2 = aesz_2d().lock().unwrap();
    for (dims, value) in [
        (Dims::d1(37), 1.25f32),
        (Dims::d2(19, 23), -7.75),
        (Dims::d2(8, 8), 0.0),
    ] {
        let field = Field::from_vec(dims, vec![value; dims.len()]).unwrap();
        check_roundtrip(&mut aesz2, &field, 1e-3).unwrap();
    }
    let mut aesz3 = aesz_3d().lock().unwrap();
    let dims = Dims::d3(9, 10, 11);
    let field = Field::from_vec(dims, vec![42.5; dims.len()]).unwrap();
    check_roundtrip(&mut aesz3, &field, 1e-3).unwrap();
}
