//! Multi-level spline-interpolation predictor (the core idea of SZinterp).
//!
//! SZinterp (Zhao et al., ICDE'21) replaces pointwise Lorenzo/regression
//! prediction with dynamic spline interpolation: the field is processed level
//! by level, from a coarse anchor grid down to full resolution, and every new
//! point is predicted by cubic (falling back to linear) interpolation along
//! one dimension from already-reconstructed points. Because predictions come
//! only from reconstructed values, the error bound holds exactly as in SZ.
//!
//! The traversal is the standard one: for each level with spacing `s`
//! (halving every level), each dimension in turn predicts the points whose
//! coordinate along that dimension is an odd multiple of `s/2` while
//! already-processed dimensions are on the `s/2` grid and not-yet-processed
//! dimensions remain on the `s` grid.

use crate::lorenzo;
use crate::quantizer::{QuantizedBlock, Quantizer};

/// Cubic interpolation weights for the symmetric 4-point stencil.
const CUBIC_W: [f32; 4] = [-1.0 / 16.0, 9.0 / 16.0, 9.0 / 16.0, -1.0 / 16.0];

/// One step of the interpolation traversal.
#[derive(Debug, Clone, PartialEq, Eq)]
enum Step {
    /// Anchor-grid point predicted with Lorenzo over already-seen anchors.
    Anchor { idx: usize, coord: [usize; 3] },
    /// Point predicted by interpolation along `dim` with spacing `half`.
    Interp {
        idx: usize,
        coord: [usize; 3],
        dim: usize,
        half: usize,
    },
}

fn strides(extents: &[usize]) -> Vec<usize> {
    let mut s = vec![1usize; extents.len()];
    for i in (0..extents.len().saturating_sub(1)).rev() {
        s[i] = s[i + 1] * extents[i + 1];
    }
    s
}

/// Largest level spacing: the smallest power of two ≥ (max extent − 1), ≥ 2.
fn max_stride(extents: &[usize]) -> usize {
    let m = extents.iter().copied().max().unwrap_or(1).saturating_sub(1);
    let mut s = 2usize;
    while s < m {
        s *= 2;
    }
    s
}

/// Iterate a rectangular sub-grid; coordinate `d` runs `starts[d], +steps[d], …`.
fn visit_grid(
    extents: &[usize],
    steps: &[usize],
    starts: &[usize],
    f: &mut impl FnMut(&[usize; 3]),
) {
    let rank = extents.len();
    let ext = |d: usize| if d < rank { extents[d] } else { 1 };
    let stp = |d: usize| if d < rank { steps[d] } else { 1 };
    let srt = |d: usize| if d < rank { starts[d] } else { 0 };
    let mut z = srt(0);
    while z < ext(0) {
        let mut y = srt(1);
        while y < ext(1) {
            let mut x = srt(2);
            while x < ext(2) {
                f(&[z, y, x]);
                x += stp(2);
            }
            y += stp(1);
        }
        z += stp(0);
    }
}

/// Build the full traversal plan for the given extents: every point appears
/// exactly once, anchors first, then level by level, dimension by dimension.
fn traversal_plan(extents: &[usize]) -> Vec<Step> {
    let rank = extents.len();
    assert!((1..=3).contains(&rank), "rank 1-3 supported, got {rank}");
    let st = strides(extents);
    let smax = max_stride(extents);
    let flat = |c: &[usize; 3]| -> usize { (0..rank).map(|d| c[d] * st[d]).sum() };

    let mut plan = Vec::new();
    // Anchor grid: all coordinates multiples of smax.
    visit_grid(extents, &vec![smax; rank], &vec![0; rank], &mut |c| {
        plan.push(Step::Anchor {
            idx: flat(c),
            coord: *c,
        });
    });

    let mut s = smax;
    while s >= 2 {
        let half = s / 2;
        for dim in 0..rank {
            let mut starts = vec![0usize; rank];
            let mut steps = vec![0usize; rank];
            for d in 0..rank {
                if d < dim {
                    steps[d] = half;
                } else if d == dim {
                    starts[d] = half;
                    steps[d] = s;
                } else {
                    steps[d] = s;
                }
            }
            visit_grid(extents, &steps, &starts, &mut |c| {
                plan.push(Step::Interp {
                    idx: flat(c),
                    coord: *c,
                    dim,
                    half,
                });
            });
        }
        s /= 2;
    }
    plan
}

/// Predict the value at `idx` by interpolating along dimension `dim` with
/// spacing `half`, using only values already present in `recon`.
fn interp_predict(
    recon: &[f32],
    extents: &[usize],
    strides: &[usize],
    coord: &[usize; 3],
    idx: usize,
    dim: usize,
    half: usize,
) -> f32 {
    let extent = extents[dim];
    let stride = strides[dim];
    let c = coord[dim];
    let prev1 = (c >= half).then(|| idx - half * stride);
    let next1 = (c + half < extent).then(|| idx + half * stride);
    let prev2 = (c >= 3 * half).then(|| idx - 3 * half * stride);
    let next2 = (c + 3 * half < extent).then(|| idx + 3 * half * stride);
    match (prev2, prev1, next1, next2) {
        (Some(p2), Some(p1), Some(n1), Some(n2)) => {
            CUBIC_W[0] * recon[p2]
                + CUBIC_W[1] * recon[p1]
                + CUBIC_W[2] * recon[n1]
                + CUBIC_W[3] * recon[n2]
        }
        (_, Some(p1), Some(n1), _) => 0.5 * (recon[p1] + recon[n1]),
        (_, Some(p1), None, _) => recon[p1],
        (_, None, Some(n1), _) => recon[n1],
        _ => 0.0,
    }
}

/// Compress a field with interpolation prediction + linear quantization.
pub fn compress(
    data: &[f32],
    extents: &[usize],
    quantizer: &Quantizer,
) -> (QuantizedBlock, Vec<f32>) {
    let n: usize = extents.iter().product();
    assert_eq!(data.len(), n);
    let st = strides(extents);
    let plan = traversal_plan(extents);
    debug_assert_eq!(plan.len(), n, "every point must be visited exactly once");

    let mut recon = vec![0.0f32; n];
    let mut codes = vec![0u32; n];
    let mut unpredictable = Vec::new();
    for step in &plan {
        let (idx, pred) = match step {
            Step::Anchor { idx, coord } => {
                let coord_slice = &coord[..extents.len()];
                (*idx, lorenzo::predict(&recon, extents, coord_slice))
            }
            Step::Interp {
                idx,
                coord,
                dim,
                half,
            } => (
                *idx,
                interp_predict(&recon, extents, &st, coord, *idx, *dim, *half),
            ),
        };
        match quantizer.quantize(data[idx], pred) {
            Some((code, r)) => {
                codes[idx] = code + 1;
                recon[idx] = r;
            }
            None => {
                codes[idx] = 0;
                unpredictable.push(data[idx]);
                recon[idx] = data[idx];
            }
        }
    }
    (
        QuantizedBlock {
            codes,
            unpredictable,
        },
        recon,
    )
}

/// Decompress a field produced by [`compress`] with the same quantizer.
///
/// The unpredictable values are consumed in traversal order (the same order
/// the encoder pushed them), not in flat scan order.
pub fn decompress(block: &QuantizedBlock, extents: &[usize], quantizer: &Quantizer) -> Vec<f32> {
    let n: usize = extents.iter().product();
    assert_eq!(block.codes.len(), n);
    let st = strides(extents);
    let plan = traversal_plan(extents);
    let mut recon = vec![0.0f32; n];
    let mut un = block.unpredictable.iter();
    for step in &plan {
        let (idx, pred) = match step {
            Step::Anchor { idx, coord } => {
                let coord_slice = &coord[..extents.len()];
                (*idx, lorenzo::predict(&recon, extents, coord_slice))
            }
            Step::Interp {
                idx,
                coord,
                dim,
                half,
            } => (
                *idx,
                interp_predict(&recon, extents, &st, coord, *idx, *dim, *half),
            ),
        };
        let code = block.codes[idx];
        recon[idx] = if code == 0 {
            *un.next().expect("unpredictable value present")
        } else {
            quantizer.dequantize(code - 1, pred)
        };
    }
    recon
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn traversal_visits_every_point_once() {
        for extents in [
            vec![17usize],
            vec![13, 9],
            vec![5, 6, 7],
            vec![8, 8, 8],
            vec![1, 1, 3],
        ] {
            let plan = traversal_plan(&extents);
            let n: usize = extents.iter().product();
            assert_eq!(plan.len(), n, "extents {extents:?}");
            let mut seen = HashSet::new();
            for step in &plan {
                let idx = match step {
                    Step::Anchor { idx, .. } | Step::Interp { idx, .. } => *idx,
                };
                assert!(idx < n);
                assert!(seen.insert(idx), "point {idx} visited twice ({extents:?})");
            }
        }
    }

    #[test]
    fn smooth_field_predicts_well() {
        let n = 33usize;
        let data: Vec<f32> = (0..n * n)
            .map(|i| ((i % n) as f32 * 0.2).sin() + ((i / n) as f32 * 0.15).cos())
            .collect();
        let q = Quantizer::with_default_bins(1e-3);
        let (blk, recon) = compress(&data, &[n, n], &q);
        for (a, b) in data.iter().zip(recon.iter()) {
            assert!((a - b).abs() <= 1e-3 + 1e-9);
        }
        // A smooth field should need almost no escapes.
        assert!(blk.unpredictable.len() < 4);
        assert_eq!(decompress(&blk, &[n, n], &q), recon);
    }

    #[test]
    fn roundtrip_3d_and_odd_extents() {
        let extents = [7usize, 11, 5];
        let n: usize = extents.iter().product();
        let data: Vec<f32> = (0..n).map(|i| (i as f32 * 0.37).sin() * 4.0).collect();
        let q = Quantizer::with_default_bins(5e-3);
        let (blk, recon) = compress(&data, &extents, &q);
        for (a, b) in data.iter().zip(recon.iter()) {
            assert!((a - b).abs() <= 5e-3 + 1e-9);
        }
        assert_eq!(decompress(&blk, &extents, &q), recon);
    }

    #[test]
    fn interpolation_concentrates_codes_on_smooth_data() {
        // On smooth data at a coarse error bound, the vast majority of points
        // should land within a handful of bins of the zero-residual bin.
        let n = 65usize;
        let data: Vec<f32> = (0..n * n)
            .map(|i| {
                let y = (i / n) as f32 / n as f32;
                let x = (i % n) as f32 / n as f32;
                (std::f32::consts::TAU * x).sin() * (std::f32::consts::TAU * y).cos()
            })
            .collect();
        let q = Quantizer::with_default_bins(1e-2);
        let (bi, _) = compress(&data, &[n, n], &q);
        assert!(bi.unpredictable.is_empty());
        let centre = (crate::quantizer::DEFAULT_QUANT_BINS / 2) as i64 + 1;
        let near = bi
            .codes
            .iter()
            .filter(|&&c| c != 0 && (c as i64 - centre).abs() <= 4)
            .count();
        assert!(
            near * 10 >= bi.codes.len() * 6,
            "only {near}/{} codes near the centre bin",
            bi.codes.len()
        );
    }

    #[test]
    fn tiny_fields_are_handled() {
        let q = Quantizer::with_default_bins(1e-3);
        for extents in [vec![1usize], vec![2, 2], vec![1, 1, 3]] {
            let n: usize = extents.iter().product();
            let data: Vec<f32> = (0..n).map(|i| i as f32).collect();
            let (blk, recon) = compress(&data, &extents, &q);
            assert_eq!(decompress(&blk, &extents, &q), recon);
        }
    }

    #[test]
    fn cubic_weights_reproduce_cubic_polynomials() {
        // A cubic polynomial sampled at -3,-1,1,3 interpolated at 0 must be exact.
        let f = |x: f32| 2.0 + 0.5 * x - 0.25 * x * x + 0.125 * x * x * x;
        let interp =
            CUBIC_W[0] * f(-3.0) + CUBIC_W[1] * f(-1.0) + CUBIC_W[2] * f(1.0) + CUBIC_W[3] * f(3.0);
        assert!((interp - f(0.0)).abs() < 1e-5, "{interp} vs {}", f(0.0));
    }
}
