//! Linear-scale quantization with a strict error bound.
//!
//! This is the error-controlling core of every SZ-style compressor in the
//! workspace. Given a prediction `p` for a value `v` and an absolute error
//! bound `e`, the residual is quantized to the bin
//! `code = round((v − p) / (2e)) + radius`; reconstruction uses
//! `v' = p + (code − radius)·2e`, so `|v − v'| ≤ e` whenever the code fits in
//! the bin range. Residuals too large for the configured number of bins are
//! escaped as *unpredictable* (code 0) and their values stored verbatim,
//! exactly as in SZ2.1 / AE-SZ.

/// Default number of quantization bins (matches SZ2.1 / the paper: 65,536).
pub const DEFAULT_QUANT_BINS: usize = 65_536;

/// Linear-scale quantizer with an absolute error bound.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Quantizer {
    abs_bound: f64,
    radius: i64,
}

/// The quantized representation of one block (or one whole field).
#[derive(Debug, Clone, PartialEq)]
pub struct QuantizedBlock {
    /// One code per data point; 0 means "unpredictable, value stored verbatim".
    pub codes: Vec<u32>,
    /// Verbatim values for the unpredictable points, in scan order.
    pub unpredictable: Vec<f32>,
}

impl Quantizer {
    /// Quantizer with the given absolute error bound and bin count.
    ///
    /// # Panics
    /// Panics when `abs_bound` is not positive/finite or `bins < 4`.
    pub fn new(abs_bound: f64, bins: usize) -> Self {
        assert!(
            abs_bound.is_finite() && abs_bound > 0.0,
            "error bound must be positive and finite, got {abs_bound}"
        );
        assert!(bins >= 4, "need at least 4 quantization bins, got {bins}");
        Quantizer {
            abs_bound,
            radius: (bins / 2) as i64,
        }
    }

    /// Quantizer with the default 65,536 bins.
    pub fn with_default_bins(abs_bound: f64) -> Self {
        Self::new(abs_bound, DEFAULT_QUANT_BINS)
    }

    /// The absolute error bound this quantizer enforces.
    pub fn abs_bound(&self) -> f64 {
        self.abs_bound
    }

    /// Half the number of bins; code `radius` means "zero residual".
    pub fn radius(&self) -> i64 {
        self.radius
    }

    /// Quantize one value against its prediction.
    ///
    /// Returns `Some((code, reconstructed))` when the residual fits in the bin
    /// range (then `|value − reconstructed| ≤ abs_bound`), or `None` when the
    /// point must be stored verbatim.
    #[inline]
    pub fn quantize(&self, value: f32, prediction: f32) -> Option<(u32, f32)> {
        let diff = value as f64 - prediction as f64;
        let scaled = diff / (2.0 * self.abs_bound);
        let q = scaled.round();
        if !q.is_finite() || q.abs() >= self.radius as f64 {
            return None;
        }
        let code = q as i64 + self.radius;
        let reconstructed = prediction as f64 + (q * 2.0 * self.abs_bound);
        let reconstructed = reconstructed as f32;
        // Guard against f32 rounding pushing the reconstruction out of bounds.
        if (value as f64 - reconstructed as f64).abs() > self.abs_bound {
            return None;
        }
        Some((code as u32, reconstructed))
    }

    /// Reconstruct a value from its code and prediction (code must be non-zero
    /// and produced by [`Quantizer::quantize`] with the same settings).
    #[inline]
    pub fn dequantize(&self, code: u32, prediction: f32) -> f32 {
        let q = code as i64 - self.radius;
        (prediction as f64 + q as f64 * 2.0 * self.abs_bound) as f32
    }

    /// Quantize a whole buffer against per-point predictions.
    ///
    /// `codes[i] == 0` marks unpredictable points, whose original values are
    /// appended to `unpredictable` in order. The returned `reconstruction`
    /// contains bound-respecting values for every point (verbatim values for
    /// the unpredictable ones).
    pub fn quantize_buffer(
        &self,
        values: &[f32],
        predictions: &[f32],
    ) -> (QuantizedBlock, Vec<f32>) {
        let mut codes = Vec::new();
        let mut unpredictable = Vec::new();
        let mut reconstruction = Vec::new();
        self.quantize_buffer_into(
            values,
            predictions,
            &mut codes,
            &mut unpredictable,
            &mut reconstruction,
        );
        (
            QuantizedBlock {
                codes,
                unpredictable,
            },
            reconstruction,
        )
    }

    /// [`Quantizer::quantize_buffer`] into caller-owned buffers (each
    /// cleared first), so per-block paths can reuse allocations.
    pub fn quantize_buffer_into(
        &self,
        values: &[f32],
        predictions: &[f32],
        codes: &mut Vec<u32>,
        unpredictable: &mut Vec<f32>,
        reconstruction: &mut Vec<f32>,
    ) {
        assert_eq!(values.len(), predictions.len());
        codes.clear();
        codes.reserve(values.len());
        unpredictable.clear();
        reconstruction.clear();
        reconstruction.reserve(values.len());
        for (&v, &p) in values.iter().zip(predictions.iter()) {
            match self.quantize(v, p) {
                Some((code, recon)) => {
                    codes.push(code + 1); // shift by one so 0 stays the escape code
                    reconstruction.push(recon);
                }
                None => {
                    codes.push(0);
                    unpredictable.push(v);
                    reconstruction.push(v);
                }
            }
        }
    }

    /// Inverse of [`Quantizer::quantize_buffer`] given the same predictions.
    pub fn dequantize_buffer(&self, block: &QuantizedBlock, predictions: &[f32]) -> Vec<f32> {
        let mut out = Vec::new();
        self.dequantize_buffer_into(&block.codes, &block.unpredictable, predictions, &mut out);
        out
    }

    /// [`Quantizer::dequantize_buffer`] from code/escape slices into a
    /// caller-owned buffer (cleared first).
    ///
    /// # Panics
    /// Panics when `unpredictable` has fewer entries than escape codes —
    /// same contract as [`Quantizer::dequantize_buffer`].
    pub fn dequantize_buffer_into(
        &self,
        codes: &[u32],
        unpredictable: &[f32],
        predictions: &[f32],
        out: &mut Vec<f32>,
    ) {
        assert_eq!(codes.len(), predictions.len());
        out.clear();
        out.reserve(codes.len());
        let mut un = unpredictable.iter();
        for (&code, &p) in codes.iter().zip(predictions.iter()) {
            if code == 0 {
                out.push(*un.next().expect("unpredictable value for escape code"));
            } else {
                out.push(self.dequantize(code - 1, p));
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn zero_residual_maps_to_radius() {
        let q = Quantizer::new(0.01, 256);
        let (code, recon) = q.quantize(1.0, 1.0).unwrap();
        assert_eq!(code, 128);
        assert_eq!(recon, 1.0);
    }

    #[test]
    fn reconstruction_respects_bound() {
        let q = Quantizer::with_default_bins(0.05);
        for i in -100..100 {
            let v = i as f32 * 0.013;
            let p = 0.2;
            if let Some((_, recon)) = q.quantize(v, p) {
                assert!((v - recon).abs() <= 0.05 + 1e-9, "v={v} recon={recon}");
            }
        }
    }

    #[test]
    fn large_residuals_become_unpredictable() {
        let q = Quantizer::new(1e-4, 256);
        // Residual of 1.0 ≫ 128 bins × 2e-4.
        assert!(q.quantize(1.0, 0.0).is_none());
        // NaN/inf predictions cannot be quantized either.
        assert!(q.quantize(1.0, f32::NAN).is_none());
        assert!(q.quantize(f32::INFINITY, 0.0).is_none());
    }

    #[test]
    fn buffer_roundtrip_with_escapes() {
        let q = Quantizer::new(0.01, 64);
        let values = vec![0.0f32, 0.5, 10.0, -0.2, 0.05];
        let preds = vec![0.0f32, 0.45, 0.0, -0.15, 0.0];
        let (blk, recon) = q.quantize_buffer(&values, &preds);
        assert_eq!(blk.codes.len(), 5);
        assert_eq!(blk.codes[2], 0, "huge residual must escape");
        assert_eq!(blk.unpredictable, vec![10.0]);
        for (v, r) in values.iter().zip(recon.iter()) {
            assert!((v - r).abs() <= 0.01 + 1e-9);
        }
        let deq = q.dequantize_buffer(&blk, &preds);
        assert_eq!(deq, recon);
    }

    #[test]
    #[should_panic(expected = "error bound must be positive")]
    fn rejects_nonpositive_bound() {
        Quantizer::new(0.0, 256);
    }

    #[test]
    #[should_panic(expected = "at least 4")]
    fn rejects_tiny_bin_count() {
        Quantizer::new(0.1, 2);
    }

    proptest! {
        /// For any value/prediction pair, either the quantizer escapes or the
        /// reconstruction error is within the bound — never silently outside.
        #[test]
        fn prop_error_bound_holds(
            value in -1e6f32..1e6,
            prediction in -1e6f32..1e6,
            bound_exp in -6i32..1,
        ) {
            let bound = 10f64.powi(bound_exp);
            let q = Quantizer::with_default_bins(bound);
            if let Some((code, recon)) = q.quantize(value, prediction) {
                prop_assert!((value as f64 - recon as f64).abs() <= bound + 1e-12);
                prop_assert!(code < DEFAULT_QUANT_BINS as u32);
                // Decoding the code must give back the same reconstruction.
                prop_assert_eq!(q.dequantize(code, prediction), recon);
            }
        }

        /// Buffer quantization always reconstructs within the bound, and the
        /// number of escape codes equals the number of stored verbatim values.
        #[test]
        fn prop_buffer_roundtrip(
            values in proptest::collection::vec(-1e4f32..1e4, 1..200),
            bound_exp in -4i32..0,
        ) {
            let bound = 10f64.powi(bound_exp);
            let q = Quantizer::with_default_bins(bound);
            let preds: Vec<f32> = values.iter().map(|v| v * 0.9).collect();
            let (blk, recon) = q.quantize_buffer(&values, &preds);
            let escapes = blk.codes.iter().filter(|&&c| c == 0).count();
            prop_assert_eq!(escapes, blk.unpredictable.len());
            for (v, r) in values.iter().zip(recon.iter()) {
                prop_assert!((v - r).abs() as f64 <= bound + 1e-9);
            }
            prop_assert_eq!(q.dequantize_buffer(&blk, &preds), recon);
        }
    }
}
