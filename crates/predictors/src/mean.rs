//! Block-mean predictor ("mean-Lorenzo" in AE-SZ).
//!
//! AE-SZ selects, per block, between the classic Lorenzo predictor and
//! predicting every point of the block by the block mean; the chosen mean is
//! stored losslessly in the stream. This module provides the mean computation
//! and the constant-prediction compression path.

use crate::quantizer::{QuantizedBlock, Quantizer};

/// Arithmetic mean of a block (0 for empty blocks).
pub fn block_mean(data: &[f32]) -> f32 {
    if data.is_empty() {
        return 0.0;
    }
    (data.iter().map(|&v| v as f64).sum::<f64>() / data.len() as f64) as f32
}

/// Sum of absolute deviations from the mean — the l1 loss of the mean
/// predictor, used for AE-SZ's per-block predictor selection.
pub fn mean_l1_loss(data: &[f32]) -> f64 {
    let m = block_mean(data) as f64;
    data.iter().map(|&v| (v as f64 - m).abs()).sum()
}

/// Quantize a block against the constant prediction `mean`.
pub fn compress(data: &[f32], mean: f32, quantizer: &Quantizer) -> (QuantizedBlock, Vec<f32>) {
    let mut codes = Vec::new();
    let mut unpredictable = Vec::new();
    let mut recon = Vec::new();
    compress_into(
        data,
        mean,
        quantizer,
        &mut codes,
        &mut unpredictable,
        &mut recon,
    );
    (
        QuantizedBlock {
            codes,
            unpredictable,
        },
        recon,
    )
}

/// [`compress`] into caller-owned buffers (each cleared first): the
/// constant prediction is passed per point instead of materialising a
/// `vec![mean; len]` — identical quantize calls, zero allocation.
pub fn compress_into(
    data: &[f32],
    mean: f32,
    quantizer: &Quantizer,
    codes: &mut Vec<u32>,
    unpredictable: &mut Vec<f32>,
    recon: &mut Vec<f32>,
) {
    codes.clear();
    codes.reserve(data.len());
    unpredictable.clear();
    recon.clear();
    recon.reserve(data.len());
    for &v in data {
        match quantizer.quantize(v, mean) {
            Some((code, r)) => {
                codes.push(code + 1);
                recon.push(r);
            }
            None => {
                codes.push(0);
                unpredictable.push(v);
                recon.push(v);
            }
        }
    }
}

/// Scalar twin of [`compress`]: materialises the constant prediction
/// buffer and goes through the generic quantize path.
pub fn compress_reference(
    data: &[f32],
    mean: f32,
    quantizer: &Quantizer,
) -> (QuantizedBlock, Vec<f32>) {
    let preds = vec![mean; data.len()];
    quantizer.quantize_buffer(data, &preds)
}

/// Reconstruct a block compressed with [`compress`] and the same `mean`.
pub fn decompress(block: &QuantizedBlock, mean: f32, quantizer: &Quantizer) -> Vec<f32> {
    let mut out = Vec::new();
    decompress_into(
        &block.codes,
        &block.unpredictable,
        mean,
        quantizer,
        &mut out,
    );
    out
}

/// [`decompress`] from code/escape slices into a caller-owned buffer
/// (cleared first).
///
/// # Panics
/// Panics when `unpredictable` has fewer entries than escape codes — same
/// contract as the scalar reference; callers validate counts up front.
pub fn decompress_into(
    codes: &[u32],
    unpredictable: &[f32],
    mean: f32,
    quantizer: &Quantizer,
    out: &mut Vec<f32>,
) {
    out.clear();
    out.reserve(codes.len());
    let mut un = unpredictable.iter();
    for &code in codes {
        if code == 0 {
            out.push(*un.next().expect("unpredictable value present"));
        } else {
            out.push(quantizer.dequantize(code - 1, mean));
        }
    }
}

/// Scalar twin of [`decompress`] through the generic dequantize path.
pub fn decompress_reference(block: &QuantizedBlock, mean: f32, quantizer: &Quantizer) -> Vec<f32> {
    let preds = vec![mean; block.codes.len()];
    quantizer.dequantize_buffer(block, &preds)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_of_known_block() {
        assert_eq!(block_mean(&[1.0, 2.0, 3.0, 4.0]), 2.5);
        assert_eq!(block_mean(&[]), 0.0);
    }

    #[test]
    fn constant_block_has_zero_loss_and_compresses_perfectly() {
        let data = vec![3.75f32; 64];
        assert_eq!(mean_l1_loss(&data), 0.0);
        let q = Quantizer::with_default_bins(1e-4);
        let (blk, recon) = compress(&data, block_mean(&data), &q);
        assert!(blk.unpredictable.is_empty());
        assert_eq!(recon, data);
        assert_eq!(decompress(&blk, 3.75, &q), data);
    }

    #[test]
    fn near_constant_block_respects_bound() {
        let data: Vec<f32> = (0..100)
            .map(|i| 5.0 + 1e-3 * (i as f32 * 0.7).sin())
            .collect();
        let q = Quantizer::with_default_bins(1e-3);
        let mean = block_mean(&data);
        let (blk, recon) = compress(&data, mean, &q);
        for (a, b) in data.iter().zip(recon.iter()) {
            assert!((a - b).abs() <= 1e-3 + 1e-9);
        }
        assert_eq!(decompress(&blk, mean, &q), recon);
    }

    #[test]
    fn l1_loss_orders_blocks_by_flatness() {
        let flat: Vec<f32> = (0..64).map(|i| 1.0 + 1e-4 * i as f32).collect();
        let bumpy: Vec<f32> = (0..64).map(|i| (i as f32).sin()).collect();
        assert!(mean_l1_loss(&flat) < mean_l1_loss(&bumpy));
    }
}
