//! First-order Lorenzo prediction (1D/2D/3D).
//!
//! The Lorenzo predictor estimates each point from its already-processed
//! neighbours: 1 neighbour in 1D, 3 in 2D, 7 in 3D (with alternating signs).
//! During compression the neighbours must be the *reconstructed* values, not
//! the originals, so that decompression — which only has reconstructed data —
//! produces bit-identical predictions. Both the streaming compressor form and
//! an "ideal" form (predicting from original data, used for predictor
//! selection and the error-distribution analysis of Fig. 7) are provided.

use crate::quantizer::{QuantizedBlock, Quantizer};

/// First-order Lorenzo prediction at scan position `(z, y, x)` using values
/// from `buf` (row-major with the given extents). Out-of-range neighbours
/// contribute zero, which is the standard SZ boundary treatment.
#[inline]
pub fn predict(buf: &[f32], extents: &[usize], coord: &[usize]) -> f32 {
    match extents.len() {
        1 => {
            let x = coord[0];
            if x >= 1 {
                buf[x - 1]
            } else {
                0.0
            }
        }
        2 => {
            let (ny, nx) = (extents[0], extents[1]);
            debug_assert_eq!(buf.len(), ny * nx);
            let (y, x) = (coord[0], coord[1]);
            let get = |yy: isize, xx: isize| -> f32 {
                if yy < 0 || xx < 0 {
                    0.0
                } else {
                    buf[yy as usize * nx + xx as usize]
                }
            };
            get(y as isize, x as isize - 1) + get(y as isize - 1, x as isize)
                - get(y as isize - 1, x as isize - 1)
        }
        3 => {
            let (ny, nx) = (extents[1], extents[2]);
            let (z, y, x) = (coord[0], coord[1], coord[2]);
            let get = |zz: isize, yy: isize, xx: isize| -> f32 {
                if zz < 0 || yy < 0 || xx < 0 {
                    0.0
                } else {
                    buf[(zz as usize * ny + yy as usize) * nx + xx as usize]
                }
            };
            let (zi, yi, xi) = (z as isize, y as isize, x as isize);
            get(zi - 1, yi, xi) + get(zi, yi - 1, xi) + get(zi, yi, xi - 1)
                - get(zi - 1, yi - 1, xi)
                - get(zi - 1, yi, xi - 1)
                - get(zi, yi - 1, xi - 1)
                + get(zi - 1, yi - 1, xi - 1)
        }
        r => panic!("Lorenzo predictor supports rank 1-3, got {r}"),
    }
}

/// Iterate coordinates of a row-major buffer with the given extents.
fn for_each_coord(extents: &[usize], mut f: impl FnMut(usize, &[usize])) {
    match extents.len() {
        1 => {
            for x in 0..extents[0] {
                f(x, &[x]);
            }
        }
        2 => {
            let mut i = 0;
            for y in 0..extents[0] {
                for x in 0..extents[1] {
                    f(i, &[y, x]);
                    i += 1;
                }
            }
        }
        3 => {
            let mut i = 0;
            for z in 0..extents[0] {
                for y in 0..extents[1] {
                    for x in 0..extents[2] {
                        f(i, &[z, y, x]);
                        i += 1;
                    }
                }
            }
        }
        r => panic!("Lorenzo predictor supports rank 1-3, got {r}"),
    }
}

/// Region-split Lorenzo scan shared by every optimized kernel in this
/// module. Expands to row-major loops over `$extents`, invoking the local
/// macro `$step!(index, prediction_expr)` at each point with the
/// first-order Lorenzo prediction read from `$buf`.
///
/// Out-of-range neighbour terms stay in the expressions as literal `0.0`
/// in the exact position and order [`predict`] evaluates them: IEEE signed
/// zeros make `-0.0 + 0.0 == +0.0`, so shortening `left + 0.0 - 0.0` to
/// `left` would change bits for `-0.0` inputs and, through the encoder's
/// reconstruction feedback, diverge from the scalar reference.
macro_rules! lorenzo_scan {
    ($buf:ident, $extents:ident, $step:ident) => {
        match $extents.len() {
            1 => {
                let n = $extents[0];
                if n > 0 {
                    $step!(0, 0.0);
                }
                for x in 1..n {
                    $step!(x, $buf[x - 1]);
                }
            }
            2 => {
                let (ny, nx) = ($extents[0], $extents[1]);
                if ny > 0 && nx > 0 {
                    $step!(0, 0.0 + 0.0 - 0.0);
                    for x in 1..nx {
                        $step!(x, $buf[x - 1] + 0.0 - 0.0);
                    }
                    for y in 1..ny {
                        let i = y * nx;
                        $step!(i, 0.0 + $buf[i - nx] - 0.0);
                        for x in 1..nx {
                            let j = i + x;
                            $step!(j, $buf[j - 1] + $buf[j - nx] - $buf[j - nx - 1]);
                        }
                    }
                }
            }
            3 => {
                let (nz, ny, nx) = ($extents[0], $extents[1], $extents[2]);
                if nz > 0 && ny > 0 && nx > 0 {
                    $step!(0, 0.0 + 0.0 + 0.0 - 0.0 - 0.0 - 0.0 + 0.0);
                    for x in 1..nx {
                        $step!(x, 0.0 + 0.0 + $buf[x - 1] - 0.0 - 0.0 - 0.0 + 0.0);
                    }
                    for y in 1..ny {
                        let i = y * nx;
                        $step!(i, 0.0 + $buf[i - nx] + 0.0 - 0.0 - 0.0 - 0.0 + 0.0);
                        for x in 1..nx {
                            let j = i + x;
                            $step!(
                                j,
                                0.0 + $buf[j - nx] + $buf[j - 1] - 0.0 - 0.0 - $buf[j - nx - 1]
                                    + 0.0
                            );
                        }
                    }
                    let plane = ny * nx;
                    for z in 1..nz {
                        let zi = z * plane;
                        $step!(zi, $buf[zi - plane] + 0.0 + 0.0 - 0.0 - 0.0 - 0.0 + 0.0);
                        for x in 1..nx {
                            let j = zi + x;
                            $step!(
                                j,
                                $buf[j - plane] + 0.0 + $buf[j - 1]
                                    - 0.0
                                    - $buf[j - plane - 1]
                                    - 0.0
                                    + 0.0
                            );
                        }
                        for y in 1..ny {
                            let i = zi + y * nx;
                            $step!(
                                i,
                                $buf[i - plane] + $buf[i - nx] + 0.0
                                    - $buf[i - plane - nx]
                                    - 0.0
                                    - 0.0
                                    + 0.0
                            );
                            for x in 1..nx {
                                let j = i + x;
                                $step!(
                                    j,
                                    $buf[j - plane] + $buf[j - nx] + $buf[j - 1]
                                        - $buf[j - plane - nx]
                                        - $buf[j - plane - 1]
                                        - $buf[j - nx - 1]
                                        + $buf[j - plane - nx - 1]
                                );
                            }
                        }
                    }
                }
            }
            r => panic!("Lorenzo predictor supports rank 1-3, got {r}"),
        }
    };
}

/// "Ideal" Lorenzo predictions computed from the original data (no feedback of
/// reconstruction error). Used for predictor selection and Fig. 7.
pub fn ideal_predictions(data: &[f32], extents: &[usize]) -> Vec<f32> {
    let mut preds = Vec::new();
    ideal_predictions_into(data, extents, &mut preds);
    preds
}

/// [`ideal_predictions`] into a caller-owned buffer (cleared first), so
/// per-block paths can reuse one allocation across blocks.
pub fn ideal_predictions_into(data: &[f32], extents: &[usize], preds: &mut Vec<f32>) {
    let n: usize = extents.iter().product();
    assert_eq!(data.len(), n, "data length must match extents");
    preds.clear();
    preds.resize(n, 0.0);
    macro_rules! step {
        ($j:expr, $pred:expr) => {{
            let p: f32 = $pred;
            preds[$j] = p;
        }};
    }
    lorenzo_scan!(data, extents, step);
}

/// Scalar twin of [`ideal_predictions`]: per-point [`predict`] through the
/// generic coordinate walk. The differential harness drives both.
pub fn ideal_predictions_reference(data: &[f32], extents: &[usize]) -> Vec<f32> {
    let mut preds = vec![0.0f32; data.len()];
    for_each_coord(extents, |i, coord| {
        preds[i] = predict(data, extents, coord);
    });
    preds
}

/// l1 loss of the ideal Lorenzo predictor, fused and allocation-free:
/// identical to summing `|data[i] − ideal_predictions(data)[i]|` as `f64`
/// in scan order, without materialising the prediction buffer.
pub fn l1_loss(data: &[f32], extents: &[usize]) -> f64 {
    let n: usize = extents.iter().product();
    assert_eq!(data.len(), n, "data length must match extents");
    let mut sum = 0.0f64;
    macro_rules! step {
        ($j:expr, $pred:expr) => {{
            let j = $j;
            let p: f32 = $pred;
            sum += (data[j] as f64 - p as f64).abs();
        }};
    }
    lorenzo_scan!(data, extents, step);
    sum
}

/// Compress a buffer with streaming Lorenzo prediction + linear quantization.
///
/// Returns the quantized block and the reconstruction (the values a decoder
/// will produce), which respects the quantizer's error bound at every point.
pub fn compress(
    data: &[f32],
    extents: &[usize],
    quantizer: &Quantizer,
) -> (QuantizedBlock, Vec<f32>) {
    let mut codes = Vec::new();
    let mut unpredictable = Vec::new();
    let mut recon = Vec::new();
    compress_into(
        data,
        extents,
        quantizer,
        &mut codes,
        &mut unpredictable,
        &mut recon,
    );
    (
        QuantizedBlock {
            codes,
            unpredictable,
        },
        recon,
    )
}

/// [`compress`] into caller-owned buffers (each cleared first). The
/// prediction source is the reconstruction buffer as it fills, exactly as
/// in the scalar reference — feedback of quantization error included.
pub fn compress_into(
    data: &[f32],
    extents: &[usize],
    quantizer: &Quantizer,
    codes: &mut Vec<u32>,
    unpredictable: &mut Vec<f32>,
    recon: &mut Vec<f32>,
) {
    let n: usize = extents.iter().product();
    assert_eq!(data.len(), n, "data length must match extents");
    codes.clear();
    codes.reserve(n);
    unpredictable.clear();
    recon.clear();
    recon.resize(n, 0.0);
    macro_rules! step {
        ($j:expr, $pred:expr) => {{
            let j = $j;
            let pred: f32 = $pred;
            match quantizer.quantize(data[j], pred) {
                Some((code, r)) => {
                    codes.push(code + 1);
                    recon[j] = r;
                }
                None => {
                    codes.push(0);
                    unpredictable.push(data[j]);
                    recon[j] = data[j];
                }
            }
        }};
    }
    lorenzo_scan!(recon, extents, step);
}

/// Scalar twin of [`compress`]: per-point [`predict`] over the growing
/// reconstruction through the generic coordinate walk.
pub fn compress_reference(
    data: &[f32],
    extents: &[usize],
    quantizer: &Quantizer,
) -> (QuantizedBlock, Vec<f32>) {
    let n: usize = extents.iter().product();
    assert_eq!(data.len(), n, "data length must match extents");
    let mut recon = vec![0.0f32; n];
    let mut codes = Vec::with_capacity(n);
    let mut unpredictable = Vec::new();
    for_each_coord(extents, |i, coord| {
        let pred = predict(&recon, extents, coord);
        match quantizer.quantize(data[i], pred) {
            Some((code, r)) => {
                codes.push(code + 1);
                recon[i] = r;
            }
            None => {
                codes.push(0);
                unpredictable.push(data[i]);
                recon[i] = data[i];
            }
        }
    });
    (
        QuantizedBlock {
            codes,
            unpredictable,
        },
        recon,
    )
}

/// Decompress a buffer produced by [`compress`] with the same quantizer.
pub fn decompress(block: &QuantizedBlock, extents: &[usize], quantizer: &Quantizer) -> Vec<f32> {
    let mut recon = Vec::new();
    decompress_into(
        &block.codes,
        &block.unpredictable,
        extents,
        quantizer,
        &mut recon,
    );
    recon
}

/// [`decompress`] from code/escape slices into a caller-owned buffer
/// (cleared first), so per-block decode paths reuse one allocation and
/// never copy the section slices into temporary vectors.
///
/// # Panics
/// Panics when `unpredictable` has fewer entries than escape codes — same
/// contract as the scalar reference; callers validate counts up front.
pub fn decompress_into(
    codes: &[u32],
    unpredictable: &[f32],
    extents: &[usize],
    quantizer: &Quantizer,
    recon: &mut Vec<f32>,
) {
    let n: usize = extents.iter().product();
    assert_eq!(codes.len(), n, "code count must match extents");
    recon.clear();
    recon.resize(n, 0.0);
    let mut un = unpredictable.iter();
    macro_rules! step {
        ($j:expr, $pred:expr) => {{
            let j = $j;
            let pred: f32 = $pred;
            let code = codes[j];
            recon[j] = if code == 0 {
                *un.next().expect("unpredictable value present")
            } else {
                quantizer.dequantize(code - 1, pred)
            };
        }};
    }
    lorenzo_scan!(recon, extents, step);
}

/// Scalar twin of [`decompress`]: per-point [`predict`] over the growing
/// reconstruction through the generic coordinate walk.
pub fn decompress_reference(
    block: &QuantizedBlock,
    extents: &[usize],
    quantizer: &Quantizer,
) -> Vec<f32> {
    let n: usize = extents.iter().product();
    assert_eq!(block.codes.len(), n, "code count must match extents");
    let mut recon = vec![0.0f32; n];
    let mut un = block.unpredictable.iter();
    for_each_coord(extents, |i, coord| {
        let pred = predict(&recon, extents, coord);
        let code = block.codes[i];
        recon[i] = if code == 0 {
            *un.next().expect("unpredictable value present")
        } else {
            quantizer.dequantize(code - 1, pred)
        };
    });
    recon
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn predict_2d_matches_paper_formula() {
        // d[i][j] predicted by d[i][j-1] + d[i-1][j] - d[i-1][j-1].
        let buf = vec![1.0, 2.0, 3.0, 4.0, 5.0, 0.0, 7.0, 8.0, 0.0];
        assert_eq!(predict(&buf, &[3, 3], &[1, 1]), 4.0 + 2.0 - 1.0);
        assert_eq!(predict(&buf, &[3, 3], &[0, 0]), 0.0);
        assert_eq!(predict(&buf, &[3, 3], &[0, 2]), 2.0);
        assert_eq!(predict(&buf, &[3, 3], &[2, 0]), 4.0);
    }

    #[test]
    fn predict_3d_uses_seven_neighbours() {
        // A perfectly tri-linear field is predicted exactly by the 3D Lorenzo stencil.
        let extents = [3usize, 3, 3];
        let f =
            |z: usize, y: usize, x: usize| 2.0 * z as f32 + 3.0 * y as f32 + 5.0 * x as f32 + 1.0;
        let mut buf = vec![0.0f32; 27];
        for z in 0..3 {
            for y in 0..3 {
                for x in 0..3 {
                    buf[(z * 3 + y) * 3 + x] = f(z, y, x);
                }
            }
        }
        let p = predict(&buf, &extents, &[2, 2, 2]);
        assert!((p - f(2, 2, 2)).abs() < 1e-5);
    }

    #[test]
    fn linear_ramp_is_predicted_exactly_in_interior() {
        let nx = 16usize;
        let data: Vec<f32> = (0..nx * nx).map(|i| (i % nx + i / nx) as f32).collect();
        let preds = ideal_predictions(&data, &[nx, nx]);
        for y in 1..nx {
            for x in 1..nx {
                assert!((preds[y * nx + x] - data[y * nx + x]).abs() < 1e-5);
            }
        }
    }

    #[test]
    fn compress_decompress_roundtrip_respects_bound() {
        let n = 32usize;
        let data: Vec<f32> = (0..n * n)
            .map(|i| ((i % n) as f32 * 0.3).sin() + ((i / n) as f32 * 0.2).cos())
            .collect();
        let q = Quantizer::with_default_bins(1e-3);
        let (blk, recon) = compress(&data, &[n, n], &q);
        for (a, b) in data.iter().zip(recon.iter()) {
            assert!((a - b).abs() <= 1e-3 + 1e-9);
        }
        let dec = decompress(&blk, &[n, n], &q);
        assert_eq!(
            dec, recon,
            "decoder must reproduce the encoder reconstruction exactly"
        );
    }

    #[test]
    fn smooth_data_yields_concentrated_codes() {
        let n = 64usize;
        let data: Vec<f32> = (0..n * n)
            .map(|i| ((i % n) as f32 * 0.05).sin() * 3.0)
            .collect();
        let q = Quantizer::with_default_bins(1e-2);
        let (blk, _) = compress(&data, &[n, n], &q);
        let radius_code = (crate::quantizer::DEFAULT_QUANT_BINS / 2) as u32 + 1;
        let near_centre = blk
            .codes
            .iter()
            .filter(|&&c| c != 0 && (c as i64 - radius_code as i64).abs() <= 2)
            .count();
        assert!(near_centre * 10 > blk.codes.len() * 9);
        assert!(blk.unpredictable.is_empty());
    }

    #[test]
    #[should_panic(expected = "rank 1-3")]
    fn rejects_rank_4() {
        predict(&[0.0; 16], &[2, 2, 2, 2], &[0, 0, 0, 0]);
    }

    #[test]
    fn optimized_kernels_match_reference_bitwise() {
        // Signed zeros, denormals and huge values included: the optimized
        // scan must reproduce the reference bits, not just close values.
        let tricky = [
            -0.0f32,
            0.0,
            f32::MIN_POSITIVE / 2.0,
            -1e30,
            1e30,
            1.0,
            -0.0,
            3.5,
        ];
        let cases: Vec<(Vec<f32>, Vec<usize>)> = vec![
            (tricky.iter().cycle().take(13).copied().collect(), vec![13]),
            (
                tricky.iter().cycle().take(35).copied().collect(),
                vec![5, 7],
            ),
            (
                tricky.iter().cycle().take(60).copied().collect(),
                vec![3, 4, 5],
            ),
            (
                (0..64).map(|i| (i as f32 * 0.3).sin()).collect(),
                vec![8, 8],
            ),
        ];
        let q = Quantizer::with_default_bins(1e-3);
        for (data, extents) in &cases {
            let fast = ideal_predictions(data, extents);
            let slow = ideal_predictions_reference(data, extents);
            assert_eq!(
                fast.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
                slow.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
                "ideal predictions diverge for extents {extents:?}"
            );
            let loss_fast = l1_loss(data, extents);
            let loss_slow: f64 = data
                .iter()
                .zip(slow.iter())
                .map(|(&a, &b)| (a as f64 - b as f64).abs())
                .sum();
            assert_eq!(loss_fast.to_bits(), loss_slow.to_bits());
            let (blk_f, rec_f) = compress(data, extents, &q);
            let (blk_s, rec_s) = compress_reference(data, extents, &q);
            assert_eq!(blk_f, blk_s);
            assert_eq!(
                rec_f.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
                rec_s.iter().map(|v| v.to_bits()).collect::<Vec<_>>()
            );
            let dec_f = decompress(&blk_f, extents, &q);
            let dec_s = decompress_reference(&blk_s, extents, &q);
            assert_eq!(
                dec_f.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
                dec_s.iter().map(|v| v.to_bits()).collect::<Vec<_>>()
            );
        }
    }

    proptest! {
        /// Roundtrip property: for random smooth-ish data in any supported rank,
        /// decompression reproduces the encoder-side reconstruction exactly and
        /// the error bound holds.
        #[test]
        fn prop_roundtrip(
            values in proptest::collection::vec(-100.0f32..100.0, 8..64),
            rank in 1usize..=3,
            bound_exp in -3i32..0,
        ) {
            let bound = 10f64.powi(bound_exp);
            // Shape the flat vector into the requested rank.
            let extents: Vec<usize> = match rank {
                1 => vec![values.len()],
                2 => {
                    let s = (values.len() as f64).sqrt() as usize;
                    vec![s.max(1), values.len() / s.max(1)]
                }
                _ => {
                    let s = (values.len() as f64).cbrt() as usize;
                    vec![s.max(1), s.max(1), values.len() / (s.max(1) * s.max(1))]
                }
            };
            let n: usize = extents.iter().product();
            prop_assume!(n > 0);
            let data = &values[..n];
            let q = Quantizer::with_default_bins(bound);
            let (blk, recon) = compress(data, &extents, &q);
            for (a, b) in data.iter().zip(recon.iter()) {
                prop_assert!((a - b).abs() as f64 <= bound + 1e-9);
            }
            prop_assert_eq!(decompress(&blk, &extents, &q), recon);
        }
    }
}
