//! First-order Lorenzo prediction (1D/2D/3D).
//!
//! The Lorenzo predictor estimates each point from its already-processed
//! neighbours: 1 neighbour in 1D, 3 in 2D, 7 in 3D (with alternating signs).
//! During compression the neighbours must be the *reconstructed* values, not
//! the originals, so that decompression — which only has reconstructed data —
//! produces bit-identical predictions. Both the streaming compressor form and
//! an "ideal" form (predicting from original data, used for predictor
//! selection and the error-distribution analysis of Fig. 7) are provided.

use crate::quantizer::{QuantizedBlock, Quantizer};

/// First-order Lorenzo prediction at scan position `(z, y, x)` using values
/// from `buf` (row-major with the given extents). Out-of-range neighbours
/// contribute zero, which is the standard SZ boundary treatment.
#[inline]
pub fn predict(buf: &[f32], extents: &[usize], coord: &[usize]) -> f32 {
    match extents.len() {
        1 => {
            let x = coord[0];
            if x >= 1 {
                buf[x - 1]
            } else {
                0.0
            }
        }
        2 => {
            let (ny, nx) = (extents[0], extents[1]);
            debug_assert_eq!(buf.len(), ny * nx);
            let (y, x) = (coord[0], coord[1]);
            let get = |yy: isize, xx: isize| -> f32 {
                if yy < 0 || xx < 0 {
                    0.0
                } else {
                    buf[yy as usize * nx + xx as usize]
                }
            };
            get(y as isize, x as isize - 1) + get(y as isize - 1, x as isize)
                - get(y as isize - 1, x as isize - 1)
        }
        3 => {
            let (ny, nx) = (extents[1], extents[2]);
            let (z, y, x) = (coord[0], coord[1], coord[2]);
            let get = |zz: isize, yy: isize, xx: isize| -> f32 {
                if zz < 0 || yy < 0 || xx < 0 {
                    0.0
                } else {
                    buf[(zz as usize * ny + yy as usize) * nx + xx as usize]
                }
            };
            let (zi, yi, xi) = (z as isize, y as isize, x as isize);
            get(zi - 1, yi, xi) + get(zi, yi - 1, xi) + get(zi, yi, xi - 1)
                - get(zi - 1, yi - 1, xi)
                - get(zi - 1, yi, xi - 1)
                - get(zi, yi - 1, xi - 1)
                + get(zi - 1, yi - 1, xi - 1)
        }
        r => panic!("Lorenzo predictor supports rank 1-3, got {r}"),
    }
}

/// Iterate coordinates of a row-major buffer with the given extents.
fn for_each_coord(extents: &[usize], mut f: impl FnMut(usize, &[usize])) {
    match extents.len() {
        1 => {
            for x in 0..extents[0] {
                f(x, &[x]);
            }
        }
        2 => {
            let mut i = 0;
            for y in 0..extents[0] {
                for x in 0..extents[1] {
                    f(i, &[y, x]);
                    i += 1;
                }
            }
        }
        3 => {
            let mut i = 0;
            for z in 0..extents[0] {
                for y in 0..extents[1] {
                    for x in 0..extents[2] {
                        f(i, &[z, y, x]);
                        i += 1;
                    }
                }
            }
        }
        r => panic!("Lorenzo predictor supports rank 1-3, got {r}"),
    }
}

/// "Ideal" Lorenzo predictions computed from the original data (no feedback of
/// reconstruction error). Used for predictor selection and Fig. 7.
pub fn ideal_predictions(data: &[f32], extents: &[usize]) -> Vec<f32> {
    let mut preds = vec![0.0f32; data.len()];
    for_each_coord(extents, |i, coord| {
        preds[i] = predict(data, extents, coord);
    });
    preds
}

/// Compress a buffer with streaming Lorenzo prediction + linear quantization.
///
/// Returns the quantized block and the reconstruction (the values a decoder
/// will produce), which respects the quantizer's error bound at every point.
pub fn compress(
    data: &[f32],
    extents: &[usize],
    quantizer: &Quantizer,
) -> (QuantizedBlock, Vec<f32>) {
    let n: usize = extents.iter().product();
    assert_eq!(data.len(), n, "data length must match extents");
    let mut recon = vec![0.0f32; n];
    let mut codes = Vec::with_capacity(n);
    let mut unpredictable = Vec::new();
    for_each_coord(extents, |i, coord| {
        let pred = predict(&recon, extents, coord);
        match quantizer.quantize(data[i], pred) {
            Some((code, r)) => {
                codes.push(code + 1);
                recon[i] = r;
            }
            None => {
                codes.push(0);
                unpredictable.push(data[i]);
                recon[i] = data[i];
            }
        }
    });
    (
        QuantizedBlock {
            codes,
            unpredictable,
        },
        recon,
    )
}

/// Decompress a buffer produced by [`compress`] with the same quantizer.
pub fn decompress(block: &QuantizedBlock, extents: &[usize], quantizer: &Quantizer) -> Vec<f32> {
    let n: usize = extents.iter().product();
    assert_eq!(block.codes.len(), n, "code count must match extents");
    let mut recon = vec![0.0f32; n];
    let mut un = block.unpredictable.iter();
    for_each_coord(extents, |i, coord| {
        let pred = predict(&recon, extents, coord);
        let code = block.codes[i];
        recon[i] = if code == 0 {
            *un.next().expect("unpredictable value present")
        } else {
            quantizer.dequantize(code - 1, pred)
        };
    });
    recon
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn predict_2d_matches_paper_formula() {
        // d[i][j] predicted by d[i][j-1] + d[i-1][j] - d[i-1][j-1].
        let buf = vec![1.0, 2.0, 3.0, 4.0, 5.0, 0.0, 7.0, 8.0, 0.0];
        assert_eq!(predict(&buf, &[3, 3], &[1, 1]), 4.0 + 2.0 - 1.0);
        assert_eq!(predict(&buf, &[3, 3], &[0, 0]), 0.0);
        assert_eq!(predict(&buf, &[3, 3], &[0, 2]), 2.0);
        assert_eq!(predict(&buf, &[3, 3], &[2, 0]), 4.0);
    }

    #[test]
    fn predict_3d_uses_seven_neighbours() {
        // A perfectly tri-linear field is predicted exactly by the 3D Lorenzo stencil.
        let extents = [3usize, 3, 3];
        let f =
            |z: usize, y: usize, x: usize| 2.0 * z as f32 + 3.0 * y as f32 + 5.0 * x as f32 + 1.0;
        let mut buf = vec![0.0f32; 27];
        for z in 0..3 {
            for y in 0..3 {
                for x in 0..3 {
                    buf[(z * 3 + y) * 3 + x] = f(z, y, x);
                }
            }
        }
        let p = predict(&buf, &extents, &[2, 2, 2]);
        assert!((p - f(2, 2, 2)).abs() < 1e-5);
    }

    #[test]
    fn linear_ramp_is_predicted_exactly_in_interior() {
        let nx = 16usize;
        let data: Vec<f32> = (0..nx * nx).map(|i| (i % nx + i / nx) as f32).collect();
        let preds = ideal_predictions(&data, &[nx, nx]);
        for y in 1..nx {
            for x in 1..nx {
                assert!((preds[y * nx + x] - data[y * nx + x]).abs() < 1e-5);
            }
        }
    }

    #[test]
    fn compress_decompress_roundtrip_respects_bound() {
        let n = 32usize;
        let data: Vec<f32> = (0..n * n)
            .map(|i| ((i % n) as f32 * 0.3).sin() + ((i / n) as f32 * 0.2).cos())
            .collect();
        let q = Quantizer::with_default_bins(1e-3);
        let (blk, recon) = compress(&data, &[n, n], &q);
        for (a, b) in data.iter().zip(recon.iter()) {
            assert!((a - b).abs() <= 1e-3 + 1e-9);
        }
        let dec = decompress(&blk, &[n, n], &q);
        assert_eq!(
            dec, recon,
            "decoder must reproduce the encoder reconstruction exactly"
        );
    }

    #[test]
    fn smooth_data_yields_concentrated_codes() {
        let n = 64usize;
        let data: Vec<f32> = (0..n * n)
            .map(|i| ((i % n) as f32 * 0.05).sin() * 3.0)
            .collect();
        let q = Quantizer::with_default_bins(1e-2);
        let (blk, _) = compress(&data, &[n, n], &q);
        let radius_code = (crate::quantizer::DEFAULT_QUANT_BINS / 2) as u32 + 1;
        let near_centre = blk
            .codes
            .iter()
            .filter(|&&c| c != 0 && (c as i64 - radius_code as i64).abs() <= 2)
            .count();
        assert!(near_centre * 10 > blk.codes.len() * 9);
        assert!(blk.unpredictable.is_empty());
    }

    #[test]
    #[should_panic(expected = "rank 1-3")]
    fn rejects_rank_4() {
        predict(&[0.0; 16], &[2, 2, 2, 2], &[0, 0, 0, 0]);
    }

    proptest! {
        /// Roundtrip property: for random smooth-ish data in any supported rank,
        /// decompression reproduces the encoder-side reconstruction exactly and
        /// the error bound holds.
        #[test]
        fn prop_roundtrip(
            values in proptest::collection::vec(-100.0f32..100.0, 8..64),
            rank in 1usize..=3,
            bound_exp in -3i32..0,
        ) {
            let bound = 10f64.powi(bound_exp);
            // Shape the flat vector into the requested rank.
            let extents: Vec<usize> = match rank {
                1 => vec![values.len()],
                2 => {
                    let s = (values.len() as f64).sqrt() as usize;
                    vec![s.max(1), values.len() / s.max(1)]
                }
                _ => {
                    let s = (values.len() as f64).cbrt() as usize;
                    vec![s.max(1), s.max(1), values.len() / (s.max(1) * s.max(1))]
                }
            };
            let n: usize = extents.iter().product();
            prop_assume!(n > 0);
            let data = &values[..n];
            let q = Quantizer::with_default_bins(bound);
            let (blk, recon) = compress(data, &extents, &q);
            for (a, b) in data.iter().zip(recon.iter()) {
                prop_assert!((a - b).abs() as f64 <= bound + 1e-9);
            }
            prop_assert_eq!(decompress(&blk, &extents, &q), recon);
        }
    }
}
