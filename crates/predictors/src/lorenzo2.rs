//! Second-order Lorenzo prediction (the higher-order predictor of SZauto).
//!
//! SZauto augments SZ with second-order regression/Lorenzo prediction: each
//! point is extrapolated from a 2-wide neighbourhood in every dimension. The
//! general d-dimensional, order-n Lorenzo stencil assigns the neighbour at
//! offset `(i₁,…,i_d)` (not all zero, 0 ≤ i_k ≤ n) the coefficient
//! `−(−1)^(i₁+…+i_d) · C(n,i₁)···C(n,i_d)`; for n = 1 this reduces to the
//! classic Lorenzo predictor, and n = 2 is what SZauto uses.

use crate::quantizer::{QuantizedBlock, Quantizer};

/// Binomial coefficient C(2, k) for the second-order stencil.
#[inline]
fn c2(k: usize) -> f32 {
    match k {
        0 => 1.0,
        1 => 2.0,
        2 => 1.0,
        _ => 0.0,
    }
}

/// Second-order Lorenzo prediction at `coord` from `buf` (row-major with the
/// given extents). Out-of-range neighbours contribute zero.
pub fn predict(buf: &[f32], extents: &[usize], coord: &[usize]) -> f32 {
    let rank = extents.len();
    assert!((1..=3).contains(&rank), "rank 1-3 supported, got {rank}");
    let mut acc = 0.0f32;
    // Enumerate all offsets (i1, .., i_rank) in {0,1,2}^rank except all-zero.
    let max_offsets = 3usize.pow(rank as u32);
    for mask in 1..max_offsets {
        let mut rem = mask;
        let mut offs = [0usize; 3];
        for item in offs.iter_mut().take(rank) {
            *item = rem % 3;
            rem /= 3;
        }
        // Coefficient: -(-1)^(sum) * prod C(2, i_k).
        let sum: usize = offs[..rank].iter().sum();
        let mut coeff = if sum.is_multiple_of(2) { -1.0f32 } else { 1.0 };
        for &o in &offs[..rank] {
            coeff *= c2(o);
        }
        // Neighbour position coord - offs (reversed axis order of the mask is
        // irrelevant because the stencil is symmetric in its construction).
        let mut idx = 0usize;
        let mut in_range = true;
        for ax in 0..rank {
            let off = offs[rank - 1 - ax]; // fastest axis first in the mask
            if coord[ax] < off {
                in_range = false;
                break;
            }
            idx = idx * extents[ax] + (coord[ax] - off);
        }
        if in_range {
            acc += coeff * buf[idx];
        }
    }
    acc
}

fn for_each_coord(extents: &[usize], mut f: impl FnMut(usize, &[usize])) {
    match extents.len() {
        1 => {
            for x in 0..extents[0] {
                f(x, &[x]);
            }
        }
        2 => {
            let mut i = 0;
            for y in 0..extents[0] {
                for x in 0..extents[1] {
                    f(i, &[y, x]);
                    i += 1;
                }
            }
        }
        3 => {
            let mut i = 0;
            for z in 0..extents[0] {
                for y in 0..extents[1] {
                    for x in 0..extents[2] {
                        f(i, &[z, y, x]);
                        i += 1;
                    }
                }
            }
        }
        r => panic!("rank 1-3 supported, got {r}"),
    }
}

/// Ideal second-order predictions from original data (for analysis).
pub fn ideal_predictions(data: &[f32], extents: &[usize]) -> Vec<f32> {
    let mut preds = vec![0.0f32; data.len()];
    for_each_coord(extents, |i, coord| {
        preds[i] = predict(data, extents, coord);
    });
    preds
}

/// Streaming compression with the second-order predictor (reconstruction feedback).
pub fn compress(
    data: &[f32],
    extents: &[usize],
    quantizer: &Quantizer,
) -> (QuantizedBlock, Vec<f32>) {
    let n: usize = extents.iter().product();
    assert_eq!(data.len(), n);
    let mut recon = vec![0.0f32; n];
    let mut codes = Vec::with_capacity(n);
    let mut unpredictable = Vec::new();
    for_each_coord(extents, |i, coord| {
        let pred = predict(&recon, extents, coord);
        match quantizer.quantize(data[i], pred) {
            Some((code, r)) => {
                codes.push(code + 1);
                recon[i] = r;
            }
            None => {
                codes.push(0);
                unpredictable.push(data[i]);
                recon[i] = data[i];
            }
        }
    });
    (
        QuantizedBlock {
            codes,
            unpredictable,
        },
        recon,
    )
}

/// Decompression matching [`compress`].
pub fn decompress(block: &QuantizedBlock, extents: &[usize], quantizer: &Quantizer) -> Vec<f32> {
    let n: usize = extents.iter().product();
    assert_eq!(block.codes.len(), n);
    let mut recon = vec![0.0f32; n];
    let mut un = block.unpredictable.iter();
    for_each_coord(extents, |i, coord| {
        let pred = predict(&recon, extents, coord);
        let code = block.codes[i];
        recon[i] = if code == 0 {
            *un.next().expect("unpredictable value present")
        } else {
            quantizer.dequantize(code - 1, pred)
        };
    });
    recon
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reproduces_quadratic_1d_exactly() {
        // Second-order extrapolation is exact for quadratics: p = 2a[i-1] - a[i-2] + ... wait,
        // the order-2 1D stencil is 2*a[i-1] - a[i-2] only for order 1 of differences;
        // the C(2,·) stencil predicts a[i] = 2a[i-1] - a[i-2] exactly for linear data and
        // stays within O(h²) for quadratics. Verify the linear case is exact.
        let data: Vec<f32> = (0..32).map(|i| 3.0 * i as f32 + 2.0).collect();
        let preds = ideal_predictions(&data, &[32]);
        for i in 2..32 {
            assert!((preds[i] - data[i]).abs() < 1e-4, "i={i}");
        }
    }

    #[test]
    fn second_order_beats_first_order_on_curved_2d_data() {
        let n = 32usize;
        let data: Vec<f32> = (0..n * n)
            .map(|i| {
                let y = (i / n) as f32;
                let x = (i % n) as f32;
                0.05 * y * y + 0.03 * x * x + 0.02 * x * y
            })
            .collect();
        let p2 = ideal_predictions(&data, &[n, n]);
        let p1 = crate::lorenzo::ideal_predictions(&data, &[n, n]);
        // Compare interior error only (boundaries are handled the same way).
        let err = |p: &[f32]| -> f64 {
            let mut e = 0.0;
            for y in 2..n {
                for x in 2..n {
                    e += (p[y * n + x] as f64 - data[y * n + x] as f64).abs();
                }
            }
            e
        };
        assert!(
            err(&p2) < err(&p1) * 0.5,
            "2nd order {} vs 1st order {}",
            err(&p2),
            err(&p1)
        );
    }

    #[test]
    fn reduces_to_first_order_pattern_on_boundaries() {
        // First element has no neighbours: prediction 0.
        let data = vec![5.0f32; 10];
        let preds = ideal_predictions(&data, &[10]);
        assert_eq!(preds[0], 0.0);
    }

    #[test]
    fn roundtrip_respects_bound() {
        let n = 24usize;
        let data: Vec<f32> = (0..n * n * n)
            .map(|i| {
                let z = (i / (n * n)) as f32;
                let y = ((i / n) % n) as f32;
                let x = (i % n) as f32;
                (0.1 * z).exp() * (0.2 * y).sin() + 0.01 * x * x
            })
            .collect();
        let q = Quantizer::with_default_bins(1e-2);
        let (blk, recon) = compress(&data, &[n, n, n], &q);
        for (a, b) in data.iter().zip(recon.iter()) {
            assert!((a - b).abs() <= 1e-2 + 1e-9);
        }
        assert_eq!(decompress(&blk, &[n, n, n], &q), recon);
    }
}
