//! Blockwise linear-regression predictor (the second predictor of SZ2.1).
//!
//! SZ2.1 fits, per block, an affine function of the coordinates
//! (`v ≈ a·x + b·y (+ c·z) + d`) by least squares on the original block data,
//! stores the coefficients, and predicts every point of the block from them.
//! Because the prediction does not depend on reconstructed neighbours, the
//! decoder only needs the coefficients — exactly like the AE latent vectors in
//! AE-SZ, which replace this predictor.

use crate::quantizer::{QuantizedBlock, Quantizer};
use aesz_tensor::ops::{least_squares, solve_linear_in_place};

/// Regression coefficients for one block: one slope per axis plus an intercept.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct RegressionCoeffs {
    /// Slopes, ordered slow-to-fast axis (`[z, y, x]` in 3D).
    pub slopes: Vec<f32>,
    /// Intercept.
    pub intercept: f32,
}

impl RegressionCoeffs {
    /// Number of stored f32 coefficients.
    pub fn len(&self) -> usize {
        self.slopes.len() + 1
    }

    /// True when there are no coefficients (never the case for fitted blocks).
    pub fn is_empty(&self) -> bool {
        false
    }

    /// Flatten to f32 values for storage.
    pub fn to_vec(&self) -> Vec<f32> {
        let mut v = self.slopes.clone();
        v.push(self.intercept);
        v
    }

    /// Rebuild from the flattened representation.
    pub fn from_slice(values: &[f32]) -> RegressionCoeffs {
        let mut coeffs = RegressionCoeffs::default();
        coeffs.copy_from_slice(values);
        coeffs
    }

    /// [`RegressionCoeffs::from_slice`] into an existing value, reusing its
    /// slope allocation — the per-block decode path calls this once per
    /// regression block.
    pub fn copy_from_slice(&mut self, values: &[f32]) {
        let (slopes, intercept) = values.split_at(values.len() - 1);
        self.slopes.clear();
        self.slopes.extend_from_slice(slopes);
        self.intercept = intercept[0];
    }
}

/// Row-major scan over `$extents` evaluating the affine model at every
/// point and invoking `$step!(prediction_expr)` in order.
///
/// The per-point expression replicates the reference `eval` closure's
/// fold exactly — `((0.0 + c₀·s₀) + c₁·s₁ …) + intercept` — including the
/// literal `0.0` the `sum::<f32>()` fold starts from (IEEE signed zeros
/// make dropping it observable). Hoisting the slow-axis partial sums out
/// of the inner loops preserves the association, so bits are identical.
macro_rules! affine_scan {
    ($extents:ident, $slopes:ident, $intercept:ident, $step:ident) => {
        match $extents.len() {
            1 => {
                let sx = $slopes[0];
                for x in 0..$extents[0] {
                    $step!(0.0 + x as f32 * sx + $intercept);
                }
            }
            2 => {
                let (sy, sx) = ($slopes[0], $slopes[1]);
                for y in 0..$extents[0] {
                    let base = 0.0 + y as f32 * sy;
                    for x in 0..$extents[1] {
                        $step!(base + x as f32 * sx + $intercept);
                    }
                }
            }
            3 => {
                let (sz, sy, sx) = ($slopes[0], $slopes[1], $slopes[2]);
                for z in 0..$extents[0] {
                    let bz = 0.0 + z as f32 * sz;
                    for y in 0..$extents[1] {
                        let bzy = bz + y as f32 * sy;
                        for x in 0..$extents[2] {
                            $step!(bzy + x as f32 * sx + $intercept);
                        }
                    }
                }
            }
            r => panic!("regression predictor supports rank 1-3, got {r}"),
        }
    };
}

/// Fit the affine model to a block (row-major with the given extents).
/// Falls back to a constant (mean) fit when the normal equations are singular,
/// which happens for degenerate extents like 1×1 blocks.
///
/// Optimized form of [`fit_reference`]: the normal equations are
/// accumulated directly into stack arrays (`cols ≤ 4`) as the coordinate
/// loops run, instead of materialising the `n × cols` design matrix. The
/// accumulation order — per row, `xty[i]`, then `xtx[i][j]` for `j ≥ i` —
/// is exactly `least_squares`'s, so every `f64` intermediate is identical.
pub fn fit(data: &[f32], extents: &[usize]) -> RegressionCoeffs {
    let mut coeffs = RegressionCoeffs::default();
    fit_into(data, extents, &mut coeffs);
    coeffs
}

/// [`fit`] into an existing [`RegressionCoeffs`], reusing its slope
/// allocation — together with [`solve_linear_in_place`] this makes the fit
/// completely heap-free, so per-block callers can run it without allocating
/// (see `tests/allocation_discipline.rs`).
pub fn fit_into(data: &[f32], extents: &[usize], out: &mut RegressionCoeffs) {
    let rank = extents.len();
    let n: usize = extents.iter().product();
    assert_eq!(data.len(), n);
    let cols = rank + 1;
    let mut xtx = [0.0f64; 16];
    let mut xty = [0.0f64; 4];
    let mut idx = 0usize;
    let mut accumulate = |row: &[f32], v: f32| {
        for i in 0..cols {
            xty[i] += row[i] as f64 * v as f64;
            for j in i..cols {
                xtx[i * cols + j] += row[i] as f64 * row[j] as f64;
            }
        }
    };
    match rank {
        1 => {
            for x in 0..extents[0] {
                accumulate(&[x as f32, 1.0], data[idx]);
                idx += 1;
            }
        }
        2 => {
            for y in 0..extents[0] {
                for x in 0..extents[1] {
                    accumulate(&[y as f32, x as f32, 1.0], data[idx]);
                    idx += 1;
                }
            }
        }
        3 => {
            for z in 0..extents[0] {
                for y in 0..extents[1] {
                    for x in 0..extents[2] {
                        accumulate(&[z as f32, y as f32, x as f32, 1.0], data[idx]);
                        idx += 1;
                    }
                }
            }
        }
        r => panic!("regression predictor supports rank 1-3, got {r}"),
    }
    for i in 0..cols {
        for j in 0..i {
            xtx[i * cols + j] = xtx[j * cols + i];
        }
    }
    out.slopes.clear();
    if solve_linear_in_place(&mut xtx[..cols * cols], &mut xty[..cols], cols) {
        out.slopes.extend(xty[..rank].iter().map(|&v| v as f32));
        out.intercept = xty[rank] as f32;
    } else {
        out.slopes.resize(rank, 0.0);
        out.intercept = crate::mean::block_mean(data);
    }
}

/// Scalar twin of [`fit`]: builds the dense design matrix and solves the
/// normal equations through [`least_squares`].
pub fn fit_reference(data: &[f32], extents: &[usize]) -> RegressionCoeffs {
    let rank = extents.len();
    let n: usize = extents.iter().product();
    assert_eq!(data.len(), n);
    let cols = rank + 1;
    let mut design = Vec::with_capacity(n * cols);
    let mut push_row = |coord: &[usize]| {
        for &c in coord {
            design.push(c as f32);
        }
        design.push(1.0);
    };
    match rank {
        1 => {
            for x in 0..extents[0] {
                push_row(&[x]);
            }
        }
        2 => {
            for y in 0..extents[0] {
                for x in 0..extents[1] {
                    push_row(&[y, x]);
                }
            }
        }
        3 => {
            for z in 0..extents[0] {
                for y in 0..extents[1] {
                    for x in 0..extents[2] {
                        push_row(&[z, y, x]);
                    }
                }
            }
        }
        r => panic!("regression predictor supports rank 1-3, got {r}"),
    }
    match least_squares(&design, n, cols, data) {
        Some(beta) => RegressionCoeffs {
            slopes: beta[..rank].to_vec(),
            intercept: beta[rank],
        },
        None => RegressionCoeffs {
            slopes: vec![0.0; rank],
            intercept: crate::mean::block_mean(data),
        },
    }
}

/// Evaluate the fitted plane at every point of the block.
pub fn predictions(coeffs: &RegressionCoeffs, extents: &[usize]) -> Vec<f32> {
    let mut preds = Vec::new();
    predictions_into(coeffs, extents, &mut preds);
    preds
}

/// [`predictions`] into a caller-owned buffer (cleared first).
pub fn predictions_into(coeffs: &RegressionCoeffs, extents: &[usize], preds: &mut Vec<f32>) {
    let n: usize = extents.iter().product();
    preds.clear();
    preds.reserve(n);
    if coeffs.slopes.len() != extents.len() {
        // Mismatched slope count (only possible for hand-built coeffs):
        // the generic zip-eval reference defines the semantics.
        preds.extend_from_slice(&predictions_reference(coeffs, extents));
        return;
    }
    let slopes = &coeffs.slopes;
    let intercept = coeffs.intercept;
    macro_rules! step {
        ($pred:expr) => {
            preds.push($pred);
        };
    }
    affine_scan!(extents, slopes, intercept, step);
}

/// Scalar twin of [`predictions`]: generic zip-fold evaluation per point.
pub fn predictions_reference(coeffs: &RegressionCoeffs, extents: &[usize]) -> Vec<f32> {
    let n: usize = extents.iter().product();
    let mut preds = Vec::with_capacity(n);
    let eval = |coord: &[usize]| -> f32 {
        coord
            .iter()
            .zip(coeffs.slopes.iter())
            .map(|(&c, &s)| c as f32 * s)
            .sum::<f32>()
            + coeffs.intercept
    };
    match extents.len() {
        1 => {
            for x in 0..extents[0] {
                preds.push(eval(&[x]));
            }
        }
        2 => {
            for y in 0..extents[0] {
                for x in 0..extents[1] {
                    preds.push(eval(&[y, x]));
                }
            }
        }
        3 => {
            for z in 0..extents[0] {
                for y in 0..extents[1] {
                    for x in 0..extents[2] {
                        preds.push(eval(&[z, y, x]));
                    }
                }
            }
        }
        r => panic!("regression predictor supports rank 1-3, got {r}"),
    }
    preds
}

/// l1 loss of the regression predictor on a block (for predictor selection).
/// Fused and allocation-free on the hot path: predictions are evaluated and
/// accumulated in scan order without materialising the buffer.
pub fn l1_loss(data: &[f32], extents: &[usize]) -> f64 {
    let coeffs = fit(data, extents);
    l1_loss_with(&coeffs, data, extents)
}

/// [`l1_loss`] given an already-computed fit — per-block callers fit once
/// via [`fit_into`] and reuse the coefficients for both selection and
/// compression, instead of fitting twice.
pub fn l1_loss_with(coeffs: &RegressionCoeffs, data: &[f32], extents: &[usize]) -> f64 {
    let slopes = &coeffs.slopes;
    let intercept = coeffs.intercept;
    let mut sum = 0.0f64;
    let mut idx = 0usize;
    macro_rules! step {
        ($pred:expr) => {{
            let p: f32 = $pred;
            sum += (data[idx] as f64 - p as f64).abs();
            idx += 1;
        }};
    }
    affine_scan!(extents, slopes, intercept, step);
    sum
}

/// Scalar twin of [`l1_loss`] through the reference fit and prediction
/// buffer.
pub fn l1_loss_reference(data: &[f32], extents: &[usize]) -> f64 {
    let coeffs = fit_reference(data, extents);
    let preds = predictions_reference(&coeffs, extents);
    data.iter()
        .zip(preds.iter())
        .map(|(&a, &b)| (a as f64 - b as f64).abs())
        .sum()
}

/// Compress a block: fit, predict, quantize residuals.
pub fn compress(
    data: &[f32],
    extents: &[usize],
    quantizer: &Quantizer,
) -> (RegressionCoeffs, QuantizedBlock, Vec<f32>) {
    let mut codes = Vec::new();
    let mut unpredictable = Vec::new();
    let mut recon = Vec::new();
    let coeffs = compress_into(
        data,
        extents,
        quantizer,
        &mut codes,
        &mut unpredictable,
        &mut recon,
    );
    (
        coeffs,
        QuantizedBlock {
            codes,
            unpredictable,
        },
        recon,
    )
}

/// [`compress`] into caller-owned buffers (each cleared first), fusing
/// prediction evaluation with quantization.
pub fn compress_into(
    data: &[f32],
    extents: &[usize],
    quantizer: &Quantizer,
    codes: &mut Vec<u32>,
    unpredictable: &mut Vec<f32>,
    recon: &mut Vec<f32>,
) -> RegressionCoeffs {
    let coeffs = fit(data, extents);
    compress_with_coeffs_into(
        &coeffs,
        data,
        extents,
        quantizer,
        codes,
        unpredictable,
        recon,
    );
    coeffs
}

/// [`compress_into`] given an already-computed fit (the coefficients
/// [`fit_into`] would produce for `data`) — the fully allocation-free
/// per-block form.
pub fn compress_with_coeffs_into(
    coeffs: &RegressionCoeffs,
    data: &[f32],
    extents: &[usize],
    quantizer: &Quantizer,
    codes: &mut Vec<u32>,
    unpredictable: &mut Vec<f32>,
    recon: &mut Vec<f32>,
) {
    codes.clear();
    codes.reserve(data.len());
    unpredictable.clear();
    recon.clear();
    recon.reserve(data.len());
    let slopes = &coeffs.slopes;
    let intercept = coeffs.intercept;
    let mut idx = 0usize;
    macro_rules! step {
        ($pred:expr) => {{
            let pred: f32 = $pred;
            let v = data[idx];
            match quantizer.quantize(v, pred) {
                Some((code, rc)) => {
                    codes.push(code + 1);
                    recon.push(rc);
                }
                None => {
                    codes.push(0);
                    unpredictable.push(v);
                    recon.push(v);
                }
            }
            idx += 1;
        }};
    }
    affine_scan!(extents, slopes, intercept, step);
}

/// Scalar twin of [`compress`]: reference fit, materialised predictions,
/// generic buffer quantization.
pub fn compress_reference(
    data: &[f32],
    extents: &[usize],
    quantizer: &Quantizer,
) -> (RegressionCoeffs, QuantizedBlock, Vec<f32>) {
    let coeffs = fit_reference(data, extents);
    let preds = predictions_reference(&coeffs, extents);
    let (blk, recon) = quantizer.quantize_buffer(data, &preds);
    (coeffs, blk, recon)
}

/// Reconstruct a block from its coefficients and quantized residuals.
pub fn decompress(
    coeffs: &RegressionCoeffs,
    block: &QuantizedBlock,
    extents: &[usize],
    quantizer: &Quantizer,
) -> Vec<f32> {
    let mut out = Vec::new();
    decompress_into(
        coeffs,
        &block.codes,
        &block.unpredictable,
        extents,
        quantizer,
        &mut out,
    );
    out
}

/// [`decompress`] from code/escape slices into a caller-owned buffer
/// (cleared first), fusing prediction evaluation with dequantization.
///
/// # Panics
/// Panics when `codes` does not cover the extents or `unpredictable` has
/// fewer entries than escape codes — same contract as the reference.
pub fn decompress_into(
    coeffs: &RegressionCoeffs,
    codes: &[u32],
    unpredictable: &[f32],
    extents: &[usize],
    quantizer: &Quantizer,
    out: &mut Vec<f32>,
) {
    let n: usize = extents.iter().product();
    assert_eq!(codes.len(), n);
    if coeffs.slopes.len() != extents.len() {
        // Mismatched slope count: defer to the reference evaluation.
        let preds = predictions_reference(coeffs, extents);
        quantizer.dequantize_buffer_into(codes, unpredictable, &preds, out);
        return;
    }
    out.clear();
    out.reserve(n);
    let mut un = unpredictable.iter();
    let slopes = &coeffs.slopes;
    let intercept = coeffs.intercept;
    let mut idx = 0usize;
    macro_rules! step {
        ($pred:expr) => {{
            let pred: f32 = $pred;
            let code = codes[idx];
            out.push(if code == 0 {
                *un.next().expect("unpredictable value present")
            } else {
                quantizer.dequantize(code - 1, pred)
            });
            idx += 1;
        }};
    }
    affine_scan!(extents, slopes, intercept, step);
}

/// Scalar twin of [`decompress`] through the materialised prediction
/// buffer.
pub fn decompress_reference(
    coeffs: &RegressionCoeffs,
    block: &QuantizedBlock,
    extents: &[usize],
    quantizer: &Quantizer,
) -> Vec<f32> {
    let preds = predictions_reference(coeffs, extents);
    quantizer.dequantize_buffer(block, &preds)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_fit_on_planar_data() {
        // v = 2y + 3x + 1 over an 8x8 block.
        let extents = [8usize, 8];
        let data: Vec<f32> = (0..64)
            .map(|i| 2.0 * (i / 8) as f32 + 3.0 * (i % 8) as f32 + 1.0)
            .collect();
        let c = fit(&data, &extents);
        assert!((c.slopes[0] - 2.0).abs() < 1e-3);
        assert!((c.slopes[1] - 3.0).abs() < 1e-3);
        assert!((c.intercept - 1.0).abs() < 1e-3);
        assert!(l1_loss(&data, &extents) < 1e-2);
    }

    #[test]
    fn coeffs_roundtrip_through_flat_representation() {
        let c = RegressionCoeffs {
            slopes: vec![1.5, -2.5, 0.25],
            intercept: 7.0,
        };
        assert_eq!(RegressionCoeffs::from_slice(&c.to_vec()), c);
        assert_eq!(c.len(), 4);
    }

    #[test]
    fn compress_decompress_respects_bound() {
        let extents = [8usize, 8, 8];
        let data: Vec<f32> = (0..512)
            .map(|i| {
                let z = (i / 64) as f32;
                let y = ((i / 8) % 8) as f32;
                let x = (i % 8) as f32;
                0.5 * z - 0.2 * y + 0.7 * x + (x * 0.9).sin() * 0.3
            })
            .collect();
        let q = Quantizer::with_default_bins(1e-3);
        let (coeffs, blk, recon) = compress(&data, &extents, &q);
        for (a, b) in data.iter().zip(recon.iter()) {
            assert!((a - b).abs() <= 1e-3 + 1e-9);
        }
        assert_eq!(decompress(&coeffs, &blk, &extents, &q), recon);
    }

    #[test]
    fn degenerate_block_falls_back_to_mean() {
        let c = fit(&[5.0], &[1]);
        assert_eq!(c.intercept, 5.0);
    }

    #[test]
    fn optimized_kernels_match_reference_bitwise() {
        let tricky = [-0.0f32, 0.0, f32::MIN_POSITIVE / 2.0, -1e18, 1e18, 2.25];
        let cases: Vec<(Vec<f32>, Vec<usize>)> = vec![
            (tricky.iter().cycle().take(11).copied().collect(), vec![11]),
            (
                tricky.iter().cycle().take(42).copied().collect(),
                vec![6, 7],
            ),
            (
                (0..120).map(|i| (i as f32 * 0.17).cos() * 40.0).collect(),
                vec![4, 5, 6],
            ),
            (vec![5.0], vec![1]), // singular → mean fallback on both sides
        ];
        let q = Quantizer::with_default_bins(1e-3);
        for (data, extents) in &cases {
            let cf = fit(data, extents);
            let cs = fit_reference(data, extents);
            assert_eq!(
                cf.to_vec().iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
                cs.to_vec().iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
                "fit diverges for extents {extents:?}"
            );
            let pf = predictions(&cf, extents);
            let ps = predictions_reference(&cs, extents);
            assert_eq!(
                pf.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
                ps.iter().map(|v| v.to_bits()).collect::<Vec<_>>()
            );
            assert_eq!(
                l1_loss(data, extents).to_bits(),
                l1_loss_reference(data, extents).to_bits()
            );
            let (c_f, blk_f, rec_f) = compress(data, extents, &q);
            let (c_s, blk_s, rec_s) = compress_reference(data, extents, &q);
            assert_eq!(c_f, c_s);
            assert_eq!(blk_f, blk_s);
            assert_eq!(
                rec_f.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
                rec_s.iter().map(|v| v.to_bits()).collect::<Vec<_>>()
            );
            let d_f = decompress(&c_f, &blk_f, extents, &q);
            let d_s = decompress_reference(&c_s, &blk_s, extents, &q);
            assert_eq!(
                d_f.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
                d_s.iter().map(|v| v.to_bits()).collect::<Vec<_>>()
            );
        }
    }

    #[test]
    fn curved_data_has_higher_loss_than_planar() {
        let extents = [16usize, 16];
        let planar: Vec<f32> = (0..256)
            .map(|i| (i / 16) as f32 + (i % 16) as f32)
            .collect();
        let curved: Vec<f32> = (0..256)
            .map(|i| ((i / 16) as f32 * 0.5).sin() * 10.0 + ((i % 16) as f32 * 0.7).cos() * 10.0)
            .collect();
        assert!(l1_loss(&planar, &extents) < l1_loss(&curved, &extents));
    }
}
