//! Blockwise linear-regression predictor (the second predictor of SZ2.1).
//!
//! SZ2.1 fits, per block, an affine function of the coordinates
//! (`v ≈ a·x + b·y (+ c·z) + d`) by least squares on the original block data,
//! stores the coefficients, and predicts every point of the block from them.
//! Because the prediction does not depend on reconstructed neighbours, the
//! decoder only needs the coefficients — exactly like the AE latent vectors in
//! AE-SZ, which replace this predictor.

use crate::quantizer::{QuantizedBlock, Quantizer};
use aesz_tensor::ops::least_squares;

/// Regression coefficients for one block: one slope per axis plus an intercept.
#[derive(Debug, Clone, PartialEq)]
pub struct RegressionCoeffs {
    /// Slopes, ordered slow-to-fast axis (`[z, y, x]` in 3D).
    pub slopes: Vec<f32>,
    /// Intercept.
    pub intercept: f32,
}

impl RegressionCoeffs {
    /// Number of stored f32 coefficients.
    pub fn len(&self) -> usize {
        self.slopes.len() + 1
    }

    /// True when there are no coefficients (never the case for fitted blocks).
    pub fn is_empty(&self) -> bool {
        false
    }

    /// Flatten to f32 values for storage.
    pub fn to_vec(&self) -> Vec<f32> {
        let mut v = self.slopes.clone();
        v.push(self.intercept);
        v
    }

    /// Rebuild from the flattened representation.
    pub fn from_slice(values: &[f32]) -> RegressionCoeffs {
        let (slopes, intercept) = values.split_at(values.len() - 1);
        RegressionCoeffs {
            slopes: slopes.to_vec(),
            intercept: intercept[0],
        }
    }
}

/// Fit the affine model to a block (row-major with the given extents).
/// Falls back to a constant (mean) fit when the normal equations are singular,
/// which happens for degenerate extents like 1×1 blocks.
pub fn fit(data: &[f32], extents: &[usize]) -> RegressionCoeffs {
    let rank = extents.len();
    let n: usize = extents.iter().product();
    assert_eq!(data.len(), n);
    let cols = rank + 1;
    let mut design = Vec::with_capacity(n * cols);
    let mut push_row = |coord: &[usize]| {
        for &c in coord {
            design.push(c as f32);
        }
        design.push(1.0);
    };
    match rank {
        1 => {
            for x in 0..extents[0] {
                push_row(&[x]);
            }
        }
        2 => {
            for y in 0..extents[0] {
                for x in 0..extents[1] {
                    push_row(&[y, x]);
                }
            }
        }
        3 => {
            for z in 0..extents[0] {
                for y in 0..extents[1] {
                    for x in 0..extents[2] {
                        push_row(&[z, y, x]);
                    }
                }
            }
        }
        r => panic!("regression predictor supports rank 1-3, got {r}"),
    }
    match least_squares(&design, n, cols, data) {
        Some(beta) => RegressionCoeffs {
            slopes: beta[..rank].to_vec(),
            intercept: beta[rank],
        },
        None => RegressionCoeffs {
            slopes: vec![0.0; rank],
            intercept: crate::mean::block_mean(data),
        },
    }
}

/// Evaluate the fitted plane at every point of the block.
pub fn predictions(coeffs: &RegressionCoeffs, extents: &[usize]) -> Vec<f32> {
    let n: usize = extents.iter().product();
    let mut preds = Vec::with_capacity(n);
    let eval = |coord: &[usize]| -> f32 {
        coord
            .iter()
            .zip(coeffs.slopes.iter())
            .map(|(&c, &s)| c as f32 * s)
            .sum::<f32>()
            + coeffs.intercept
    };
    match extents.len() {
        1 => {
            for x in 0..extents[0] {
                preds.push(eval(&[x]));
            }
        }
        2 => {
            for y in 0..extents[0] {
                for x in 0..extents[1] {
                    preds.push(eval(&[y, x]));
                }
            }
        }
        3 => {
            for z in 0..extents[0] {
                for y in 0..extents[1] {
                    for x in 0..extents[2] {
                        preds.push(eval(&[z, y, x]));
                    }
                }
            }
        }
        r => panic!("regression predictor supports rank 1-3, got {r}"),
    }
    preds
}

/// l1 loss of the regression predictor on a block (for predictor selection).
pub fn l1_loss(data: &[f32], extents: &[usize]) -> f64 {
    let coeffs = fit(data, extents);
    let preds = predictions(&coeffs, extents);
    data.iter()
        .zip(preds.iter())
        .map(|(&a, &b)| (a as f64 - b as f64).abs())
        .sum()
}

/// Compress a block: fit, predict, quantize residuals.
pub fn compress(
    data: &[f32],
    extents: &[usize],
    quantizer: &Quantizer,
) -> (RegressionCoeffs, QuantizedBlock, Vec<f32>) {
    let coeffs = fit(data, extents);
    let preds = predictions(&coeffs, extents);
    let (blk, recon) = quantizer.quantize_buffer(data, &preds);
    (coeffs, blk, recon)
}

/// Reconstruct a block from its coefficients and quantized residuals.
pub fn decompress(
    coeffs: &RegressionCoeffs,
    block: &QuantizedBlock,
    extents: &[usize],
    quantizer: &Quantizer,
) -> Vec<f32> {
    let preds = predictions(coeffs, extents);
    quantizer.dequantize_buffer(block, &preds)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_fit_on_planar_data() {
        // v = 2y + 3x + 1 over an 8x8 block.
        let extents = [8usize, 8];
        let data: Vec<f32> = (0..64)
            .map(|i| 2.0 * (i / 8) as f32 + 3.0 * (i % 8) as f32 + 1.0)
            .collect();
        let c = fit(&data, &extents);
        assert!((c.slopes[0] - 2.0).abs() < 1e-3);
        assert!((c.slopes[1] - 3.0).abs() < 1e-3);
        assert!((c.intercept - 1.0).abs() < 1e-3);
        assert!(l1_loss(&data, &extents) < 1e-2);
    }

    #[test]
    fn coeffs_roundtrip_through_flat_representation() {
        let c = RegressionCoeffs {
            slopes: vec![1.5, -2.5, 0.25],
            intercept: 7.0,
        };
        assert_eq!(RegressionCoeffs::from_slice(&c.to_vec()), c);
        assert_eq!(c.len(), 4);
    }

    #[test]
    fn compress_decompress_respects_bound() {
        let extents = [8usize, 8, 8];
        let data: Vec<f32> = (0..512)
            .map(|i| {
                let z = (i / 64) as f32;
                let y = ((i / 8) % 8) as f32;
                let x = (i % 8) as f32;
                0.5 * z - 0.2 * y + 0.7 * x + (x * 0.9).sin() * 0.3
            })
            .collect();
        let q = Quantizer::with_default_bins(1e-3);
        let (coeffs, blk, recon) = compress(&data, &extents, &q);
        for (a, b) in data.iter().zip(recon.iter()) {
            assert!((a - b).abs() <= 1e-3 + 1e-9);
        }
        assert_eq!(decompress(&coeffs, &blk, &extents, &q), recon);
    }

    #[test]
    fn degenerate_block_falls_back_to_mean() {
        let c = fit(&[5.0], &[1]);
        assert_eq!(c.intercept, 5.0);
    }

    #[test]
    fn curved_data_has_higher_loss_than_planar() {
        let extents = [16usize, 16];
        let planar: Vec<f32> = (0..256)
            .map(|i| (i / 16) as f32 + (i % 16) as f32)
            .collect();
        let curved: Vec<f32> = (0..256)
            .map(|i| ((i / 16) as f32 * 0.5).sin() * 10.0 + ((i % 16) as f32 * 0.7).cos() * 10.0)
            .collect();
        assert!(l1_loss(&planar, &extents) < l1_loss(&curved, &extents));
    }
}
