//! # aesz-predictors
//!
//! The SZ-family prediction and quantization substrate shared by AE-SZ and the
//! baseline compressors:
//!
//! * [`quantizer`] — the linear-scale quantizer with a user error bound,
//!   a bounded number of bins (65,536 by default) and an "unpredictable"
//!   escape for residuals that fall outside the bin range.
//! * [`lorenzo`] — first-order Lorenzo prediction in 1D/2D/3D, operating on
//!   previously *reconstructed* values so decompression can reproduce the
//!   exact same predictions (the error-bound guarantee depends on this).
//! * [`mean`] — the block-mean predictor AE-SZ uses as "mean-Lorenzo".
//! * [`regression`] — the blockwise linear-regression predictor of SZ2.1.
//! * [`lorenzo2`] — the second-order Lorenzo predictor used by SZauto.
//! * [`interp`] — the multi-level spline-interpolation predictor of SZinterp.

#![forbid(unsafe_code)]

pub mod interp;
pub mod lorenzo;
pub mod lorenzo2;
pub mod mean;
pub mod quantizer;
pub mod regression;

pub use quantizer::{QuantizedBlock, Quantizer, DEFAULT_QUANT_BINS};
