//! Offline, dependency-free stand-in for the `rand_distr` crate, providing
//! the two distributions the workspace samples: [`Normal`] (Box–Muller) and
//! [`Poisson`] (Knuth multiplication for small λ, normal approximation for
//! large λ). See `crates/compat/rand` for why this exists.

use rand::{Rng, RngCore};

/// Mirror of `rand::distributions::Distribution`.
pub trait Distribution<T> {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> T;
}

/// Error returned by [`Normal::new`] for non-finite or negative spread.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct NormalError;

impl core::fmt::Display for NormalError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "standard deviation must be finite and non-negative")
    }
}

impl std::error::Error for NormalError {}

/// Error returned by [`Poisson::new`] for a non-positive or non-finite rate.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct PoissonError;

impl core::fmt::Display for PoissonError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "lambda must be finite and > 0")
    }
}

impl std::error::Error for PoissonError {}

/// Float abstraction so `Normal::new(0.0f32, 3.0)` infers the scalar type the
/// same way upstream `rand_distr`'s generic impls do (a single generic impl,
/// not one inherent `new` per float type, keeps inference unambiguous).
pub trait Float: Copy + PartialOrd {
    fn to_f64(self) -> f64;
    fn from_f64(v: f64) -> Self;
    fn is_finite(self) -> bool;
    fn zero() -> Self;
}

macro_rules! impl_float {
    ($($t:ty),*) => {$(
        impl Float for $t {
            fn to_f64(self) -> f64 {
                self as f64
            }
            fn from_f64(v: f64) -> Self {
                v as $t
            }
            fn is_finite(self) -> bool {
                <$t>::is_finite(self)
            }
            fn zero() -> Self {
                0.0
            }
        }
    )*};
}
impl_float!(f32, f64);

/// Gaussian distribution with given mean and standard deviation.
#[derive(Clone, Copy, Debug)]
pub struct Normal<F> {
    mean: F,
    std_dev: F,
}

/// Poisson distribution with rate λ.
#[derive(Clone, Copy, Debug)]
pub struct Poisson<F> {
    lambda: F,
}

impl<F: Float> Normal<F> {
    pub fn new(mean: F, std_dev: F) -> Result<Self, NormalError> {
        if std_dev.is_finite() && std_dev >= F::zero() && mean.is_finite() {
            Ok(Normal { mean, std_dev })
        } else {
            Err(NormalError)
        }
    }

    pub fn mean(&self) -> F {
        self.mean
    }

    pub fn std_dev(&self) -> F {
        self.std_dev
    }
}

impl<F: Float> Distribution<F> for Normal<F> {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> F {
        // Box–Muller; one of the pair is discarded for simplicity.
        let u1: f64 = rng.gen_range(f64::EPSILON..1.0);
        let u2: f64 = rng.gen_range(0.0..1.0);
        let z = (-2.0 * u1.ln()).sqrt() * (core::f64::consts::TAU * u2).cos();
        F::from_f64(self.mean.to_f64() + self.std_dev.to_f64() * z)
    }
}

impl<F: Float> Poisson<F> {
    pub fn new(lambda: F) -> Result<Self, PoissonError> {
        if lambda.is_finite() && lambda > F::zero() {
            Ok(Poisson { lambda })
        } else {
            Err(PoissonError)
        }
    }
}

impl<F: Float> Distribution<F> for Poisson<F> {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> F {
        let lambda = self.lambda.to_f64();
        if lambda < 30.0 {
            // Knuth: count uniforms until their product drops below e^-λ.
            let limit = (-lambda).exp();
            let mut product: f64 = rng.gen_range(0.0..1.0);
            let mut count = 0u64;
            while product > limit {
                count += 1;
                product *= rng.gen_range(0.0..1.0f64);
            }
            F::from_f64(count as f64)
        } else {
            // Normal approximation, adequate for the detector-noise
            // intensities this workspace simulates.
            let g = Normal::new(lambda, lambda.sqrt())
                .expect("lambda is finite and positive")
                .sample(rng);
            F::from_f64(g.max(0.0).round())
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{rngs::StdRng, SeedableRng};

    #[test]
    fn normal_moments_are_close() {
        let mut rng = StdRng::seed_from_u64(9);
        let dist = Normal::new(2.0f64, 3.0).unwrap();
        let n = 50_000;
        let samples: Vec<f64> = (0..n).map(|_| dist.sample(&mut rng)).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|s| (s - mean).powi(2)).sum::<f64>() / n as f64;
        assert!((mean - 2.0).abs() < 0.05, "mean={mean}");
        assert!((var - 9.0).abs() < 0.3, "var={var}");
    }

    #[test]
    fn poisson_mean_tracks_lambda() {
        let mut rng = StdRng::seed_from_u64(11);
        for lambda in [0.5f64, 4.0, 80.0] {
            let dist = Poisson::new(lambda).unwrap();
            let n = 20_000;
            let mean = (0..n).map(|_| dist.sample(&mut rng)).sum::<f64>() / n as f64;
            assert!(
                (mean - lambda).abs() < 0.05 * lambda.max(1.0) + 0.05,
                "lambda={lambda} mean={mean}"
            );
        }
    }

    #[test]
    fn invalid_parameters_are_rejected() {
        assert!(Normal::new(0.0f32, -1.0).is_err());
        assert!(Poisson::new(0.0f32).is_err());
        assert!(Poisson::new(f32::NAN).is_err());
    }
}
