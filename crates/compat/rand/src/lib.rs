//! Offline, dependency-free stand-in for the `rand` crate.
//!
//! The build environment has no access to crates.io, so this workspace
//! vendors the small subset of the `rand` 0.8 API its members actually use:
//!
//! * [`rngs::StdRng`] — a deterministic 64-bit PRNG (xoshiro256** seeded via
//!   SplitMix64, like `rand`'s `seed_from_u64` bootstrap).
//! * [`Rng`] — `gen`, `gen_range`, `gen_bool` over the primitive types the
//!   workspace samples.
//! * [`SeedableRng::seed_from_u64`].
//! * [`seq::SliceRandom`] — Fisher–Yates `shuffle` and `choose`.
//!
//! Streams differ from upstream `rand` (no attempt is made to match its
//! output values), but everything is deterministic given a seed, which is
//! the property the reproduction relies on.

pub mod rngs;
pub mod seq;

pub use rngs::StdRng;

/// A source of random 32/64-bit words. Mirror of `rand_core::RngCore`.
pub trait RngCore {
    fn next_u32(&mut self) -> u32;
    fn next_u64(&mut self) -> u64;
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(8);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next_u64().to_le_bytes());
        }
        let rem = chunks.into_remainder();
        if !rem.is_empty() {
            let bytes = self.next_u64().to_le_bytes();
            rem.copy_from_slice(&bytes[..rem.len()]);
        }
    }
}

/// Mirror of `rand::SeedableRng`, reduced to the `seed_from_u64` entry point.
pub trait SeedableRng: Sized {
    fn seed_from_u64(state: u64) -> Self;
}

/// Types that can be produced uniformly by [`Rng::gen`].
pub trait Standard: Sized {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Standard for bool {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 24 random mantissa bits → uniform in [0, 1).
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

impl Standard for f64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// Types with a uniform sampler over half-open / inclusive intervals.
/// Mirror of `rand::distributions::uniform::SampleUniform`.
pub trait SampleUniform: Sized + PartialOrd {
    /// Uniform sample from `[lo, hi)`.
    fn sample_half_open<R: RngCore + ?Sized>(lo: Self, hi: Self, rng: &mut R) -> Self;
    /// Uniform sample from `[lo, hi]`.
    fn sample_inclusive<R: RngCore + ?Sized>(lo: Self, hi: Self, rng: &mut R) -> Self;
}

macro_rules! impl_uniform_int {
    ($($t:ty => $wide:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_half_open<R: RngCore + ?Sized>(lo: $t, hi: $t, rng: &mut R) -> $t {
                let span = (hi as $wide).wrapping_sub(lo as $wide) as u64;
                // Lemire-style widening reduction: negligible bias for the
                // span sizes used here, and branch-free.
                let off = ((rng.next_u64() as u128 * span as u128) >> 64) as u64;
                lo.wrapping_add(off as $t)
            }
            fn sample_inclusive<R: RngCore + ?Sized>(lo: $t, hi: $t, rng: &mut R) -> $t {
                // Span computed entirely in the wide domain: delegating via
                // `hi.wrapping_add(1)` would wrap in the narrow type when
                // `hi == MAX` and produce a bogus 64-bit span.
                let span = ((hi as $wide).wrapping_sub(lo as $wide) as u64).wrapping_add(1);
                if span == 0 {
                    // Only reachable for the full 64-bit range.
                    return <$t>::sample_standard(rng);
                }
                let off = ((rng.next_u64() as u128 * span as u128) >> 64) as u64;
                lo.wrapping_add(off as $t)
            }
        }
    )*};
}
impl_uniform_int!(
    u8 => u64, u16 => u64, u32 => u64, u64 => u64, usize => u64,
    i8 => i64, i16 => i64, i32 => i64, i64 => i64, isize => i64
);

macro_rules! impl_uniform_float {
    ($($t:ty => $mantissa:expr),*) => {$(
        impl SampleUniform for $t {
            fn sample_half_open<R: RngCore + ?Sized>(lo: $t, hi: $t, rng: &mut R) -> $t {
                // `lo + (hi - lo) * u` can round up to exactly `hi` even for
                // u < 1; nudge such results back inside to honour the
                // half-open contract.
                let v = lo + (hi - lo) * <$t>::sample_standard(rng);
                if v < hi {
                    v
                } else {
                    hi.next_down().max(lo)
                }
            }
            fn sample_inclusive<R: RngCore + ?Sized>(lo: $t, hi: $t, rng: &mut R) -> $t {
                // Unlike the half-open case, the unit sample here must be able
                // to reach 1.0 so `hi` itself is attainable (upstream rand's
                // inclusive contract): mantissa-width random bits over an
                // inclusive denominator give a uniform grid on [0, 1]. The
                // clamp guards the same rounding overshoot the half-open path
                // handles: lo + (hi - lo) * 1.0 can round strictly above hi.
                let u = (rng.next_u64() >> (64 - $mantissa)) as $t
                    / ((1u64 << $mantissa) - 1) as $t;
                (lo + (hi - lo) * u).clamp(lo, hi)
            }
        }
    )*};
}
impl_uniform_float!(f32 => 24, f64 => 53);

/// Ranges usable with [`Rng::gen_range`]. Mirror of
/// `rand::distributions::uniform::SampleRange`. The blanket impls keep type
/// inference working the way upstream's do (`rng.gen_range(0.0..1.0)` picks
/// up `f32` from the surrounding expression).
pub trait SampleRange<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for core::ops::Range<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        assert!(self.start < self.end, "cannot sample empty range");
        T::sample_half_open(self.start, self.end, rng)
    }
}

impl<T: SampleUniform> SampleRange<T> for core::ops::RangeInclusive<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        let (lo, hi) = self.into_inner();
        assert!(lo <= hi, "cannot sample empty range");
        T::sample_inclusive(lo, hi, rng)
    }
}

/// Mirror of `rand::Rng`: convenience sampling methods over any [`RngCore`].
pub trait Rng: RngCore {
    fn gen<T: Standard>(&mut self) -> T {
        T::sample_standard(self)
    }

    fn gen_range<T, Rg: SampleRange<T>>(&mut self, range: Rg) -> T {
        range.sample_from(self)
    }

    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "p={p} outside [0, 1]");
        f64::sample_standard(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn std_rng_is_deterministic() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let f: f32 = rng.gen_range(0.25..0.75);
            assert!((0.25..0.75).contains(&f));
            let u: usize = rng.gen_range(3..17);
            assert!((3..17).contains(&u));
            let i: i32 = rng.gen_range(-5..=5);
            assert!((-5..=5).contains(&i));
        }
    }

    #[test]
    fn inclusive_int_range_ending_at_type_max_stays_in_bounds() {
        let mut rng = StdRng::seed_from_u64(21);
        for _ in 0..10_000 {
            let b: u8 = rng.gen_range(5u8..=u8::MAX);
            assert!(b >= 5, "b={b}");
            let i: i16 = rng.gen_range(100i16..=i16::MAX);
            assert!(i >= 100, "i={i}");
            let f: u64 = rng.gen_range(0u64..=u64::MAX); // full-range path
            let _ = f;
        }
        // MIN..=MAX on a narrow type must cover the whole space, not panic.
        let any: i8 = rng.gen_range(i8::MIN..=i8::MAX);
        let _ = any;
    }

    #[test]
    fn half_open_float_range_never_returns_the_upper_bound() {
        let mut rng = StdRng::seed_from_u64(23);
        for _ in 0..100_000 {
            // Ranges chosen so that lo + (hi - lo) * (1 − 2⁻²⁴) rounds up to
            // hi without the explicit exclusivity guard.
            let a: f32 = rng.gen_range(0.25f32..0.75);
            assert!(a < 0.75, "a={a}");
            let b: f32 = rng.gen_range(0.1f32..0.3);
            assert!(b < 0.3, "b={b}");
            let c: f64 = rng.gen_range(0.25f64..0.75);
            assert!(c < 0.75, "c={c}");
        }
    }

    #[test]
    fn inclusive_float_range_can_reach_both_endpoints() {
        let mut rng = StdRng::seed_from_u64(13);
        let mut max = f32::MIN;
        let mut min = f32::MAX;
        for _ in 0..20_000 {
            let f: f32 = rng.gen_range(-1.0f32..=1.0);
            assert!((-1.0..=1.0).contains(&f));
            max = max.max(f);
            min = min.min(f);
        }
        // The half-open sampler can never exceed 1 − 2⁻²⁴ of the span; the
        // inclusive one closes that gap, so 20k draws should get very close
        // to (and are allowed to hit) both endpoints.
        assert!(max > 0.999, "max={max}");
        assert!(min < -0.999, "min={min}");
    }

    #[test]
    fn inclusive_float_range_never_overshoots_hi() {
        // (lo, hi) pair where lo + (hi − lo) · 1.0 rounds strictly above hi
        // in f32 without the clamp (found empirically; ~1% of pairs do this).
        let (lo, hi) = (-0.372_206_12_f32, 0.663_774_9_f32);
        assert!(
            lo + (hi - lo) > hi,
            "precondition: this pair must overshoot"
        );
        let mut rng = StdRng::seed_from_u64(31);
        for _ in 0..200_000 {
            let v: f32 = rng.gen_range(lo..=hi);
            assert!((lo..=hi).contains(&v), "v={v}");
        }
    }

    #[test]
    fn gen_covers_value_space_roughly() {
        let mut rng = StdRng::seed_from_u64(1);
        let mean = (0..10_000).map(|_| rng.gen::<f64>()).sum::<f64>() / 10_000.0;
        assert!((mean - 0.5).abs() < 0.02, "mean={mean}");
    }
}
