//! Sequence sampling helpers. Mirror of `rand::seq::SliceRandom`, reduced to
//! the `shuffle` / `choose` pair the workspace uses.

use crate::Rng;

pub trait SliceRandom {
    type Item;

    /// In-place Fisher–Yates shuffle.
    fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R);

    /// Uniformly pick one element, or `None` if the slice is empty.
    fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
}

impl<T> SliceRandom for [T] {
    type Item = T;

    fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R) {
        for i in (1..self.len()).rev() {
            let j = rng.gen_range(0..=i);
            self.swap(i, j);
        }
    }

    fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&T> {
        if self.is_empty() {
            None
        } else {
            Some(&self[rng.gen_range(0..self.len())])
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{SeedableRng, StdRng};

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut v: Vec<u32> = (0..100).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
        assert_ne!(v, sorted, "a 100-element shuffle should move something");
    }

    #[test]
    fn choose_empty_is_none() {
        let mut rng = StdRng::seed_from_u64(3);
        let v: Vec<u32> = vec![];
        assert!(v.choose(&mut rng).is_none());
    }
}
