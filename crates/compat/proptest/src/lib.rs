//! Offline, dependency-free stand-in for the `proptest` crate.
//!
//! Supports the subset the workspace's property tests use: the `proptest!`
//! macro over functions whose arguments are drawn from range strategies or
//! `proptest::collection::vec`, plus `prop_assert!`, `prop_assert_eq!` and
//! `prop_assume!`. Each test runs [`NUM_CASES`] deterministic random cases
//! (seeded from the test name); failing inputs are reported via panic but
//! not shrunk.

use rand::rngs::StdRng;
use rand::{Rng, SampleUniform, SeedableRng};

/// Cases generated per property test. Upstream defaults to 256; 64 keeps the
/// suite fast while still exercising each property across ranks and bounds.
pub const NUM_CASES: usize = 64;

/// A property may reject (via `prop_assume!`) at most this many times
/// `NUM_CASES` before the test fails — the analogue of upstream's
/// `max_global_rejects` guard against vacuously-passing properties.
pub const MAX_REJECT_FACTOR: usize = 16;

/// Outcome of one generated case: rejected by `prop_assume!`, failed by a
/// `prop_assert!`, or passed.
#[derive(Debug)]
pub enum TestCaseError {
    Reject,
    Fail(String),
}

impl TestCaseError {
    pub fn fail(msg: String) -> Self {
        TestCaseError::Fail(msg)
    }
}

/// Deterministic per-test RNG. Mirrors `proptest::test_runner::TestRng` only
/// in spirit: the seed is an FNV-1a hash of the test name, so runs are
/// reproducible without any persistence files.
pub struct TestRng(StdRng);

impl TestRng {
    pub fn deterministic(name: &str) -> Self {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x100_0000_01b3);
        }
        TestRng(StdRng::seed_from_u64(h))
    }
}

/// A generator of random values. Mirror of `proptest::strategy::Strategy`,
/// minus shrinking.
pub trait Strategy {
    type Value;
    fn generate(&self, rng: &mut TestRng) -> Self::Value;
}

impl<T: SampleUniform + Copy> Strategy for core::ops::Range<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        rng.0.gen_range(self.start..self.end)
    }
}

impl<T: SampleUniform + Copy> Strategy for core::ops::RangeInclusive<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        rng.0.gen_range(*self.start()..=*self.end())
    }
}

pub mod collection {
    use super::{Strategy, TestRng};

    /// Mirror of `proptest::collection::vec`: element strategy + length range.
    pub fn vec<S: Strategy, L: Strategy<Value = usize>>(
        element: S,
        length: L,
    ) -> VecStrategy<S, L> {
        VecStrategy { element, length }
    }

    pub struct VecStrategy<S, L> {
        element: S,
        length: L,
    }

    impl<S: Strategy, L: Strategy<Value = usize>> Strategy for VecStrategy<S, L> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = self.length.generate(rng);
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

pub mod strategy {
    pub use crate::Strategy;
}

pub mod test_runner {
    pub use crate::TestRng;
}

pub mod prelude {
    pub use crate::collection;
    pub use crate::{prop_assert, prop_assert_eq, prop_assume, proptest};
    pub use crate::{Strategy, TestCaseError, TestRng};
}

#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return ::core::result::Result::Err($crate::TestCaseError::Reject);
        }
    };
}

#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !($cond) {
            return ::core::result::Result::Err($crate::TestCaseError::fail(format!($($fmt)*)));
        }
    };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => {
        match (&$left, &$right) {
            (left, right) => {
                $crate::prop_assert!(
                    *left == *right,
                    "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}",
                    stringify!($left),
                    stringify!($right),
                    left,
                    right
                );
            }
        }
    };
}

/// Mirror of `proptest::proptest!`: each `#[test] fn name(arg in strategy, …)`
/// becomes a plain `#[test]` running [`NUM_CASES`] generated cases.
#[macro_export]
macro_rules! proptest {
    ($($(#[$meta:meta])* fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block)+) => {
        $(
            $(#[$meta])*
            fn $name() {
                let mut rng = $crate::TestRng::deterministic(stringify!($name));
                // `prop_assume!` rejections are retried rather than counted
                // against the case budget (as upstream does), so filtered
                // properties still run NUM_CASES effective cases; a property
                // that rejects nearly everything fails loudly instead of
                // passing vacuously.
                let mut case = 0usize;
                let mut attempts = 0usize;
                while case < $crate::NUM_CASES {
                    attempts += 1;
                    assert!(
                        attempts <= $crate::NUM_CASES * $crate::MAX_REJECT_FACTOR,
                        "property `{}` rejected too many inputs via prop_assume! \
                         ({} accepted out of {} attempts)",
                        stringify!($name),
                        case,
                        attempts - 1,
                    );
                    $(let $arg = $crate::Strategy::generate(&($strat), &mut rng);)+
                    let result: ::core::result::Result<(), $crate::TestCaseError> =
                        (|| { $body ::core::result::Result::Ok(()) })();
                    match result {
                        ::core::result::Result::Ok(()) => case += 1,
                        ::core::result::Result::Err($crate::TestCaseError::Reject) => continue,
                        ::core::result::Result::Err($crate::TestCaseError::Fail(msg)) => {
                            panic!(
                                concat!(
                                    "property `", stringify!($name),
                                    "` failed at case {}/{}:\n{}\ninputs:"
                                    $(, "\n  ", stringify!($arg), " = {:?}")+
                                ),
                                case + 1,
                                $crate::NUM_CASES,
                                msg
                                $(, $arg)+
                            );
                        }
                    }
                }
            }
        )+
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #[test]
        fn ranges_stay_in_bounds(
            x in -3.0f32..3.0,
            n in 1usize..=10,
            v in collection::vec(0i32..100, 2..5),
        ) {
            prop_assert!((-3.0..3.0).contains(&x));
            prop_assert!((1..=10).contains(&n));
            prop_assert!(v.len() >= 2 && v.len() < 5);
            prop_assert!(v.iter().all(|&e| (0..100).contains(&e)));
        }
    }

    proptest! {
        #[test]
        fn assume_rejects_without_failing(a in 0u32..10) {
            prop_assume!(a % 2 == 0);
            prop_assert_eq!(a % 2, 0);
        }
    }

    #[test]
    fn assume_rejections_do_not_consume_the_case_budget() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        static ACCEPTED: AtomicUsize = AtomicUsize::new(0);
        proptest! {
            fn heavily_filtered(a in 0u32..100) {
                prop_assume!(a < 10); // ~10% acceptance rate
                ACCEPTED.fetch_add(1, Ordering::Relaxed);
                prop_assert!(a < 10);
            }
        }
        ACCEPTED.store(0, Ordering::Relaxed);
        heavily_filtered();
        assert_eq!(ACCEPTED.load(Ordering::Relaxed), crate::NUM_CASES);
    }

    #[test]
    #[should_panic(expected = "rejected too many inputs")]
    fn always_rejecting_property_fails_instead_of_passing_vacuously() {
        proptest! {
            fn rejects_everything(a in 0u32..100) {
                prop_assume!(a > 100);
                let _ = a;
            }
        }
        rejects_everything();
    }

    #[test]
    #[should_panic(expected = "property `always_fails` failed")]
    fn failures_panic_with_context() {
        proptest! {
            #[allow(unreachable_code)]
            fn always_fails(x in 0u32..2) {
                prop_assert!(x > 100, "x={} is never > 100", x);
            }
        }
        always_fails();
    }
}
