//! Offline, dependency-free stand-in for the `criterion` crate.
//!
//! Provides the subset of the criterion 0.5 API the `aesz_bench` benches
//! use — `Criterion::default().sample_size(n)`, `benchmark_group`,
//! `throughput`, `bench_function`, `finish`, plus the `criterion_group!` /
//! `criterion_main!` macros — backed by a simple measure-and-report loop:
//! each benchmark is warmed up, then timed for `sample_size` samples, and
//! the median per-iteration time (with derived throughput, when declared)
//! is printed to stdout. No statistical analysis, plots, or baselines; the
//! point is that `cargo bench` runs and prints comparable numbers.

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Throughput declaration for a benchmark group. Mirror of
/// `criterion::Throughput`.
#[derive(Clone, Copy, Debug)]
pub enum Throughput {
    Bytes(u64),
    Elements(u64),
}

/// Top-level harness state. Mirror of `criterion::Criterion`.
pub struct Criterion {
    sample_size: usize,
    warm_up_time: Duration,
    measurement_time: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            sample_size: 100,
            warm_up_time: Duration::from_millis(300),
            measurement_time: Duration::from_secs(2),
        }
    }
}

impl Criterion {
    pub fn sample_size(mut self, n: usize) -> Self {
        assert!(n >= 2, "sample size must be at least 2");
        self.sample_size = n;
        self
    }

    pub fn warm_up_time(mut self, d: Duration) -> Self {
        self.warm_up_time = d;
        self
    }

    pub fn measurement_time(mut self, d: Duration) -> Self {
        self.measurement_time = d;
        self
    }

    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            throughput: None,
            sample_size: None,
        }
    }

    pub fn bench_function<F>(&mut self, id: &str, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let sample_size = self.sample_size;
        run_benchmark(self, None, id, None, sample_size, f);
        self
    }
}

/// A named group of benchmarks sharing a throughput declaration.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    throughput: Option<Throughput>,
    // Per-group override, like real criterion: it must not leak into
    // groups created later from the same `Criterion`.
    sample_size: Option<usize>,
}

impl BenchmarkGroup<'_> {
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        assert!(n >= 2, "sample size must be at least 2");
        self.sample_size = Some(n);
        self
    }

    pub fn bench_function<F>(&mut self, id: &str, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let sample_size = self.sample_size.unwrap_or(self.criterion.sample_size);
        run_benchmark(
            self.criterion,
            Some(&self.name),
            id,
            self.throughput,
            sample_size,
            f,
        );
        self
    }

    pub fn finish(self) {}
}

/// Per-benchmark timing context handed to the closure. Mirror of
/// `criterion::Bencher`; `iter` runs the routine `iters` times and records
/// the elapsed wall-clock time.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(routine());
        }
        self.elapsed = start.elapsed();
    }
}

fn time_once<F: FnMut(&mut Bencher)>(f: &mut F, iters: u64) -> Duration {
    let mut b = Bencher {
        iters,
        elapsed: Duration::ZERO,
    };
    f(&mut b);
    b.elapsed
}

fn run_benchmark<F>(
    criterion: &Criterion,
    group: Option<&str>,
    id: &str,
    throughput: Option<Throughput>,
    sample_size: usize,
    mut f: F,
) where
    F: FnMut(&mut Bencher),
{
    let label = match group {
        Some(g) => format!("{g}/{id}"),
        None => id.to_string(),
    };

    // Warm-up, and calibrate how many iterations fit in one sample so that
    // each sample is long enough to time reliably.
    let mut iters: u64 = 1;
    let warm_up_start = Instant::now();
    let mut per_iter = loop {
        let elapsed = time_once(&mut f, iters);
        if warm_up_start.elapsed() >= criterion.warm_up_time {
            break elapsed.as_secs_f64() / iters as f64;
        }
        if elapsed < Duration::from_millis(1) {
            iters = iters.saturating_mul(2);
        }
    };
    if per_iter <= 0.0 {
        per_iter = 1e-9;
    }
    let sample_budget = criterion.measurement_time.as_secs_f64() / sample_size as f64;
    let iters_per_sample = ((sample_budget / per_iter).ceil() as u64).clamp(1, 1 << 30);

    let mut samples: Vec<f64> = (0..sample_size)
        .map(|_| time_once(&mut f, iters_per_sample).as_secs_f64() / iters_per_sample as f64)
        .collect();
    samples.sort_by(|a, b| a.total_cmp(b));
    let median = samples[samples.len() / 2];
    let lo = samples[0];
    let hi = samples[samples.len() - 1];

    let rate = match throughput {
        Some(Throughput::Bytes(bytes)) if median > 0.0 => {
            format!("  thrpt: {}/s", human_bytes(bytes as f64 / median))
        }
        Some(Throughput::Elements(n)) if median > 0.0 => {
            format!("  thrpt: {:.3} Melem/s", n as f64 / median / 1e6)
        }
        _ => String::new(),
    };
    println!(
        "{label:<48} time: [{} {} {}]{rate}",
        human_time(lo),
        human_time(median),
        human_time(hi),
    );
}

fn human_time(seconds: f64) -> String {
    if seconds < 1e-6 {
        format!("{:.3} ns", seconds * 1e9)
    } else if seconds < 1e-3 {
        format!("{:.3} µs", seconds * 1e6)
    } else if seconds < 1.0 {
        format!("{:.3} ms", seconds * 1e3)
    } else {
        format!("{seconds:.3} s")
    }
}

fn human_bytes(bytes_per_sec: f64) -> String {
    const KIB: f64 = 1024.0;
    if bytes_per_sec >= KIB * KIB * KIB {
        format!("{:.3} GiB", bytes_per_sec / (KIB * KIB * KIB))
    } else if bytes_per_sec >= KIB * KIB {
        format!("{:.3} MiB", bytes_per_sec / (KIB * KIB))
    } else if bytes_per_sec >= KIB {
        format!("{:.3} KiB", bytes_per_sec / KIB)
    } else {
        format!("{bytes_per_sec:.1} B")
    }
}

/// Mirror of `criterion::criterion_group!`: expands to a function that runs
/// every target against the configured `Criterion`.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $config;
            $( $target(&mut criterion); )+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group! {
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        }
    };
}

/// Mirror of `criterion::criterion_main!`: expands to `main`, ignoring the
/// harness arguments cargo-bench passes.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_and_reports() {
        let mut c = Criterion::default()
            .sample_size(2)
            .warm_up_time(Duration::from_millis(1))
            .measurement_time(Duration::from_millis(4));
        let mut runs = 0u64;
        c.bench_function("noop", |b| b.iter(|| runs += 1));
        assert!(runs > 0);
    }

    #[test]
    fn groups_report_throughput() {
        let mut c = Criterion::default()
            .sample_size(2)
            .warm_up_time(Duration::from_millis(1))
            .measurement_time(Duration::from_millis(4));
        let mut group = c.benchmark_group("g");
        group.throughput(Throughput::Bytes(1024));
        group.bench_function("sum", |b| b.iter(|| (0..64u64).map(black_box).sum::<u64>()));
        group.finish();
    }
}
