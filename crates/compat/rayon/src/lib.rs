//! Offline, dependency-free stand-in for the `rayon` crate.
//!
//! Implements the one parallel-iterator shape the workspace uses —
//! `slice.par_chunks_mut(n).enumerate().for_each(f)` — with real
//! parallelism via `std::thread::scope`: chunks are dealt round-robin to
//! one scoped thread per available core. No work stealing, but chunk work
//! in this workspace (per-sample convolution) is uniform, so static
//! distribution is close to optimal.

pub mod pool;

pub mod prelude {
    pub use crate::slice::ParallelSliceMut;
}

pub mod slice {
    /// Mirror of `rayon::slice::ParallelSliceMut`.
    pub trait ParallelSliceMut<T: Send> {
        fn par_chunks_mut(&mut self, chunk_size: usize) -> ParChunksMut<'_, T>;
    }

    impl<T: Send> ParallelSliceMut<T> for [T] {
        fn par_chunks_mut(&mut self, chunk_size: usize) -> ParChunksMut<'_, T> {
            assert!(chunk_size > 0, "chunk size must be non-zero");
            ParChunksMut {
                slice: self,
                chunk_size,
            }
        }
    }

    pub struct ParChunksMut<'a, T> {
        slice: &'a mut [T],
        chunk_size: usize,
    }

    pub struct ParChunksMutEnumerate<'a, T> {
        inner: ParChunksMut<'a, T>,
    }

    fn run_parallel<T, F>(slice: &mut [T], chunk_size: usize, f: F)
    where
        T: Send,
        F: Fn((usize, &mut [T])) + Sync,
    {
        let n_chunks = slice.len().div_ceil(chunk_size);
        let threads = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
            .min(n_chunks.max(1));
        if threads <= 1 || n_chunks <= 1 {
            for pair in slice.chunks_mut(chunk_size).enumerate() {
                f(pair);
            }
            return;
        }
        let mut lanes: Vec<Vec<(usize, &mut [T])>> = (0..threads).map(|_| Vec::new()).collect();
        for (i, chunk) in slice.chunks_mut(chunk_size).enumerate() {
            lanes[i % threads].push((i, chunk));
        }
        let f = &f;
        std::thread::scope(|scope| {
            for lane in lanes {
                scope.spawn(move || {
                    for pair in lane {
                        f(pair);
                    }
                });
            }
        });
    }

    impl<'a, T: Send> ParChunksMut<'a, T> {
        pub fn enumerate(self) -> ParChunksMutEnumerate<'a, T> {
            ParChunksMutEnumerate { inner: self }
        }

        pub fn for_each<F>(self, f: F)
        where
            F: Fn(&mut [T]) + Sync,
        {
            run_parallel(self.slice, self.chunk_size, |(_, chunk)| f(chunk));
        }
    }

    impl<T: Send> ParChunksMutEnumerate<'_, T> {
        pub fn for_each<F>(self, f: F)
        where
            F: Fn((usize, &mut [T])) + Sync,
        {
            run_parallel(self.inner.slice, self.inner.chunk_size, f);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn enumerated_chunks_see_correct_indices_and_data() {
        let mut data = vec![0u64; 1003];
        data.par_chunks_mut(10).enumerate().for_each(|(i, chunk)| {
            for v in chunk.iter_mut() {
                *v = i as u64;
            }
        });
        for (j, v) in data.iter().enumerate() {
            assert_eq!(*v, (j / 10) as u64);
        }
    }

    #[test]
    fn plain_for_each_touches_every_element() {
        let mut data = vec![1i32; 257];
        data.par_chunks_mut(16).for_each(|chunk| {
            for v in chunk.iter_mut() {
                *v += 1;
            }
        });
        assert!(data.iter().all(|&v| v == 2));
    }
}
