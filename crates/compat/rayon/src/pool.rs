//! A bounded, work-stealing thread pool for long-running services.
//!
//! `rayon::scope`-style scoped parallelism (the `slice` module) fits batch
//! jobs that own their data for the duration of one call. A daemon needs
//! the opposite shape: a resident pool that outlives any one request,
//! accepts `'static` jobs from many producer threads, and — crucially —
//! *refuses* work past a configured in-flight cap so callers can answer
//! with typed backpressure instead of buffering unboundedly.
//!
//! Design:
//! * one `Mutex<VecDeque<Job>>` deque per worker; submissions go
//!   round-robin, workers pop their own deque from the front and steal
//!   from the back of the others when idle;
//! * a single `AtomicUsize` tracks jobs in flight (queued + running) and
//!   enforces the cap at submit time — [`WorkPool::try_execute`] either
//!   accepts the job or returns [`PoolFull`] immediately;
//! * parking uses a `Condvar` with a short timeout, so a missed notify
//!   costs at most one timeout interval rather than a hang.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;

type Job = Box<dyn FnOnce() + Send + 'static>;

/// A job that receives the index of the worker thread executing it —
/// the key into [`WorkerLocal`] state. Stolen jobs get the *stealing*
/// worker's index, so the key always names the thread actually running.
pub type TaggedJob = Box<dyn FnOnce(usize) + Send + 'static>;

/// Internal queue entry: a plain job or a worker-index-aware one.
enum Task {
    Plain(Job),
    Tagged(TaggedJob),
}

/// Returned by [`WorkPool::try_execute`] when the in-flight cap is reached.
/// Carries the job back so the caller can retry or drop it deliberately.
pub struct PoolFull(pub Job);

impl std::fmt::Debug for PoolFull {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("PoolFull(..)")
    }
}

/// [`PoolFull`] for [`WorkPool::try_execute_with`] submissions.
pub struct PoolFullTagged(pub TaggedJob);

impl std::fmt::Debug for PoolFullTagged {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("PoolFullTagged(..)")
    }
}

/// Fixed-size per-worker-thread state for jobs submitted through
/// [`WorkPool::try_execute_with`]: slot `i` belongs to worker `i`.
///
/// Only the worker whose index keys a slot ever locks it while the pool is
/// running (one thread runs one job at a time), so the mutexes are
/// uncontended in steady state; they exist so the container is `Sync` and
/// so external threads (stats, tests) can inspect slots safely.
pub struct WorkerLocal<T> {
    slots: Vec<Mutex<T>>,
}

impl<T> WorkerLocal<T> {
    /// One slot per worker, each built by `init`.
    pub fn with(workers: usize, mut init: impl FnMut() -> T) -> WorkerLocal<T> {
        WorkerLocal {
            slots: (0..workers.max(1)).map(|_| Mutex::new(init())).collect(),
        }
    }

    /// Number of slots (== the pool's worker count it was sized for).
    pub fn slots(&self) -> usize {
        self.slots.len()
    }

    /// Lock worker `worker`'s slot; `None` when the index is out of range.
    /// Poisoned slots are recovered, matching the pool's own lock policy.
    pub fn get(&self, worker: usize) -> Option<std::sync::MutexGuard<'_, T>> {
        self.slots
            .get(worker)
            .map(|m| m.lock().unwrap_or_else(|p| p.into_inner()))
    }
}

impl<T: Default> WorkerLocal<T> {
    /// One default-initialised slot per worker.
    pub fn new(workers: usize) -> WorkerLocal<T> {
        Self::with(workers, T::default)
    }
}

struct Shared {
    queues: Vec<Mutex<VecDeque<Task>>>,
    /// Jobs accepted but not yet finished (queued + running).
    in_flight: AtomicUsize,
    /// Submission cap on `in_flight`.
    max_in_flight: usize,
    shutdown: AtomicBool,
    parked: Mutex<()>,
    wake: Condvar,
}

/// A fixed-size thread pool with a hard cap on queued-plus-running jobs.
pub struct WorkPool {
    shared: Arc<Shared>,
    workers: Vec<JoinHandle<()>>,
    next: AtomicUsize,
}

impl WorkPool {
    /// Spawn `workers` threads (min 1) accepting at most `max_in_flight`
    /// unfinished jobs (min 1) at any moment.
    pub fn new(workers: usize, max_in_flight: usize) -> WorkPool {
        let workers = workers.max(1);
        let shared = Arc::new(Shared {
            queues: (0..workers).map(|_| Mutex::new(VecDeque::new())).collect(),
            in_flight: AtomicUsize::new(0),
            max_in_flight: max_in_flight.max(1),
            shutdown: AtomicBool::new(false),
            parked: Mutex::new(()),
            wake: Condvar::new(),
        });
        let handles = (0..workers)
            .map(|id| {
                let shared = Arc::clone(&shared);
                std::thread::spawn(move || worker_loop(&shared, id))
            })
            .collect();
        WorkPool {
            shared,
            workers: handles,
            next: AtomicUsize::new(0),
        }
    }

    /// Number of worker threads.
    pub fn workers(&self) -> usize {
        self.shared.queues.len()
    }

    /// Jobs accepted but not yet finished (queued + running).
    pub fn pending(&self) -> usize {
        self.shared.in_flight.load(Ordering::Acquire)
    }

    /// Submit a job, or return it inside [`PoolFull`] when the in-flight
    /// cap is reached. Never blocks.
    pub fn try_execute(&self, job: Job) -> Result<(), PoolFull> {
        if !self.reserve_slot() {
            return Err(PoolFull(job));
        }
        self.push_task(Task::Plain(job));
        Ok(())
    }

    /// Submit a job that receives the executing worker's index (the key
    /// into a [`WorkerLocal`] sized for this pool), or return it inside
    /// [`PoolFullTagged`] at the cap. Never blocks.
    pub fn try_execute_with(&self, job: TaggedJob) -> Result<(), PoolFullTagged> {
        if !self.reserve_slot() {
            return Err(PoolFullTagged(job));
        }
        self.push_task(Task::Tagged(job));
        Ok(())
    }

    /// Reserve an in-flight slot; `false` at the cap. CAS loop so the
    /// counter can never leak past `max_in_flight` under races.
    fn reserve_slot(&self) -> bool {
        let mut seen = self.shared.in_flight.load(Ordering::Acquire);
        loop {
            if seen >= self.shared.max_in_flight {
                return false;
            }
            match self.shared.in_flight.compare_exchange_weak(
                seen,
                seen + 1,
                Ordering::AcqRel,
                Ordering::Acquire,
            ) {
                Ok(_) => return true,
                Err(actual) => seen = actual,
            }
        }
    }

    /// Enqueue a reserved task round-robin and wake the workers.
    fn push_task(&self, task: Task) {
        let slot = self.next.fetch_add(1, Ordering::Relaxed) % self.shared.queues.len();
        if let Some(queue) = self.shared.queues.get(slot) {
            let mut guard = queue.lock().unwrap_or_else(|p| p.into_inner());
            guard.push_back(task);
        } else {
            // Unreachable by construction (slot < queues.len()); undo the
            // reservation rather than lose the slot.
            self.shared.in_flight.fetch_sub(1, Ordering::AcqRel);
            return;
        }
        self.shared.wake.notify_all();
    }

    /// Signal shutdown and join every worker. Jobs already accepted are
    /// drained before the workers exit.
    pub fn close(mut self) {
        self.begin_shutdown();
        for handle in self.workers.drain(..) {
            let _ = handle.join();
        }
    }

    fn begin_shutdown(&self) {
        self.shared.shutdown.store(true, Ordering::Release);
        self.shared.wake.notify_all();
    }
}

impl Drop for WorkPool {
    fn drop(&mut self) {
        self.begin_shutdown();
        for handle in self.workers.drain(..) {
            let _ = handle.join();
        }
    }
}

fn pop_job(shared: &Shared, id: usize) -> Option<Task> {
    // Own queue first (front: FIFO for fairness)...
    if let Some(queue) = shared.queues.get(id) {
        let mut guard = queue.lock().unwrap_or_else(|p| p.into_inner());
        if let Some(job) = guard.pop_front() {
            return Some(job);
        }
    }
    // ...then steal from the back of the others.
    for (other, queue) in shared.queues.iter().enumerate() {
        if other == id {
            continue;
        }
        let mut guard = queue.lock().unwrap_or_else(|p| p.into_inner());
        if let Some(job) = guard.pop_back() {
            return Some(job);
        }
    }
    None
}

fn worker_loop(shared: &Shared, id: usize) {
    loop {
        if let Some(job) = pop_job(shared, id) {
            // A panicking job must not unwind through the worker: that would
            // kill the thread and leak its in-flight slot, shrinking the
            // pool one panic at a time until every submit answers full.
            // Catch the unwind, release the slot, keep serving. Jobs own
            // their captures, so a broken invariant stays inside the
            // panicked job's own state (hence AssertUnwindSafe).
            let _ = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| match job {
                Task::Plain(f) => f(),
                Task::Tagged(f) => f(id),
            }));
            shared.in_flight.fetch_sub(1, Ordering::AcqRel);
            continue;
        }
        if shared.shutdown.load(Ordering::Acquire) {
            return;
        }
        // Park with a timeout: a notify racing past between the queue
        // check above and this wait costs one interval, not a hang.
        let guard = shared.parked.lock().unwrap_or_else(|p| p.into_inner());
        let _ = shared
            .wake
            .wait_timeout(guard, std::time::Duration::from_millis(50));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::mpsc;

    #[test]
    fn runs_jobs_and_drains_on_close() {
        let pool = WorkPool::new(4, 64);
        let counter = Arc::new(AtomicUsize::new(0));
        for _ in 0..32 {
            let counter = Arc::clone(&counter);
            pool.try_execute(Box::new(move || {
                counter.fetch_add(1, Ordering::SeqCst);
            }))
            .expect("under cap");
        }
        pool.close();
        assert_eq!(counter.load(Ordering::SeqCst), 32);
    }

    #[test]
    fn cap_rejects_deterministically() {
        let pool = WorkPool::new(1, 1);
        let (started_tx, started_rx) = mpsc::channel();
        let (release_tx, release_rx) = mpsc::channel::<()>();
        pool.try_execute(Box::new(move || {
            started_tx.send(()).expect("test channel");
            release_rx.recv().expect("test channel");
        }))
        .expect("first job fits");
        // The worker is now provably busy (it signalled) and the cap is 1,
        // so the next submission must bounce.
        started_rx.recv().expect("job started");
        let err = pool.try_execute(Box::new(|| {}));
        assert!(err.is_err(), "expected PoolFull at the cap");
        release_tx.send(()).expect("test channel");
        // After the job finishes the slot frees up again.
        loop {
            if pool.pending() == 0 {
                break;
            }
            std::thread::yield_now();
        }
        pool.try_execute(Box::new(|| {})).expect("slot freed");
        pool.close();
    }

    #[test]
    fn panicking_jobs_release_their_slot_and_worker() {
        let pool = WorkPool::new(1, 2);
        for _ in 0..3 {
            // Spin until a slot frees: more panicking jobs than the cap
            // proves slots are released, not leaked.
            loop {
                if pool
                    .try_execute(Box::new(|| panic!("deliberate test panic")))
                    .is_ok()
                {
                    break;
                }
                std::thread::yield_now();
            }
        }
        while pool.pending() > 0 {
            std::thread::yield_now();
        }
        // The lone worker must have survived every panic to run real work.
        let (tx, rx) = mpsc::channel();
        pool.try_execute(Box::new(move || tx.send(()).expect("test channel")))
            .expect("slots free after panicked jobs");
        rx.recv_timeout(std::time::Duration::from_secs(10))
            .expect("worker alive after panicked jobs");
        pool.close();
    }

    #[test]
    fn tagged_jobs_see_a_valid_executing_worker_index() {
        let pool = WorkPool::new(3, 64);
        let bad = Arc::new(AtomicUsize::new(0));
        let ran = Arc::new(AtomicUsize::new(0));
        for _ in 0..48 {
            let bad = Arc::clone(&bad);
            let ran = Arc::clone(&ran);
            pool.try_execute_with(Box::new(move |worker| {
                if worker >= 3 {
                    bad.fetch_add(1, Ordering::SeqCst);
                }
                ran.fetch_add(1, Ordering::SeqCst);
            }))
            .expect("under cap");
        }
        pool.close();
        assert_eq!(ran.load(Ordering::SeqCst), 48);
        assert_eq!(bad.load(Ordering::SeqCst), 0, "worker index out of range");
    }

    #[test]
    fn worker_local_state_persists_across_jobs_without_cross_talk() {
        let pool = WorkPool::new(2, 64);
        // Each slot accumulates (count, sum); every job adds its own value
        // to the slot of the worker running it. If slots leaked across
        // workers the per-slot counts could not add up to the total.
        let local = Arc::new(WorkerLocal::<(usize, u64)>::new(pool.workers()));
        for v in 0..100u64 {
            let local = Arc::clone(&local);
            let mut job: TaggedJob = Box::new(move |worker| {
                if let Some(mut slot) = local.get(worker) {
                    slot.0 += 1;
                    slot.1 += v;
                }
            });
            // Spin until the in-flight cap admits the job.
            loop {
                match pool.try_execute_with(job) {
                    Ok(()) => break,
                    Err(PoolFullTagged(back)) => {
                        job = back;
                        std::thread::yield_now();
                    }
                }
            }
        }
        pool.close();
        let (mut count, mut sum) = (0usize, 0u64);
        for w in 0..local.slots() {
            let slot = local.get(w).expect("slot in range");
            count += slot.0;
            sum += slot.1;
        }
        assert_eq!(count, 100);
        assert_eq!(sum, (0..100).sum::<u64>());
        assert!(local.get(local.slots()).is_none(), "out of range is None");
    }

    #[test]
    fn many_producers_never_exceed_cap() {
        let pool = Arc::new(WorkPool::new(2, 8));
        let peak = Arc::new(AtomicUsize::new(0));
        std::thread::scope(|scope| {
            for _ in 0..8 {
                let pool = Arc::clone(&pool);
                let peak = Arc::clone(&peak);
                scope.spawn(move || {
                    for _ in 0..200 {
                        let _ = pool.try_execute(Box::new(|| {
                            std::thread::yield_now();
                        }));
                        peak.fetch_max(pool.pending(), Ordering::SeqCst);
                    }
                });
            }
        });
        assert!(peak.load(Ordering::SeqCst) <= 8);
    }
}
