//! A bounded, work-stealing thread pool for long-running services.
//!
//! `rayon::scope`-style scoped parallelism (the `slice` module) fits batch
//! jobs that own their data for the duration of one call. A daemon needs
//! the opposite shape: a resident pool that outlives any one request,
//! accepts `'static` jobs from many producer threads, and — crucially —
//! *refuses* work past a configured in-flight cap so callers can answer
//! with typed backpressure instead of buffering unboundedly.
//!
//! Design:
//! * one `Mutex<VecDeque<Job>>` deque per worker; submissions go
//!   round-robin, workers pop their own deque from the front and steal
//!   from the back of the others when idle;
//! * a single `AtomicUsize` tracks jobs in flight (queued + running) and
//!   enforces the cap at submit time — [`WorkPool::try_execute`] either
//!   accepts the job or returns [`PoolFull`] immediately;
//! * parking uses a `Condvar` with a short timeout, so a missed notify
//!   costs at most one timeout interval rather than a hang.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;

type Job = Box<dyn FnOnce() + Send + 'static>;

/// Returned by [`WorkPool::try_execute`] when the in-flight cap is reached.
/// Carries the job back so the caller can retry or drop it deliberately.
pub struct PoolFull(pub Job);

impl std::fmt::Debug for PoolFull {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("PoolFull(..)")
    }
}

struct Shared {
    queues: Vec<Mutex<VecDeque<Job>>>,
    /// Jobs accepted but not yet finished (queued + running).
    in_flight: AtomicUsize,
    /// Submission cap on `in_flight`.
    max_in_flight: usize,
    shutdown: AtomicBool,
    parked: Mutex<()>,
    wake: Condvar,
}

/// A fixed-size thread pool with a hard cap on queued-plus-running jobs.
pub struct WorkPool {
    shared: Arc<Shared>,
    workers: Vec<JoinHandle<()>>,
    next: AtomicUsize,
}

impl WorkPool {
    /// Spawn `workers` threads (min 1) accepting at most `max_in_flight`
    /// unfinished jobs (min 1) at any moment.
    pub fn new(workers: usize, max_in_flight: usize) -> WorkPool {
        let workers = workers.max(1);
        let shared = Arc::new(Shared {
            queues: (0..workers).map(|_| Mutex::new(VecDeque::new())).collect(),
            in_flight: AtomicUsize::new(0),
            max_in_flight: max_in_flight.max(1),
            shutdown: AtomicBool::new(false),
            parked: Mutex::new(()),
            wake: Condvar::new(),
        });
        let handles = (0..workers)
            .map(|id| {
                let shared = Arc::clone(&shared);
                std::thread::spawn(move || worker_loop(&shared, id))
            })
            .collect();
        WorkPool {
            shared,
            workers: handles,
            next: AtomicUsize::new(0),
        }
    }

    /// Number of worker threads.
    pub fn workers(&self) -> usize {
        self.shared.queues.len()
    }

    /// Jobs accepted but not yet finished (queued + running).
    pub fn pending(&self) -> usize {
        self.shared.in_flight.load(Ordering::Acquire)
    }

    /// Submit a job, or return it inside [`PoolFull`] when the in-flight
    /// cap is reached. Never blocks.
    pub fn try_execute(&self, job: Job) -> Result<(), PoolFull> {
        // Reserve a slot first; roll back on failure so the counter can
        // never leak past `max_in_flight`.
        let mut seen = self.shared.in_flight.load(Ordering::Acquire);
        loop {
            if seen >= self.shared.max_in_flight {
                return Err(PoolFull(job));
            }
            match self.shared.in_flight.compare_exchange_weak(
                seen,
                seen + 1,
                Ordering::AcqRel,
                Ordering::Acquire,
            ) {
                Ok(_) => break,
                Err(actual) => seen = actual,
            }
        }
        let slot = self.next.fetch_add(1, Ordering::Relaxed) % self.shared.queues.len();
        if let Some(queue) = self.shared.queues.get(slot) {
            let mut guard = queue.lock().unwrap_or_else(|p| p.into_inner());
            guard.push_back(job);
        } else {
            // Unreachable by construction (slot < queues.len()); undo the
            // reservation rather than lose the slot.
            self.shared.in_flight.fetch_sub(1, Ordering::AcqRel);
            return Ok(());
        }
        self.shared.wake.notify_all();
        Ok(())
    }

    /// Signal shutdown and join every worker. Jobs already accepted are
    /// drained before the workers exit.
    pub fn close(mut self) {
        self.begin_shutdown();
        for handle in self.workers.drain(..) {
            let _ = handle.join();
        }
    }

    fn begin_shutdown(&self) {
        self.shared.shutdown.store(true, Ordering::Release);
        self.shared.wake.notify_all();
    }
}

impl Drop for WorkPool {
    fn drop(&mut self) {
        self.begin_shutdown();
        for handle in self.workers.drain(..) {
            let _ = handle.join();
        }
    }
}

fn pop_job(shared: &Shared, id: usize) -> Option<Job> {
    // Own queue first (front: FIFO for fairness)...
    if let Some(queue) = shared.queues.get(id) {
        let mut guard = queue.lock().unwrap_or_else(|p| p.into_inner());
        if let Some(job) = guard.pop_front() {
            return Some(job);
        }
    }
    // ...then steal from the back of the others.
    for (other, queue) in shared.queues.iter().enumerate() {
        if other == id {
            continue;
        }
        let mut guard = queue.lock().unwrap_or_else(|p| p.into_inner());
        if let Some(job) = guard.pop_back() {
            return Some(job);
        }
    }
    None
}

fn worker_loop(shared: &Shared, id: usize) {
    loop {
        if let Some(job) = pop_job(shared, id) {
            // A panicking job must not unwind through the worker: that would
            // kill the thread and leak its in-flight slot, shrinking the
            // pool one panic at a time until every submit answers full.
            // Catch the unwind, release the slot, keep serving. Jobs own
            // their captures, so a broken invariant stays inside the
            // panicked job's own state (hence AssertUnwindSafe).
            let _ = std::panic::catch_unwind(std::panic::AssertUnwindSafe(job));
            shared.in_flight.fetch_sub(1, Ordering::AcqRel);
            continue;
        }
        if shared.shutdown.load(Ordering::Acquire) {
            return;
        }
        // Park with a timeout: a notify racing past between the queue
        // check above and this wait costs one interval, not a hang.
        let guard = shared.parked.lock().unwrap_or_else(|p| p.into_inner());
        let _ = shared
            .wake
            .wait_timeout(guard, std::time::Duration::from_millis(50));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::mpsc;

    #[test]
    fn runs_jobs_and_drains_on_close() {
        let pool = WorkPool::new(4, 64);
        let counter = Arc::new(AtomicUsize::new(0));
        for _ in 0..32 {
            let counter = Arc::clone(&counter);
            pool.try_execute(Box::new(move || {
                counter.fetch_add(1, Ordering::SeqCst);
            }))
            .expect("under cap");
        }
        pool.close();
        assert_eq!(counter.load(Ordering::SeqCst), 32);
    }

    #[test]
    fn cap_rejects_deterministically() {
        let pool = WorkPool::new(1, 1);
        let (started_tx, started_rx) = mpsc::channel();
        let (release_tx, release_rx) = mpsc::channel::<()>();
        pool.try_execute(Box::new(move || {
            started_tx.send(()).expect("test channel");
            release_rx.recv().expect("test channel");
        }))
        .expect("first job fits");
        // The worker is now provably busy (it signalled) and the cap is 1,
        // so the next submission must bounce.
        started_rx.recv().expect("job started");
        let err = pool.try_execute(Box::new(|| {}));
        assert!(err.is_err(), "expected PoolFull at the cap");
        release_tx.send(()).expect("test channel");
        // After the job finishes the slot frees up again.
        loop {
            if pool.pending() == 0 {
                break;
            }
            std::thread::yield_now();
        }
        pool.try_execute(Box::new(|| {})).expect("slot freed");
        pool.close();
    }

    #[test]
    fn panicking_jobs_release_their_slot_and_worker() {
        let pool = WorkPool::new(1, 2);
        for _ in 0..3 {
            // Spin until a slot frees: more panicking jobs than the cap
            // proves slots are released, not leaked.
            loop {
                if pool
                    .try_execute(Box::new(|| panic!("deliberate test panic")))
                    .is_ok()
                {
                    break;
                }
                std::thread::yield_now();
            }
        }
        while pool.pending() > 0 {
            std::thread::yield_now();
        }
        // The lone worker must have survived every panic to run real work.
        let (tx, rx) = mpsc::channel();
        pool.try_execute(Box::new(move || tx.send(()).expect("test channel")))
            .expect("slots free after panicked jobs");
        rx.recv_timeout(std::time::Duration::from_secs(10))
            .expect("worker alive after panicked jobs");
        pool.close();
    }

    #[test]
    fn many_producers_never_exceed_cap() {
        let pool = Arc::new(WorkPool::new(2, 8));
        let peak = Arc::new(AtomicUsize::new(0));
        std::thread::scope(|scope| {
            for _ in 0..8 {
                let pool = Arc::clone(&pool);
                let peak = Arc::clone(&peak);
                scope.spawn(move || {
                    for _ in 0..200 {
                        let _ = pool.try_execute(Box::new(|| {
                            std::thread::yield_now();
                        }));
                        peak.fetch_max(pool.pending(), Ordering::SeqCst);
                    }
                });
            }
        });
        assert!(peak.load(Ordering::SeqCst) <= 8);
    }
}
