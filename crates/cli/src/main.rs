//! `aesz` — compress/decompress raw little-endian `f32` fields through the
//! chunked streaming archive layer.
//!
//! The tool drives [`aesz_repro::archive`] with *file-backed* chunk sources
//! and sinks: chunks are read and written with seeks, so a dataset is never
//! materialized in memory — peak resident payload is one window of chunks,
//! whatever the file size.
//!
//! ```text
//! aesz gen        --app cesm --dims 512x512 --seed 7 --output field.f32
//! aesz train      --input field.f32 --dims 512x512 --codec aesz \
//!                 --output field.aesm [--epochs 4]
//! aesz compress   --input field.f32 --dims 512x512 --codec aesz --rel 1e-3 \
//!                 --model field.aesm --embed-model \
//!                 --chunk 64 --window 8 --output field.aesa [--verify]
//! aesz decompress --input field.aesa --output recon.f32 [--model field.aesm]
//! aesz append     --archive field.aesa --input more.f32 --dims 128x512 \
//!                 --codec zfp --abs 1e-3
//! aesz info       --input field.aesa
//! aesz compare    --a x.f32 --b y.f32 --dims 512x512 [--max-abs 1e-3]
//! ```
//!
//! The `train` subcommand is the paper's offline stage: it trains a learned
//! codec's network and writes a content-addressed sidecar model file
//! (`AESM` frame). `compress` can load that sidecar (`--model`), train one
//! inline (`--train`), and embed the model bytes into the archive itself
//! (`--embed-model`) so `decompress` in a fresh process needs nothing but
//! the archive.
//!
//! # Piped streaming
//!
//! `compress` and `decompress` accept `-` for `--input` / `--output` and
//! then run truly streaming: stdin is consumed band by band (one chunk-row
//! of the field at a time), stdout receives the inline (unindexed) archive
//! layout that needs no seeking, and resident memory stays bounded by one
//! band plus one window of chunks — never the field:
//!
//! ```text
//! aesz gen --app cesm --dims 2048x2048 --output - \
//!   | aesz compress --input - --dims 2048x2048 --codec zfp --abs 1e-3 --output - \
//!   | aesz decompress --input - --output recon.f32
//! ```
//!
//! Piped compression requires `--abs` (a pipe cannot be re-scanned for the
//! value range a `--rel` bound resolves against), and `--embed-model`
//! requires a seekable output. `append` extends an existing version-3
//! archive in place along its slowest axis without rewriting existing
//! payload bytes (write it with `--reserve` to leave index capacity, or
//! pipe through `compress --output -` for the capacity-free inline layout).
//!
//! # Compression as a service
//!
//! `aesz serve` runs the [`aesz_server`] daemon — trained models stay
//! resident across requests — and `aesz remote` is its client, speaking the
//! `AESP` protocol over TCP. A `Busy` backpressure rejection exits with
//! code 75 (`EX_TEMPFAIL`) so callers know to back off and retry.

#![forbid(unsafe_code)]

use std::fs::{File, OpenOptions};
use std::io::{BufWriter, Read, Seek, SeekFrom, Write};
use std::time::Instant;

use aesz_repro::archive::{
    write_archive, write_archive_embedding, write_archive_stream, ArchiveAppender, ArchiveDecoders,
    ArchiveOptions, ArchiveReader, ChunkSink, ChunkSource,
};
use aesz_repro::baselines::{AeA, AeB};
use aesz_repro::core::training::{train_swae_for_field, TrainingOptions};
use aesz_repro::core::AeSz;
use aesz_repro::datagen::Application;
use aesz_repro::metrics::protocol as wire;
use aesz_repro::model_store::build_compressor;
use aesz_repro::tensor::BlockSpec;
use aesz_repro::{
    CodecId, Compressor, Dims, EmbeddedModel, ErrorBound, Field, ModelStore, Registry,
    StreamFieldDecoder, StreamOutput,
};
use aesz_server::{RemoteClient, Server, ServerConfig};

const USAGE: &str = "usage:
  aesz gen        --app NAME --dims DIMS --output FILE|- [--seed N]
  aesz train      --input FILE | --app NAME  --dims DIMS --output FILE
                  [--codec aesz|aea|aeb] [--epochs N] [--block N] [--latent N]
                  [--channels 8,16] [--max-blocks N] [--train-seed N] [--seed N]
  aesz compress   --input FILE|- --dims DIMS --codec NAME --rel E | --abs E
                  --output FILE|- [--chunk N] [--window N] [--reserve N]
                  [--verify] [--model FILE] [--train] [--embed-model]
                  [--epochs N]
  aesz decompress --input FILE|- --output FILE|- [--window N] [--model FILE]
                  [--verify]
  aesz append     --archive FILE --input FILE|- --dims DIMS --codec NAME
                  --abs E [--window N] [--model FILE] [--embed-model]
  aesz info       --input FILE
  aesz compare    --a FILE --b FILE --dims DIMS [--max-abs E]
  aesz models     --dir DIR
  aesz serve      [--addr HOST:PORT] [--workers N] [--queue N] [--max-conns N]
                  [--max-bytes N] [--max-elems N] [--models DIR]
  aesz remote     --addr HOST:PORT compress --input FILE|- --dims DIMS
                  --codec NAME --rel E | --abs E --output FILE|-
  aesz remote     --addr HOST:PORT decompress --input FILE|- --output FILE|-
  aesz remote     --addr HOST:PORT train --input FILE|- --dims DIMS
                  --codec NAME --output FILE|- [--epochs N] [--block N]
                  [--latent N] [--max-blocks N] [--train-seed N]
  aesz remote     --addr HOST:PORT health | stats | models

DIMS is slow-to-fast extents, e.g. 1800x3600 or 256x256x256.
codecs: aesz, sz2, zfp, szauto, szinterp, aea, aeb. The learned codecs
(aesz, aea, aeb) need a trained model: train one offline (`aesz train`),
load it with --model, or train inline with --train. `--embed-model` ships
the model inside the archive; `decompress` also resolves sidecar files
given via --model. With --train, --model names where to SAVE the model.
apps for gen/train: cesm, cesm-freqsh, exafel, nyx, nyx-temp, nyx-dm,
hurricane-u, hurricane-qvapor, rtm.
`-` streams stdin/stdout with memory bounded by one chunk band: piped
compression needs --abs (a pipe cannot be re-scanned for the value range)
and a piped archive uses the inline (unindexed) layout. --reserve N leaves
empty index slots so `aesz append` can extend the archive in place; append
takes the appended slab's DIMS (matching every axis but the slowest).
`serve` keeps trained models resident across requests; `remote` exits 75
(EX_TEMPFAIL) on a Busy backpressure rejection so callers back off.";

/// Print a line to stdout without dying on a closed pipe. `println!` panics
/// on `EPIPE`, so `aesz ... | head` used to crash with a raw Broken pipe
/// abort once `head` exited. Downstream closing early is flow control, not
/// failure: exit 141 (128 + SIGPIPE) quietly, the way a signal-killed
/// filter would.
macro_rules! emit {
    ($($arg:tt)*) => { emit_line(format_args!($($arg)*)) };
}

/// Route a status line: stdout normally, stderr when stdout is the data
/// channel (a status line inside a piped archive corrupts it).
macro_rules! status {
    ($stdout_is_data:expr, $($arg:tt)*) => {
        if $stdout_is_data { eprintln!($($arg)*) } else { emit!($($arg)*) }
    };
}

fn emit_line(line: std::fmt::Arguments<'_>) {
    let mut out = std::io::stdout().lock();
    let wrote = out.write_fmt(line).and_then(|()| out.write_all(b"\n"));
    if let Err(e) = wrote {
        if e.kind() == std::io::ErrorKind::BrokenPipe {
            std::process::exit(141);
        }
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match run(args) {
        Ok(()) => {}
        Err(e) => {
            // Data writes that hit EPIPE surface here as error strings (the
            // subcommands wrap io::Error into prose); same deal as emit! —
            // the downstream hung up, so leave quietly.
            if e.to_lowercase().contains("broken pipe") {
                std::process::exit(141);
            }
            eprintln!("aesz: {e}");
            std::process::exit(1);
        }
    }
}

fn run(mut args: Vec<String>) -> Result<(), String> {
    if args.is_empty() {
        return Err(format!("missing subcommand\n{USAGE}"));
    }
    let cmd = args.remove(0);
    match cmd.as_str() {
        "gen" => cmd_gen(args),
        "train" => cmd_train(args),
        "compress" => cmd_compress(args),
        "decompress" => cmd_decompress(args),
        "append" => cmd_append(args),
        "info" => cmd_info(args),
        "compare" => cmd_compare(args),
        "models" => cmd_models(args),
        "serve" => cmd_serve(args),
        "remote" => cmd_remote(args),
        "-h" | "--help" | "help" => {
            emit!("{USAGE}");
            Ok(())
        }
        other => Err(format!("unknown subcommand `{other}`\n{USAGE}")),
    }
}

// ---------------------------------------------------------------- arguments

fn take_opt(args: &mut Vec<String>, name: &str) -> Result<Option<String>, String> {
    if let Some(pos) = args.iter().position(|a| a == name) {
        if pos + 1 >= args.len() {
            return Err(format!("{name} needs a value"));
        }
        let value = args.remove(pos + 1);
        args.remove(pos);
        Ok(Some(value))
    } else {
        Ok(None)
    }
}

fn need_opt(args: &mut Vec<String>, name: &str) -> Result<String, String> {
    take_opt(args, name)?.ok_or(format!("{name} is required\n{USAGE}"))
}

fn take_flag(args: &mut Vec<String>, name: &str) -> bool {
    if let Some(pos) = args.iter().position(|a| a == name) {
        args.remove(pos);
        true
    } else {
        false
    }
}

fn finish_args(args: Vec<String>) -> Result<(), String> {
    if args.is_empty() {
        Ok(())
    } else {
        Err(format!("unrecognised arguments: {}", args.join(" ")))
    }
}

fn parse_dims(s: &str) -> Result<Dims, String> {
    let parts: Result<Vec<usize>, _> = s.split('x').map(|p| p.parse::<usize>()).collect();
    let parts = parts.map_err(|_| format!("bad dims `{s}` (expected e.g. 256x256)"))?;
    if parts.contains(&0) {
        return Err(format!("bad dims `{s}`: zero extent"));
    }
    match *parts.as_slice() {
        [n] => Ok(Dims::d1(n)),
        [ny, nx] => Ok(Dims::d2(ny, nx)),
        [nz, ny, nx] => Ok(Dims::d3(nz, ny, nx)),
        _ => Err(format!("bad dims `{s}`: rank must be 1..=3")),
    }
}

fn parse_codec(s: &str) -> Result<CodecId, String> {
    match s.to_ascii_lowercase().as_str() {
        "aesz" | "ae-sz" => Ok(CodecId::AeSz),
        "sz2" | "sz2.1" => Ok(CodecId::Sz2),
        "zfp" => Ok(CodecId::Zfp),
        "szauto" => Ok(CodecId::SzAuto),
        "szinterp" => Ok(CodecId::SzInterp),
        "aea" | "ae-a" => Ok(CodecId::AeA),
        "aeb" | "ae-b" => Ok(CodecId::AeB),
        other => Err(format!("unknown codec `{other}`")),
    }
}

fn parse_app(s: &str) -> Result<Application, String> {
    match s.to_ascii_lowercase().as_str() {
        "cesm" | "cesm-cldhgh" => Ok(Application::CesmCldhgh),
        "cesm-freqsh" => Ok(Application::CesmFreqsh),
        "exafel" => Ok(Application::Exafel),
        "nyx" | "nyx-baryon" => Ok(Application::NyxBaryonDensity),
        "nyx-temp" => Ok(Application::NyxTemperature),
        "nyx-dm" => Ok(Application::NyxDarkMatterDensity),
        "hurricane-u" => Ok(Application::HurricaneU),
        "hurricane-qvapor" => Ok(Application::HurricaneQvapor),
        "rtm" => Ok(Application::Rtm),
        other => Err(format!("unknown application `{other}`")),
    }
}

fn parse_f64(s: &str, what: &str) -> Result<f64, String> {
    s.parse::<f64>().map_err(|_| format!("bad {what} `{s}`"))
}

fn parse_usize(s: &str, what: &str) -> Result<usize, String> {
    s.parse::<usize>().map_err(|_| format!("bad {what} `{s}`"))
}

fn parse_channels(s: &str) -> Result<Vec<usize>, String> {
    let parts: Result<Vec<usize>, _> = s.split(',').map(|p| p.trim().parse::<usize>()).collect();
    let parts = parts.map_err(|_| format!("bad channels `{s}` (expected e.g. 8,16)"))?;
    if parts.is_empty() || parts.contains(&0) {
        return Err(format!(
            "bad channels `{s}`: need at least one, all non-zero"
        ));
    }
    Ok(parts)
}

// --------------------------------------------------------------- model files

/// Read a whole raw `f32` field into memory (training needs the blocks).
fn read_field(path: &str, dims: Dims) -> Result<Field, String> {
    let bytes = std::fs::read(path).map_err(|e| format!("read {path}: {e}"))?;
    let expected = dims.len() * 4;
    if bytes.len() != expected {
        return Err(format!(
            "{path} holds {} bytes but dims {dims} need {expected} (f32)",
            bytes.len()
        ));
    }
    Field::from_le_bytes(dims, &bytes).map_err(|_| format!("{path}: byte/dims mismatch"))
}

/// Load a sidecar `AESM` model file into a trained compressor.
fn load_model_file(path: &str) -> Result<(EmbeddedModel, Box<dyn Compressor>), String> {
    let bytes = std::fs::read(path).map_err(|e| format!("read {path}: {e}"))?;
    let (model, codec) = EmbeddedModel::from_frame(&bytes).map_err(|e| format!("{path}: {e}"))?;
    let built = build_compressor(&model).map_err(|e| format!("{path}: {e}"))?;
    // Diagnostic, so stderr: compress/append may be piping their archive
    // through stdout when this prints.
    eprintln!(
        "loaded {} model {} from {path} ({} bytes)",
        codec.name(),
        model.id,
        bytes.len()
    );
    Ok((model, built))
}

/// Training knobs shared by `aesz train` and `compress --train`.
struct TrainKnobs {
    epochs: Option<usize>,
    block: Option<usize>,
    latent: Option<usize>,
    channels: Option<Vec<usize>>,
    max_blocks: Option<usize>,
    train_seed: u64,
}

impl TrainKnobs {
    fn take(args: &mut Vec<String>) -> Result<TrainKnobs, String> {
        Ok(TrainKnobs {
            epochs: match take_opt(args, "--epochs")? {
                Some(s) => Some(parse_usize(&s, "epochs")?),
                None => None,
            },
            block: match take_opt(args, "--block")? {
                Some(s) => Some(parse_usize(&s, "block")?),
                None => None,
            },
            latent: match take_opt(args, "--latent")? {
                Some(s) => Some(parse_usize(&s, "latent")?),
                None => None,
            },
            channels: match take_opt(args, "--channels")? {
                Some(s) => Some(parse_channels(&s)?),
                None => None,
            },
            max_blocks: match take_opt(args, "--max-blocks")? {
                Some(s) => Some(parse_usize(&s, "max-blocks")?),
                None => None,
            },
            train_seed: match take_opt(args, "--train-seed")? {
                Some(s) => parse_usize(&s, "train-seed")? as u64,
                None => 2021,
            },
        })
    }
}

/// Train a learned codec on `field` (the paper's offline stage), returning
/// the trained compressor and its content-addressed model.
fn train_codec(
    codec: CodecId,
    field: &Field,
    knobs: &TrainKnobs,
) -> Result<(EmbeddedModel, Box<dyn Compressor>), String> {
    let fields = std::slice::from_ref(field);
    let built: Box<dyn Compressor> = match codec {
        CodecId::AeSz => {
            let rank = field.dims().rank();
            if rank < 2 {
                return Err("aesz training needs a 2D or 3D field".into());
            }
            let mut opts = TrainingOptions::default_for_rank(rank);
            if let Some(e) = knobs.epochs {
                opts.epochs = e;
            }
            if let Some(b) = knobs.block {
                opts.block_size = b;
            }
            if let Some(l) = knobs.latent {
                opts.latent_dim = l;
            }
            if let Some(c) = &knobs.channels {
                opts.channels = c.clone();
            }
            if let Some(m) = knobs.max_blocks {
                opts.max_blocks = m;
            }
            opts.seed = knobs.train_seed;
            Box::new(AeSz::from_model(train_swae_for_field(fields, &opts)))
        }
        CodecId::AeA => {
            let mut ae = AeA::new(knobs.train_seed);
            ae.train(fields, knobs.epochs.unwrap_or(3), knobs.train_seed);
            Box::new(ae)
        }
        CodecId::AeB => {
            if field.dims().rank() != 3 {
                return Err("aeb training needs a 3D field".into());
            }
            let mut ae = AeB::new(knobs.train_seed);
            ae.train(fields, knobs.epochs.unwrap_or(3), knobs.train_seed);
            Box::new(ae)
        }
        other => {
            return Err(format!(
                "codec {} takes no model; only aesz, aea and aeb train",
                other.name()
            ))
        }
    };
    let model = built
        .embedded_model()
        .expect("freshly trained codecs carry a model");
    Ok((model, built))
}

// ------------------------------------------------------------- file chunk IO

/// Fill `buf` from `input`, looping over short reads, and return how many
/// bytes landed (< `buf.len()` only at end of input). Plain `read()` may
/// return counts that are not multiples of 4 — pipes routinely do — which
/// would shear every following `f32` off its byte boundary.
fn read_full(input: &mut impl Read, buf: &mut [u8]) -> std::io::Result<usize> {
    let mut filled = 0;
    while filled < buf.len() {
        let n = input.read(&mut buf[filled..])?;
        if n == 0 {
            break;
        }
        filled += n;
    }
    Ok(filled)
}

/// Enumerate the contiguous runs (element offset + length) a chunk occupies
/// inside a row-major file, in row-major order over the chunk.
fn for_each_run(
    dims: Dims,
    spec: &BlockSpec,
    mut f: impl FnMut(u64, usize) -> Result<(), String>,
) -> Result<(), String> {
    match dims {
        Dims::D1 { .. } => f(spec.origin[0] as u64, spec.size[0]),
        Dims::D2 { nx, .. } => {
            for y in 0..spec.size[0] {
                let at = (spec.origin[0] + y) * nx + spec.origin[1];
                f(at as u64, spec.size[1])?;
            }
            Ok(())
        }
        Dims::D3 { ny, nx, .. } => {
            for z in 0..spec.size[0] {
                for y in 0..spec.size[1] {
                    let at =
                        ((spec.origin[0] + z) * ny + (spec.origin[1] + y)) * nx + spec.origin[2];
                    f(at as u64, spec.size[2])?;
                }
            }
            Ok(())
        }
    }
}

/// [`ChunkSource`] over a raw little-endian `f32` file, read with seeks so
/// only one chunk is resident at a time.
struct RawFileSource {
    file: File,
    dims: Dims,
}

impl RawFileSource {
    fn open(path: &str, dims: Dims) -> Result<Self, String> {
        let file = File::open(path).map_err(|e| format!("open {path}: {e}"))?;
        let len = file
            .metadata()
            .map_err(|e| format!("stat {path}: {e}"))?
            .len();
        let expected = dims.len() as u64 * 4;
        if len != expected {
            return Err(format!(
                "{path} holds {len} bytes but dims {dims} need {expected} (f32)"
            ));
        }
        Ok(RawFileSource { file, dims })
    }
}

impl ChunkSource for RawFileSource {
    fn dims(&self) -> Dims {
        self.dims
    }

    fn min_max(&mut self) -> std::io::Result<(f32, f32)> {
        self.file.seek(SeekFrom::Start(0))?;
        let mut buf = vec![0u8; 1 << 16];
        let (mut lo, mut hi) = (f32::INFINITY, f32::NEG_INFINITY);
        loop {
            // The file length is a validated multiple of 4, so a full read
            // (and the final partial one) always lands on f32 boundaries.
            let n = read_full(&mut self.file, &mut buf)?;
            if n == 0 {
                break;
            }
            for v in buf[..n].chunks_exact(4) {
                let x = f32::from_le_bytes([v[0], v[1], v[2], v[3]]);
                if x.is_nan() {
                    continue;
                }
                lo = lo.min(x);
                hi = hi.max(x);
            }
        }
        if lo > hi {
            Ok((0.0, 0.0))
        } else {
            Ok((lo, hi))
        }
    }

    fn read_chunk(&mut self, spec: &BlockSpec) -> std::io::Result<Field> {
        let mut values = Vec::with_capacity(spec.valid_len());
        let mut row = Vec::new();
        let file = &mut self.file;
        for_each_run(self.dims, spec, |offset, len| {
            file.seek(SeekFrom::Start(offset * 4))
                .map_err(|e| e.to_string())?;
            row.resize(len * 4, 0);
            file.read_exact(&mut row).map_err(|e| e.to_string())?;
            for v in row.chunks_exact(4) {
                values.push(f32::from_le_bytes([v[0], v[1], v[2], v[3]]));
            }
            Ok(())
        })
        .map_err(std::io::Error::other)?;
        Ok(
            Field::from_vec(aesz_repro::archive::chunk_dims(spec), values)
                .expect("run lengths sum to the chunk size"),
        )
    }
}

/// [`ChunkSink`] writing decoded chunks into a raw `f32` file with seeks.
struct RawFileSink {
    file: File,
    dims: Dims,
}

impl RawFileSink {
    fn create(path: &str, dims: Dims) -> Result<Self, String> {
        let file = OpenOptions::new()
            .create(true)
            .write(true)
            .truncate(true)
            .open(path)
            .map_err(|e| format!("create {path}: {e}"))?;
        file.set_len(dims.len() as u64 * 4)
            .map_err(|e| format!("size {path}: {e}"))?;
        Ok(RawFileSink { file, dims })
    }
}

impl ChunkSink for RawFileSink {
    fn write_chunk(&mut self, spec: &BlockSpec, chunk: &Field) -> std::io::Result<()> {
        let values = chunk.as_slice();
        let mut taken = 0usize;
        let file = &mut self.file;
        for_each_run(self.dims, spec, |offset, len| {
            file.seek(SeekFrom::Start(offset * 4))
                .map_err(|e| e.to_string())?;
            let mut row = Vec::with_capacity(len * 4);
            for &v in &values[taken..taken + len] {
                row.extend_from_slice(&v.to_le_bytes());
            }
            taken += len;
            file.write_all(&row).map_err(|e| e.to_string())?;
            Ok(())
        })
        .map_err(std::io::Error::other)
    }
}

/// [`ChunkSource`] over a pipe of raw little-endian `f32` values: buffers
/// one *band* (a chunk-row of the field) and serves chunk reads out of it.
/// The archive writers read chunks in ascending index order, which over a
/// row-major chunk grid means band by band — so one band of residency is
/// enough and the pipe never rewinds.
struct BandSource<R: Read> {
    input: R,
    dims: Dims,
    chunk: usize,
    /// Elements per slow-axis row (product of every extent but the slowest).
    row_elems: usize,
    /// First slow-axis row currently buffered; `band` holds `band_rows`
    /// rows from there (zero rows before the first read).
    band_start: usize,
    band_rows: usize,
    band: Vec<f32>,
    bytes: Vec<u8>,
}

impl<R: Read> BandSource<R> {
    fn new(input: R, dims: Dims, chunk: usize) -> Self {
        let slow = dims.extents()[0];
        BandSource {
            input,
            dims,
            chunk,
            row_elems: dims.len() / slow,
            band_start: 0,
            band_rows: 0,
            band: Vec::new(),
            bytes: Vec::new(),
        }
    }

    /// Advance the band until it holds slow-axis row `row`, which must lie
    /// at or past the buffered band — pipes only move forward.
    fn load_to(&mut self, row: usize) -> std::io::Result<()> {
        let slow = self.dims.extents()[0];
        while row >= self.band_start + self.band_rows && self.band_start + self.band_rows < slow {
            self.band_start += self.band_rows;
            self.band_rows = self.chunk.min(slow - self.band_start);
            self.bytes.resize(self.band_rows * self.row_elems * 4, 0);
            let got = read_full(&mut self.input, &mut self.bytes)?;
            if got != self.bytes.len() {
                return Err(std::io::Error::new(
                    std::io::ErrorKind::UnexpectedEof,
                    format!(
                        "piped input ended {got} bytes into a {}-byte band; \
                         --dims promise more data",
                        self.bytes.len()
                    ),
                ));
            }
            self.band.clear();
            self.band.extend(
                self.bytes
                    .chunks_exact(4)
                    .map(|v| f32::from_le_bytes([v[0], v[1], v[2], v[3]])),
            );
        }
        if row < self.band_start || row >= self.band_start + self.band_rows {
            return Err(std::io::Error::other(
                "chunk read outside the buffered band; a pipe cannot rewind",
            ));
        }
        Ok(())
    }
}

impl<R: Read> ChunkSource for BandSource<R> {
    fn dims(&self) -> Dims {
        self.dims
    }

    fn min_max(&mut self) -> std::io::Result<(f32, f32)> {
        // Resolving a relative bound needs the full value range up front,
        // and scanning for it would consume the pipe. cmd_compress rejects
        // --rel with piped input before it gets here.
        Err(std::io::Error::other(
            "a piped source cannot be pre-scanned for its value range; use --abs",
        ))
    }

    fn read_chunk(&mut self, spec: &BlockSpec) -> std::io::Result<Field> {
        self.load_to(spec.origin[0])?;
        let mut values = Vec::with_capacity(spec.valid_len());
        let band = &self.band;
        let base = self.band_start * self.row_elems;
        for_each_run(self.dims, spec, |offset, len| {
            let at = (offset as usize)
                .checked_sub(base)
                .filter(|at| at + len <= band.len())
                .ok_or_else(|| "chunk run outside the buffered band".to_string())?;
            values.extend_from_slice(&band[at..at + len]);
            Ok(())
        })
        .map_err(std::io::Error::other)?;
        Ok(
            Field::from_vec(aesz_repro::archive::chunk_dims(spec), values)
                .expect("run lengths sum to the chunk size"),
        )
    }
}

/// [`ChunkSink`] feeding a pipe of raw little-endian `f32` values: decoded
/// chunks land in a one-band buffer that is flushed, in order, the moment
/// decoding moves past it. The windowed decoder and the push decoder both
/// emit chunks in ascending index order for well-formed archives, so a band
/// is complete when the first chunk of the next band arrives.
struct BandSink<W: Write> {
    out: W,
    dims: Dims,
    chunk: usize,
    row_elems: usize,
    band_start: usize,
    band_rows: usize,
    band: Vec<f32>,
}

impl<W: Write> BandSink<W> {
    fn new(out: W, dims: Dims, chunk: usize) -> Self {
        let slow = dims.extents()[0];
        let band_rows = chunk.min(slow);
        let row_elems = dims.len() / slow;
        BandSink {
            out,
            dims,
            chunk,
            row_elems,
            band_start: 0,
            band_rows,
            band: vec![0.0; band_rows * row_elems],
        }
    }

    fn flush_band(&mut self) -> std::io::Result<()> {
        let mut bytes = Vec::with_capacity(self.band.len() * 4);
        for &v in &self.band {
            bytes.extend_from_slice(&v.to_le_bytes());
        }
        self.out.write_all(&bytes)?;
        let slow = self.dims.extents()[0];
        self.band_start += self.band_rows;
        self.band_rows = self.chunk.min(slow.saturating_sub(self.band_start));
        self.band.clear();
        self.band.resize(self.band_rows * self.row_elems, 0.0);
        Ok(())
    }

    /// Write out whatever bands remain — the last band has no successor
    /// chunk to trigger its flush — and flush the pipe.
    fn finish(&mut self) -> std::io::Result<()> {
        while self.band_rows > 0 {
            self.flush_band()?;
        }
        self.out.flush()
    }
}

impl<W: Write> ChunkSink for BandSink<W> {
    fn write_chunk(&mut self, spec: &BlockSpec, chunk: &Field) -> std::io::Result<()> {
        while self.band_rows > 0 && spec.origin[0] >= self.band_start + self.band_rows {
            self.flush_band()?;
        }
        if self.band_rows == 0 || spec.origin[0] < self.band_start {
            // A chunk deferred on a late-arriving embedded model replays out
            // of order; that needs a seekable output file.
            return Err(std::io::Error::other(
                "decoded chunk arrived behind the already-flushed band; \
                 a piped output cannot seek — decompress to a file",
            ));
        }
        let values = chunk.as_slice();
        let base = self.band_start * self.row_elems;
        let band = &mut self.band;
        let mut taken = 0usize;
        for_each_run(self.dims, spec, |offset, len| {
            let at = offset as usize - base;
            band[at..at + len].copy_from_slice(&values[taken..taken + len]);
            taken += len;
            Ok(())
        })
        .map_err(std::io::Error::other)
    }
}

/// [`ChunkSink`] that compares decoded chunks against the original source
/// instead of storing them — the streaming PSNR/max-error accumulator of
/// `compress --verify`.
struct VerifySink {
    original: RawFileSource,
    sum_sq: f64,
    max_abs: f64,
    count: u64,
}

impl ChunkSink for VerifySink {
    fn write_chunk(&mut self, spec: &BlockSpec, chunk: &Field) -> std::io::Result<()> {
        let reference = self.original.read_chunk(spec)?;
        for (&a, &b) in reference.as_slice().iter().zip(chunk.as_slice()) {
            let d = (a as f64 - b as f64).abs();
            self.sum_sq += d * d;
            self.max_abs = self.max_abs.max(d);
            self.count += 1;
        }
        Ok(())
    }
}

fn psnr(range: f64, sum_sq: f64, count: u64) -> f64 {
    if count == 0 || sum_sq == 0.0 {
        return f64::INFINITY;
    }
    let mse = sum_sq / count as f64;
    20.0 * range.log10() - 10.0 * mse.log10()
}

fn mb(bytes: usize) -> f64 {
    bytes as f64 / 1e6
}

// ------------------------------------------------------------- subcommands

fn cmd_gen(mut args: Vec<String>) -> Result<(), String> {
    let app = parse_app(&need_opt(&mut args, "--app")?)?;
    let dims = parse_dims(&need_opt(&mut args, "--dims")?)?;
    let output = need_opt(&mut args, "--output")?;
    let seed = match take_opt(&mut args, "--seed")? {
        Some(s) => parse_usize(&s, "seed")? as u64,
        None => 0,
    };
    finish_args(args)?;
    let field = app.generate(dims, seed);
    let piped = output == "-";
    if piped {
        let mut out = BufWriter::new(std::io::stdout().lock());
        out.write_all(&field.to_le_bytes())
            .and_then(|()| out.flush())
            .map_err(|e| format!("write stdout: {e}"))?;
    } else {
        let mut out =
            BufWriter::new(File::create(&output).map_err(|e| format!("create {output}: {e}"))?);
        out.write_all(&field.to_le_bytes())
            .and_then(|()| out.flush())
            .map_err(|e| format!("write {output}: {e}"))?;
    }
    let (lo, hi) = field.min_max();
    status!(
        piped,
        "wrote {} ({} elements, {:.1} MB) range [{lo}, {hi}]",
        output,
        field.len(),
        mb(field.len() * 4)
    );
    Ok(())
}

fn cmd_train(mut args: Vec<String>) -> Result<(), String> {
    let codec = match take_opt(&mut args, "--codec")? {
        Some(s) => parse_codec(&s)?,
        None => CodecId::AeSz,
    };
    let dims = parse_dims(&need_opt(&mut args, "--dims")?)?;
    let output = need_opt(&mut args, "--output")?;
    let input = take_opt(&mut args, "--input")?;
    let app = take_opt(&mut args, "--app")?;
    let seed = match take_opt(&mut args, "--seed")? {
        Some(s) => parse_usize(&s, "seed")? as u64,
        None => 0,
    };
    let knobs = TrainKnobs::take(&mut args)?;
    finish_args(args)?;

    let field = match (&input, &app) {
        (Some(path), None) => read_field(path, dims)?,
        (None, Some(name)) => parse_app(name)?.generate(dims, seed),
        _ => {
            return Err(format!(
                "exactly one of --input / --app is required\n{USAGE}"
            ))
        }
    };
    let t0 = Instant::now();
    let (model, _) = train_codec(codec, &field, &knobs)?;
    let secs = t0.elapsed().as_secs_f64();
    std::fs::write(&output, &model.frame).map_err(|e| format!("write {output}: {e}"))?;
    emit!(
        "trained {} on {} ({} elements) in {secs:.2} s ({:.2} MB/s of training data)",
        codec.name(),
        input.or(app).unwrap_or_default(),
        field.len(),
        mb(field.len() * 4) / secs,
    );
    emit!(
        "model {} -> {output} ({} bytes); decode with `--model {output}` or name it \
         <id>.aesm in a sidecar directory",
        model.id,
        model.frame.len()
    );
    Ok(())
}

fn cmd_compress(mut args: Vec<String>) -> Result<(), String> {
    let input = need_opt(&mut args, "--input")?;
    let dims = parse_dims(&need_opt(&mut args, "--dims")?)?;
    let codec = parse_codec(&need_opt(&mut args, "--codec")?)?;
    let output = need_opt(&mut args, "--output")?;
    let rel = take_opt(&mut args, "--rel")?;
    let abs = take_opt(&mut args, "--abs")?;
    let bound = match (rel, abs) {
        (Some(e), None) => ErrorBound::rel(parse_f64(&e, "relative bound")?),
        (None, Some(e)) => ErrorBound::abs(parse_f64(&e, "absolute bound")?),
        _ => return Err(format!("exactly one of --rel / --abs is required\n{USAGE}")),
    };
    let mut opts = ArchiveOptions::new();
    if let Some(s) = take_opt(&mut args, "--chunk")? {
        opts = opts.chunk(parse_usize(&s, "chunk")?);
    }
    if let Some(s) = take_opt(&mut args, "--window")? {
        opts = opts.window(parse_usize(&s, "window")?);
    }
    if let Some(s) = take_opt(&mut args, "--reserve")? {
        opts = opts.reserve(parse_usize(&s, "reserve")?);
    }
    let verify = take_flag(&mut args, "--verify");
    let train = take_flag(&mut args, "--train");
    let embed_model = take_flag(&mut args, "--embed-model");
    let model_path = take_opt(&mut args, "--model")?;
    let knobs = TrainKnobs::take(&mut args)?;
    finish_args(args)?;

    let piped_in = input == "-";
    let piped_out = output == "-";
    if piped_in && matches!(bound, ErrorBound::RangeRel(_)) {
        return Err(
            "--rel resolves against the value range, which means scanning the \
                    input twice; a pipe cannot be re-read — use --abs with --input -"
                .into(),
        );
    }
    if piped_in && train {
        return Err(
            "--train needs the whole field resident; train offline (`aesz train`) \
                    and pass --model instead of piping the training data"
                .into(),
        );
    }
    if piped_in && verify {
        return Err("--verify re-reads the input, which a pipe cannot replay".into());
    }
    if piped_out && verify {
        return Err("--verify re-reads the output archive; write a file to verify".into());
    }
    if piped_out && embed_model {
        return Err(
            "--embed-model back-patches the archive header, which needs a \
                    seekable output; write a file to embed models"
                .into(),
        );
    }
    if piped_out && opts.reserved_chunks() > 0 {
        return Err(
            "--reserve sizes an index table, but a piped output uses the inline \
                    (unindexed) layout; write a file to reserve slots"
                .into(),
        );
    }

    let mut registry = Registry::with_defaults();
    if train {
        // The paper's offline stage, inline: train the codec on the field
        // being compressed, then (optionally) ship the model as a sidecar.
        let field = read_field(&input, dims)?;
        let t0 = Instant::now();
        let (model, built) = train_codec(codec, &field, &knobs)?;
        status!(
            piped_out,
            "trained {} model {} in {:.2} s",
            codec.name(),
            model.id,
            t0.elapsed().as_secs_f64()
        );
        if let Some(path) = &model_path {
            std::fs::write(path, &model.frame).map_err(|e| format!("write {path}: {e}"))?;
            status!(piped_out, "model saved to {path}");
        }
        registry.register(built);
    } else if let Some(path) = &model_path {
        let (model, built) = load_model_file(path)?;
        if built.codec_id() != codec {
            return Err(format!(
                "{path} holds a {} model but --codec is {}",
                built.codec_id().name(),
                codec.name()
            ));
        }
        let _ = model;
        registry.register(built);
    }
    let registry = registry;
    let t0 = Instant::now();
    let mut codecs = |_spec: &BlockSpec| {
        registry
            .fork(codec)
            .ok_or(aesz_repro::CompressError::UnsupportedField(
                "codec not registered",
            ))
    };
    let mut file_source;
    let mut pipe_source;
    let source: &mut dyn ChunkSource = if piped_in {
        pipe_source = BandSource::new(std::io::stdin().lock(), dims, opts.chunk_edge());
        &mut pipe_source
    } else {
        file_source = RawFileSource::open(&input, dims)?;
        &mut file_source
    };
    let stats = if piped_out {
        // No seeking on a pipe: emit the inline layout, which needs neither
        // an index back-patch nor a header rewrite.
        let mut sink = BufWriter::new(std::io::stdout().lock());
        let stats = write_archive_stream(source, bound, &opts, &mut codecs, &mut sink)
            .map_err(|e| e.to_string())?;
        sink.flush().map_err(|e| e.to_string())?;
        stats
    } else {
        let mut sink = File::create(&output).map_err(|e| format!("create {output}: {e}"))?;
        let stats = if embed_model {
            write_archive_embedding(source, bound, &opts, &mut codecs, &mut sink)
        } else {
            write_archive(source, bound, &opts, &mut codecs, &mut sink)
        }
        .map_err(|e| e.to_string())?;
        sink.flush().map_err(|e| e.to_string())?;
        stats
    };
    let secs = t0.elapsed().as_secs_f64();

    status!(
        piped_out,
        "{} -> {}: {} chunks (chunk {}, window {}), {} -> {} bytes",
        input,
        output,
        stats.chunks,
        opts.chunk_edge(),
        opts.window_chunks(),
        stats.raw_bytes,
        stats.archive_bytes
    );
    status!(
        piped_out,
        "codec {}, bound {}, ratio {:.2}:1, {:.1} MB/s, peak window payload {:.2} MB",
        codec.name(),
        bound,
        stats.raw_bytes as f64 / stats.archive_bytes as f64,
        mb(stats.raw_bytes) / secs,
        mb(stats.peak_window_raw_bytes),
    );
    if embed_model {
        status!(
            piped_out,
            "embedded model section: {} bytes",
            stats.model_bytes
        );
    }

    if verify {
        let bytes = std::fs::read(&output).map_err(|e| format!("read {output}: {e}"))?;
        let reader = ArchiveReader::open(&bytes).map_err(|e| e.to_string())?;
        let mut original = RawFileSource::open(&input, dims)?;
        let (lo, hi) = original.min_max().map_err(|e| e.to_string())?;
        let mut check = VerifySink {
            original,
            sum_sq: 0.0,
            max_abs: 0.0,
            count: 0,
        };
        let decoders = ArchiveDecoders::resolve(&registry, &reader);
        reader
            .decode_into(
                opts.window_chunks(),
                &mut |i, id| decoders.fork_for(&reader, i, id),
                &mut check,
            )
            .map_err(|e| e.to_string())?;
        let resolved = bound.absolute(lo, hi);
        let ok = check.max_abs <= resolved * 1.0001;
        emit!(
            "verify: PSNR {:.2} dB, max abs err {:.3e} (bound {:.3e}) {}",
            psnr((hi - lo) as f64, check.sum_sq, check.count),
            check.max_abs,
            resolved,
            if ok { "OK" } else { "VIOLATED" }
        );
        if !ok {
            return Err("error bound violated".into());
        }
    }
    Ok(())
}

fn cmd_decompress(mut args: Vec<String>) -> Result<(), String> {
    let input = need_opt(&mut args, "--input")?;
    let output = need_opt(&mut args, "--output")?;
    let window = match take_opt(&mut args, "--window")? {
        Some(s) => parse_usize(&s, "window")?,
        None => ArchiveOptions::default().window_chunks(),
    };
    let model_path = take_opt(&mut args, "--model")?;
    let verify = take_flag(&mut args, "--verify");
    finish_args(args)?;

    let piped_in = input == "-";
    let piped_out = output == "-";
    if verify && (piped_in || piped_out) {
        return Err("--verify re-reads both files, which pipes cannot replay".into());
    }

    let mut registry = Registry::with_defaults();
    if let Some(path) = &model_path {
        // Sidecar model: goes into the store so per-chunk resolution can
        // match it to the exact streams that name it.
        let id = registry
            .model_store_mut()
            .insert_file(std::path::Path::new(path))
            .map_err(|e| format!("{path}: {e}"))?;
        status!(piped_out, "loaded sidecar model {id} from {path}");
    }
    let registry = registry;
    if piped_in {
        return decompress_stdin(&registry, &output, piped_out);
    }
    let bytes = std::fs::read(&input).map_err(|e| format!("read {input}: {e}"))?;
    let t0 = Instant::now();
    let reader = ArchiveReader::open(&bytes).map_err(|e| e.to_string())?;
    for &(id, frame) in reader.models() {
        let codec = aesz_repro::metrics::container::read_model_frame(frame)
            .map(|(c, _)| c.name())
            .unwrap_or("?");
        status!(piped_out, "archive embeds {codec} model {id}");
    }
    // Per-chunk model resolution: embedded section first (hash-verified at
    // open), then the registry's store (the sidecar above) — so the learned
    // chunks decode in this fresh process.
    let decoders = ArchiveDecoders::resolve(&registry, &reader);
    let dims = reader.dims();
    if piped_out {
        let mut sink = BandSink::new(
            BufWriter::new(std::io::stdout().lock()),
            dims,
            reader.header().chunk,
        );
        reader
            .decode_into(
                window,
                &mut |i, id| decoders.fork_for(&reader, i, id),
                &mut sink,
            )
            .map_err(|e| e.to_string())?;
        sink.finish().map_err(|e| format!("write stdout: {e}"))?;
    } else {
        let mut sink = RawFileSink::create(&output, dims)?;
        reader
            .decode_into(
                window,
                &mut |i, id| decoders.fork_for(&reader, i, id),
                &mut sink,
            )
            .map_err(|e| e.to_string())?;
        sink.file.flush().map_err(|e| e.to_string())?;
    }
    let secs = t0.elapsed().as_secs_f64();
    let raw = dims.len() * 4;
    status!(
        piped_out,
        "{} -> {}: dims {}, {} chunks, {} -> {} bytes, {:.1} MB/s",
        input,
        output,
        dims,
        reader.chunk_count(),
        bytes.len(),
        raw,
        mb(raw) / secs,
    );

    if verify {
        // Self-check: decode every chunk again through the random-access
        // path and compare against what the windowed decode wrote — the two
        // paths must agree bit for bit.
        let mut written = RawFileSource::open(&output, dims)?;
        for i in 0..reader.chunk_count() {
            let entry = reader.entries()[i];
            let mut codec = decoders
                .fork_for(&reader, i, entry.codec)
                .map_err(|e| format!("chunk {i}: {e}"))?;
            let chunk = reader
                .decode_chunk(i, codec.as_mut())
                .map_err(|e| format!("chunk {i}: {e}"))?;
            let spec = reader.chunk_spec(i).expect("in range");
            let on_disk = written.read_chunk(&spec).map_err(|e| e.to_string())?;
            for (a, b) in chunk.as_slice().iter().zip(on_disk.as_slice()) {
                if a.to_bits() != b.to_bits() {
                    return Err(format!(
                        "verify: chunk {i} random-access decode diverged from the output file"
                    ));
                }
            }
        }
        emit!(
            "verify: all {} chunks random-access decode bit-identically OK",
            reader.chunk_count()
        );
    }
    Ok(())
}

/// `decompress --input -`: drive the push-based [`StreamFieldDecoder`] off
/// stdin. Chunks are written as they decode — with seeks into the output
/// file, or forwarded band by band when the output is stdout too — so
/// resident memory is one band plus the parser's bounded buffer, never the
/// archive or the field.
fn decompress_stdin(registry: &Registry, output: &str, piped_out: bool) -> Result<(), String> {
    let t0 = Instant::now();
    let mut decoder = StreamFieldDecoder::new(registry);
    let mut input = std::io::stdin().lock();
    let mut file_sink: Option<RawFileSink> = None;
    let mut band_sink: Option<BandSink<BufWriter<std::io::StdoutLock>>> = None;
    let mut dims_seen: Option<Dims> = None;
    let mut chunks = 0usize;
    let mut bytes_in = 0usize;
    let mut buf = [0u8; 1 << 16];
    loop {
        let n = input
            .read(&mut buf)
            .map_err(|e| format!("read stdin: {e}"))?;
        if n == 0 {
            decoder.finish();
        } else {
            bytes_in += n;
            decoder.feed(&buf[..n]);
        }
        while let Some(out) = decoder.poll().map_err(|e| e.to_string())? {
            match out {
                StreamOutput::Header(h) => {
                    dims_seen = Some(h.dims);
                    if piped_out {
                        band_sink = Some(BandSink::new(
                            BufWriter::new(std::io::stdout().lock()),
                            h.dims,
                            h.chunk,
                        ));
                    } else {
                        file_sink = Some(RawFileSink::create(output, h.dims)?);
                    }
                }
                StreamOutput::Chunk(spec, chunk) => {
                    chunks += 1;
                    if let Some(sink) = band_sink.as_mut() {
                        sink.write_chunk(&spec, &chunk)
                            .map_err(|e| format!("write stdout: {e}"))?;
                    } else if let Some(sink) = file_sink.as_mut() {
                        sink.write_chunk(&spec, &chunk)
                            .map_err(|e| format!("write {output}: {e}"))?;
                    }
                }
                StreamOutput::Field(field) => {
                    // The stream was one container frame, not an archive:
                    // the decoder hands over the whole reconstruction.
                    dims_seen = Some(field.dims());
                    let bytes = field.to_le_bytes();
                    if piped_out {
                        let mut out = std::io::stdout().lock();
                        out.write_all(&bytes)
                            .and_then(|()| out.flush())
                            .map_err(|e| format!("write stdout: {e}"))?;
                    } else {
                        std::fs::write(output, &bytes)
                            .map_err(|e| format!("write {output}: {e}"))?;
                    }
                }
            }
        }
        if n == 0 {
            break;
        }
    }
    if let Some(mut sink) = band_sink {
        sink.finish().map_err(|e| format!("write stdout: {e}"))?;
    }
    if let Some(mut sink) = file_sink {
        sink.file.flush().map_err(|e| e.to_string())?;
    }
    let dims = dims_seen.ok_or("empty stream")?;
    let secs = t0.elapsed().as_secs_f64();
    let raw = dims.len() * 4;
    status!(
        piped_out,
        "- -> {}: dims {}, {} chunks, {} -> {} bytes, {:.1} MB/s, peak parser buffer {} bytes",
        output,
        dims,
        chunks,
        bytes_in,
        raw,
        mb(raw) / secs,
        decoder.peak_buffered(),
    );
    Ok(())
}

fn cmd_append(mut args: Vec<String>) -> Result<(), String> {
    let archive = need_opt(&mut args, "--archive")?;
    let input = need_opt(&mut args, "--input")?;
    let dims = parse_dims(&need_opt(&mut args, "--dims")?)?;
    let codec = parse_codec(&need_opt(&mut args, "--codec")?)?;
    // Appends only take --abs: a relative bound would resolve against the
    // new slab's range alone and silently diverge from the archive's bound.
    let bound = ErrorBound::abs(parse_f64(&need_opt(&mut args, "--abs")?, "absolute bound")?);
    let window = match take_opt(&mut args, "--window")? {
        Some(s) => parse_usize(&s, "window")?,
        None => ArchiveOptions::default().window_chunks(),
    };
    let embed_model = take_flag(&mut args, "--embed-model");
    let model_path = take_opt(&mut args, "--model")?;
    finish_args(args)?;

    let mut registry = Registry::with_defaults();
    if let Some(path) = &model_path {
        let (_, built) = load_model_file(path)?;
        if built.codec_id() != codec {
            return Err(format!(
                "{path} holds a {} model but --codec is {}",
                built.codec_id().name(),
                codec.name()
            ));
        }
        registry.register(built);
    }
    let registry = registry;

    let file = OpenOptions::new()
        .read(true)
        .write(true)
        .open(&archive)
        .map_err(|e| format!("open {archive}: {e}"))?;
    let mut appender = ArchiveAppender::open(file).map_err(|e| format!("{archive}: {e}"))?;
    let chunk = appender.header().chunk;
    let old_dims = appender.header().dims;
    let spare_before = appender.spare_slots();

    let t0 = Instant::now();
    let mut codecs = |_spec: &BlockSpec| {
        registry
            .fork(codec)
            .ok_or(aesz_repro::CompressError::UnsupportedField(
                "codec not registered",
            ))
    };
    let mut file_source;
    let mut pipe_source;
    let source: &mut dyn ChunkSource = if input == "-" {
        pipe_source = BandSource::new(std::io::stdin().lock(), dims, chunk);
        &mut pipe_source
    } else {
        file_source = RawFileSource::open(&input, dims)?;
        &mut file_source
    };
    let stats = if embed_model {
        appender.append_embedding(source, bound, window, &mut codecs)
    } else {
        appender.append(source, bound, window, &mut codecs)
    }
    .map_err(|e| e.to_string())?;
    let new_dims = appender.header().dims;
    let spare_after = appender.spare_slots();
    let file = appender.finalize().map_err(|e| e.to_string())?;
    file.sync_all()
        .map_err(|e| format!("sync {archive}: {e}"))?;
    let secs = t0.elapsed().as_secs_f64();

    emit!(
        "{archive}: dims {old_dims} -> {new_dims}, +{} chunks (chunk {chunk}), \
         {} -> {} bytes, {:.1} MB/s",
        stats.chunks,
        stats.raw_bytes,
        stats.archive_bytes,
        mb(stats.raw_bytes) / secs,
    );
    if spare_before == usize::MAX {
        emit!("inline archive (no index): append capacity is unbounded");
    } else {
        emit!("index slots: {spare_before} spare before, {spare_after} after");
    }
    Ok(())
}

fn cmd_info(mut args: Vec<String>) -> Result<(), String> {
    let input = need_opt(&mut args, "--input")?;
    finish_args(args)?;
    let bytes = std::fs::read(&input).map_err(|e| format!("read {input}: {e}"))?;
    let reader = ArchiveReader::open(&bytes).map_err(|e| e.to_string())?;
    let header = reader.header();
    emit!(
        "{input}: AESA v{}, f32, dims {} ({} elements), chunk {} -> {} chunks",
        header.version,
        header.dims,
        header.dims.len(),
        header.chunk,
        reader.chunk_count()
    );
    emit!(
        "archive {} bytes (ratio {:.2}:1), header+index {} bytes",
        bytes.len(),
        (header.dims.len() * 4) as f64 / bytes.len() as f64,
        header.data_start(),
    );
    for id in CodecId::all() {
        let (count, frame_bytes) = reader
            .entries()
            .iter()
            .filter(|e| e.codec == id)
            .fold((0usize, 0u64), |(n, b), e| (n + 1, b + e.len));
        if count > 0 {
            emit!("  {:<9} {count:>6} chunks, {frame_bytes} bytes", id.name());
        }
    }
    if !reader.models().is_empty() {
        emit!("embedded models ({} bytes):", header.model_len);
        for &(id, frame) in reader.models() {
            let codec = aesz_repro::metrics::container::read_model_frame(frame)
                .map(|(c, _)| c.name())
                .unwrap_or("?");
            emit!("  {codec:<9} {id} ({} bytes)", frame.len());
        }
    }
    Ok(())
}

fn cmd_compare(mut args: Vec<String>) -> Result<(), String> {
    let a = need_opt(&mut args, "--a")?;
    let b = need_opt(&mut args, "--b")?;
    let dims = parse_dims(&need_opt(&mut args, "--dims")?)?;
    let max_abs = match take_opt(&mut args, "--max-abs")? {
        Some(s) => Some(parse_f64(&s, "max-abs")?),
        None => None,
    };
    finish_args(args)?;

    let mut fa = RawFileSource::open(&a, dims)?;
    let mut fb = RawFileSource::open(&b, dims)?;
    let (lo, hi) = fa.min_max().map_err(|e| e.to_string())?;
    fa.file
        .seek(SeekFrom::Start(0))
        .map_err(|e| e.to_string())?;
    let (mut sum_sq, mut worst, mut count) = (0.0f64, 0.0f64, 0u64);
    let mut buf_a = vec![0u8; 1 << 16];
    let mut buf_b = vec![0u8; 1 << 16];
    loop {
        let n = read_full(&mut fa.file, &mut buf_a).map_err(|e| e.to_string())?;
        if n == 0 {
            break;
        }
        fb.file
            .read_exact(&mut buf_b[..n])
            .map_err(|e| e.to_string())?;
        for (va, vb) in buf_a[..n].chunks_exact(4).zip(buf_b[..n].chunks_exact(4)) {
            let x = f32::from_le_bytes([va[0], va[1], va[2], va[3]]) as f64;
            let y = f32::from_le_bytes([vb[0], vb[1], vb[2], vb[3]]) as f64;
            let d = (x - y).abs();
            sum_sq += d * d;
            worst = worst.max(d);
            count += 1;
        }
    }
    emit!(
        "{a} vs {b}: PSNR {:.2} dB, max abs err {:.3e}",
        psnr((hi - lo) as f64, sum_sq, count),
        worst
    );
    if let Some(cap) = max_abs {
        if worst > cap {
            return Err(format!(
                "max abs err {worst:.3e} exceeds --max-abs {cap:.3e}"
            ));
        }
        emit!("within --max-abs {cap:.3e} OK");
    }
    Ok(())
}

// --------------------------------------------------------------- service

/// `aesz models`: list the `.aesm` sidecar models in a directory, with
/// their content-addressed ids re-verified against the frame bytes.
fn cmd_models(mut args: Vec<String>) -> Result<(), String> {
    let dir = need_opt(&mut args, "--dir")?;
    finish_args(args)?;
    let entries = ModelStore::scan_sidecar_dir(std::path::Path::new(&dir))
        .map_err(|e| format!("scan {dir}: {e}"))?;
    if entries.is_empty() {
        emit!("{dir}: no .aesm sidecar models");
        return Ok(());
    }
    for entry in &entries {
        let codec = entry.codec.map(|c| c.name()).unwrap_or("?");
        let id = match entry.id {
            Some(id) => id.to_string(),
            None => "?".into(),
        };
        emit!(
            "{:<30} {codec:<9} {:>10} bytes  {}  {id}",
            entry.file_name,
            entry.param_bytes,
            if entry.verified {
                "verified  "
            } else {
                "UNVERIFIED"
            },
        );
    }
    Ok(())
}

/// `aesz serve`: run the compression daemon in the foreground. Models
/// trained over the wire (or found in `--models DIR`) stay resident, so
/// repeat decompressions skip the per-process model load the one-shot CLI
/// pays.
fn cmd_serve(mut args: Vec<String>) -> Result<(), String> {
    let mut config = ServerConfig::default();
    if let Some(s) = take_opt(&mut args, "--addr")? {
        config.addr = s;
    }
    if let Some(s) = take_opt(&mut args, "--workers")? {
        config.workers = parse_usize(&s, "workers")?.max(1);
    }
    if let Some(s) = take_opt(&mut args, "--queue")? {
        config.queue_cap = parse_usize(&s, "queue")?;
    }
    if let Some(s) = take_opt(&mut args, "--max-conns")? {
        config.max_connections = parse_usize(&s, "max-conns")?.max(1);
    }
    if let Some(s) = take_opt(&mut args, "--max-bytes")? {
        config.max_request_bytes = parse_usize(&s, "max-bytes")? as u64;
    }
    if let Some(s) = take_opt(&mut args, "--max-elems")? {
        config.max_field_elems = parse_usize(&s, "max-elems")?;
    }
    if let Some(s) = take_opt(&mut args, "--models")? {
        config.model_dir = Some(std::path::PathBuf::from(s));
    }
    finish_args(args)?;
    let server = Server::bind(config).map_err(|e| format!("bind: {e}"))?;
    let addr = server.local_addr().map_err(|e| e.to_string())?;
    let state = server.state();
    // The bound address goes to stdout (scripts read it, ports may be
    // auto-assigned via :0); flushed by emit_line before run() blocks.
    emit!(
        "aesz serve: listening on {addr} ({} workers, {} queue slots, {} connections max)",
        state.config.workers,
        state.config.queue_cap,
        state.config.max_connections
    );
    server.run().map_err(|e| format!("serve: {e}"))
}

/// `aesz remote`: one request against an `aesz serve` daemon.
fn cmd_remote(mut args: Vec<String>) -> Result<(), String> {
    let addr = need_opt(&mut args, "--addr")?;
    if args.is_empty() {
        return Err(format!(
            "remote needs a verb: compress, decompress, train, health, stats or models\n{USAGE}"
        ));
    }
    let verb = args.remove(0);
    let mut client = RemoteClient::connect(&addr).map_err(|e| format!("connect {addr}: {e}"))?;
    match verb.as_str() {
        "compress" => remote_compress(&mut client, args),
        "decompress" => remote_decompress(&mut client, args),
        "train" => remote_train(&mut client, args),
        "health" => {
            finish_args(args)?;
            match remote_request(&mut client, &wire::Request::Health)? {
                wire::Response::HealthOk {
                    uptime_ms,
                    queue_depth,
                } => {
                    emit!(
                        "{addr}: healthy, uptime {:.1} s, queue depth {queue_depth}",
                        uptime_ms as f64 / 1e3
                    );
                    Ok(())
                }
                _ => Err("unexpected response to health".into()),
            }
        }
        "stats" => {
            finish_args(args)?;
            match remote_request(&mut client, &wire::Request::Stats)? {
                wire::Response::StatsOk(s) => {
                    print_stats(&addr, &s);
                    Ok(())
                }
                _ => Err("unexpected response to stats".into()),
            }
        }
        "models" => {
            finish_args(args)?;
            match remote_request(&mut client, &wire::Request::ListModels)? {
                wire::Response::ModelList { entries } => {
                    emit!("{addr}: {} models", entries.len());
                    for e in &entries {
                        emit!(
                            "  {} {:<9} {:>10} bytes  {}",
                            e.id,
                            e.codec.map(|c| c.name()).unwrap_or("?"),
                            e.param_bytes,
                            if e.verified { "verified" } else { "UNVERIFIED" },
                        );
                    }
                    Ok(())
                }
                _ => Err("unexpected response to models".into()),
            }
        }
        other => Err(format!("unknown remote verb `{other}`\n{USAGE}")),
    }
}

/// Send one request, translating the daemon's typed failure responses:
/// `Busy` exits 75 (EX_TEMPFAIL — retry later), `Error` becomes the
/// process-level error message.
fn remote_request(
    client: &mut RemoteClient,
    request: &wire::Request,
) -> Result<wire::Response, String> {
    match client.request(request).map_err(|e| e.to_string())? {
        wire::Response::Busy { queue_depth } => {
            eprintln!("aesz: server busy ({queue_depth} queued); retry later");
            std::process::exit(75);
        }
        wire::Response::Error { code, message } => {
            Err(format!("server error ({code:?}): {message}"))
        }
        other => Ok(other),
    }
}

fn remote_compress(client: &mut RemoteClient, mut args: Vec<String>) -> Result<(), String> {
    let input = need_opt(&mut args, "--input")?;
    let dims = parse_dims(&need_opt(&mut args, "--dims")?)?;
    let codec = parse_codec(&need_opt(&mut args, "--codec")?)?;
    let output = need_opt(&mut args, "--output")?;
    let rel = take_opt(&mut args, "--rel")?;
    let abs = take_opt(&mut args, "--abs")?;
    let bound = match (rel, abs) {
        (Some(e), None) => ErrorBound::rel(parse_f64(&e, "relative bound")?),
        (None, Some(e)) => ErrorBound::abs(parse_f64(&e, "absolute bound")?),
        _ => return Err(format!("exactly one of --rel / --abs is required\n{USAGE}")),
    };
    finish_args(args)?;
    let field = read_field_or_stdin(&input, dims)?;
    let raw_bytes = field.len() * 4;
    let response = remote_request(
        client,
        &wire::Request::Compress {
            codec,
            bound,
            field,
        },
    )?;
    let wire::Response::CompressOk { stream } = response else {
        return Err("unexpected response to compress".into());
    };
    let piped_out = output == "-";
    write_bytes_or_stdout(&output, &stream)?;
    status!(
        piped_out,
        "remote {}: {input} -> {output}, {raw_bytes} -> {} bytes (ratio {:.2}:1)",
        codec.name(),
        stream.len(),
        raw_bytes as f64 / stream.len().max(1) as f64,
    );
    Ok(())
}

fn remote_decompress(client: &mut RemoteClient, mut args: Vec<String>) -> Result<(), String> {
    let input = need_opt(&mut args, "--input")?;
    let output = need_opt(&mut args, "--output")?;
    finish_args(args)?;
    let bytes = read_bytes_or_stdin(&input)?;
    let compressed = bytes.len();
    let response = remote_request(client, &wire::Request::Decompress { bytes })?;
    let wire::Response::DecompressOk { field } = response else {
        return Err("unexpected response to decompress".into());
    };
    let piped_out = output == "-";
    write_bytes_or_stdout(&output, &field.to_le_bytes())?;
    status!(
        piped_out,
        "remote decompress: {input} -> {output}, dims {}, {compressed} -> {} bytes",
        field.dims(),
        field.len() * 4,
    );
    Ok(())
}

fn remote_train(client: &mut RemoteClient, mut args: Vec<String>) -> Result<(), String> {
    let input = need_opt(&mut args, "--input")?;
    let dims = parse_dims(&need_opt(&mut args, "--dims")?)?;
    let codec = match take_opt(&mut args, "--codec")? {
        Some(s) => parse_codec(&s)?,
        None => CodecId::AeSz,
    };
    let output = need_opt(&mut args, "--output")?;
    // Zero means "codec default" on the wire, so absent knobs encode as 0.
    let knobs = wire::TrainKnobs {
        epochs: take_knob_u32(&mut args, "--epochs")?,
        block: take_knob_u32(&mut args, "--block")?,
        latent: take_knob_u32(&mut args, "--latent")?,
        max_blocks: take_knob_u32(&mut args, "--max-blocks")?,
        seed: match take_opt(&mut args, "--train-seed")? {
            Some(s) => parse_usize(&s, "train-seed")? as u64,
            None => 2021,
        },
    };
    finish_args(args)?;
    let field = read_field_or_stdin(&input, dims)?;
    let response = remote_request(
        client,
        &wire::Request::Train {
            codec,
            knobs,
            field,
        },
    )?;
    let wire::Response::TrainOk { id, frame } = response else {
        return Err("unexpected response to train".into());
    };
    let piped_out = output == "-";
    write_bytes_or_stdout(&output, &frame)?;
    status!(
        piped_out,
        "remote train: {} model {id} ({} bytes) -> {output}; now resident on the server",
        codec.name(),
        frame.len(),
    );
    Ok(())
}

/// Parse an optional `u32` training knob; absent means 0 ("codec default").
fn take_knob_u32(args: &mut Vec<String>, name: &str) -> Result<u32, String> {
    match take_opt(args, name)? {
        Some(s) => {
            let v = parse_usize(&s, name.trim_start_matches('-'))?;
            u32::try_from(v).map_err(|_| format!("{name} {v} is out of range"))
        }
        None => Ok(0),
    }
}

fn print_stats(addr: &str, s: &wire::ServerStats) {
    emit!("{addr}: uptime {:.1} s", s.uptime_ms as f64 / 1e3);
    emit!(
        "requests {} (ok {}, errors {}, busy rejections {})",
        s.requests,
        s.ok,
        s.errors,
        s.busy_rejections
    );
    emit!("bytes {} in, {} out", s.bytes_in, s.bytes_out);
    emit!(
        "connections {} active / {} total, queue depth {}",
        s.connections_active,
        s.connections_total,
        s.queue_depth
    );
    emit!(
        "models {} resident, {} cache hits, {} store resolutions",
        s.models_resident,
        s.model_cache_hits,
        s.model_resolutions
    );
    for id in CodecId::all() {
        let slot = wire::ServerStats::codec_slot(id);
        let c = s.compress_by_codec.get(slot).copied().unwrap_or(0);
        let d = s.decompress_by_codec.get(slot).copied().unwrap_or(0);
        if c > 0 || d > 0 {
            emit!("  {:<9} {c} compressed, {d} decompressed", id.name());
        }
    }
}

/// Read a raw `f32` field from a file or stdin (`-`).
fn read_field_or_stdin(path: &str, dims: Dims) -> Result<Field, String> {
    if path != "-" {
        return read_field(path, dims);
    }
    let bytes = read_bytes_or_stdin(path)?;
    let expected = dims.len() * 4;
    if bytes.len() != expected {
        return Err(format!(
            "stdin held {} bytes but dims {dims} need {expected} (f32)",
            bytes.len()
        ));
    }
    Field::from_le_bytes(dims, &bytes).map_err(|_| "stdin: byte/dims mismatch".to_string())
}

fn read_bytes_or_stdin(path: &str) -> Result<Vec<u8>, String> {
    if path == "-" {
        let mut bytes = Vec::new();
        std::io::stdin()
            .lock()
            .read_to_end(&mut bytes)
            .map_err(|e| format!("read stdin: {e}"))?;
        Ok(bytes)
    } else {
        std::fs::read(path).map_err(|e| format!("read {path}: {e}"))
    }
}

fn write_bytes_or_stdout(path: &str, bytes: &[u8]) -> Result<(), String> {
    if path == "-" {
        let mut out = std::io::stdout().lock();
        out.write_all(bytes)
            .and_then(|()| out.flush())
            .map_err(|e| format!("write stdout: {e}"))
    } else {
        std::fs::write(path, bytes).map_err(|e| format!("write {path}: {e}"))
    }
}
