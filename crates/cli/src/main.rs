//! `aesz` — compress/decompress raw little-endian `f32` fields through the
//! chunked streaming archive layer.
//!
//! The tool drives [`aesz_repro::archive`] with *file-backed* chunk sources
//! and sinks: chunks are read and written with seeks, so a dataset is never
//! materialized in memory — peak resident payload is one window of chunks,
//! whatever the file size.
//!
//! ```text
//! aesz gen        --app cesm --dims 512x512 --seed 7 --output field.f32
//! aesz compress   --input field.f32 --dims 512x512 --codec sz2 --rel 1e-3 \
//!                 --chunk 64 --window 8 --output field.aesa [--verify]
//! aesz decompress --input field.aesa --output recon.f32 [--window 8]
//! aesz info       --input field.aesa
//! aesz compare    --a x.f32 --b y.f32 --dims 512x512 [--max-abs 1e-3]
//! ```

use std::fs::{File, OpenOptions};
use std::io::{BufWriter, Read, Seek, SeekFrom, Write};
use std::time::Instant;

use aesz_repro::archive::{write_archive, ArchiveOptions, ArchiveReader, ChunkSink, ChunkSource};
use aesz_repro::datagen::Application;
use aesz_repro::tensor::BlockSpec;
use aesz_repro::{CodecId, Dims, ErrorBound, Field, Registry};

const USAGE: &str = "usage:
  aesz gen        --app NAME --dims DIMS --output FILE [--seed N]
  aesz compress   --input FILE --dims DIMS --codec NAME --rel E | --abs E
                  --output FILE [--chunk N] [--window N] [--verify]
  aesz decompress --input FILE --output FILE [--window N]
  aesz info       --input FILE
  aesz compare    --a FILE --b FILE --dims DIMS [--max-abs E]

DIMS is slow-to-fast extents, e.g. 1800x3600 or 256x256x256.
codecs: aesz, sz2, zfp, szauto, szinterp, aea, aeb (aea/aeb need training
and are rejected by the default untrained registry).
apps for gen: cesm, cesm-freqsh, exafel, nyx, nyx-temp, nyx-dm,
hurricane-u, hurricane-qvapor, rtm.";

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match run(args) {
        Ok(()) => {}
        Err(e) => {
            eprintln!("aesz: {e}");
            std::process::exit(1);
        }
    }
}

fn run(mut args: Vec<String>) -> Result<(), String> {
    if args.is_empty() {
        return Err(format!("missing subcommand\n{USAGE}"));
    }
    let cmd = args.remove(0);
    match cmd.as_str() {
        "gen" => cmd_gen(args),
        "compress" => cmd_compress(args),
        "decompress" => cmd_decompress(args),
        "info" => cmd_info(args),
        "compare" => cmd_compare(args),
        "-h" | "--help" | "help" => {
            println!("{USAGE}");
            Ok(())
        }
        other => Err(format!("unknown subcommand `{other}`\n{USAGE}")),
    }
}

// ---------------------------------------------------------------- arguments

fn take_opt(args: &mut Vec<String>, name: &str) -> Result<Option<String>, String> {
    if let Some(pos) = args.iter().position(|a| a == name) {
        if pos + 1 >= args.len() {
            return Err(format!("{name} needs a value"));
        }
        let value = args.remove(pos + 1);
        args.remove(pos);
        Ok(Some(value))
    } else {
        Ok(None)
    }
}

fn need_opt(args: &mut Vec<String>, name: &str) -> Result<String, String> {
    take_opt(args, name)?.ok_or(format!("{name} is required\n{USAGE}"))
}

fn take_flag(args: &mut Vec<String>, name: &str) -> bool {
    if let Some(pos) = args.iter().position(|a| a == name) {
        args.remove(pos);
        true
    } else {
        false
    }
}

fn finish_args(args: Vec<String>) -> Result<(), String> {
    if args.is_empty() {
        Ok(())
    } else {
        Err(format!("unrecognised arguments: {}", args.join(" ")))
    }
}

fn parse_dims(s: &str) -> Result<Dims, String> {
    let parts: Result<Vec<usize>, _> = s.split('x').map(|p| p.parse::<usize>()).collect();
    let parts = parts.map_err(|_| format!("bad dims `{s}` (expected e.g. 256x256)"))?;
    if parts.contains(&0) {
        return Err(format!("bad dims `{s}`: zero extent"));
    }
    match *parts.as_slice() {
        [n] => Ok(Dims::d1(n)),
        [ny, nx] => Ok(Dims::d2(ny, nx)),
        [nz, ny, nx] => Ok(Dims::d3(nz, ny, nx)),
        _ => Err(format!("bad dims `{s}`: rank must be 1..=3")),
    }
}

fn parse_codec(s: &str) -> Result<CodecId, String> {
    match s.to_ascii_lowercase().as_str() {
        "aesz" | "ae-sz" => Ok(CodecId::AeSz),
        "sz2" | "sz2.1" => Ok(CodecId::Sz2),
        "zfp" => Ok(CodecId::Zfp),
        "szauto" => Ok(CodecId::SzAuto),
        "szinterp" => Ok(CodecId::SzInterp),
        "aea" | "ae-a" => Ok(CodecId::AeA),
        "aeb" | "ae-b" => Ok(CodecId::AeB),
        other => Err(format!("unknown codec `{other}`")),
    }
}

fn parse_app(s: &str) -> Result<Application, String> {
    match s.to_ascii_lowercase().as_str() {
        "cesm" | "cesm-cldhgh" => Ok(Application::CesmCldhgh),
        "cesm-freqsh" => Ok(Application::CesmFreqsh),
        "exafel" => Ok(Application::Exafel),
        "nyx" | "nyx-baryon" => Ok(Application::NyxBaryonDensity),
        "nyx-temp" => Ok(Application::NyxTemperature),
        "nyx-dm" => Ok(Application::NyxDarkMatterDensity),
        "hurricane-u" => Ok(Application::HurricaneU),
        "hurricane-qvapor" => Ok(Application::HurricaneQvapor),
        "rtm" => Ok(Application::Rtm),
        other => Err(format!("unknown application `{other}`")),
    }
}

fn parse_f64(s: &str, what: &str) -> Result<f64, String> {
    s.parse::<f64>().map_err(|_| format!("bad {what} `{s}`"))
}

fn parse_usize(s: &str, what: &str) -> Result<usize, String> {
    s.parse::<usize>().map_err(|_| format!("bad {what} `{s}`"))
}

// ------------------------------------------------------------- file chunk IO

/// Fill `buf` from `file`, looping over short reads, and return how many
/// bytes landed (< `buf.len()` only at end of file). Plain `read()` may
/// return counts that are not multiples of 4, which would shear every
/// following `f32` off its byte boundary.
fn read_full(file: &mut File, buf: &mut [u8]) -> std::io::Result<usize> {
    let mut filled = 0;
    while filled < buf.len() {
        let n = file.read(&mut buf[filled..])?;
        if n == 0 {
            break;
        }
        filled += n;
    }
    Ok(filled)
}

/// Enumerate the contiguous runs (element offset + length) a chunk occupies
/// inside a row-major file, in row-major order over the chunk.
fn for_each_run(
    dims: Dims,
    spec: &BlockSpec,
    mut f: impl FnMut(u64, usize) -> Result<(), String>,
) -> Result<(), String> {
    match dims {
        Dims::D1 { .. } => f(spec.origin[0] as u64, spec.size[0]),
        Dims::D2 { nx, .. } => {
            for y in 0..spec.size[0] {
                let at = (spec.origin[0] + y) * nx + spec.origin[1];
                f(at as u64, spec.size[1])?;
            }
            Ok(())
        }
        Dims::D3 { ny, nx, .. } => {
            for z in 0..spec.size[0] {
                for y in 0..spec.size[1] {
                    let at =
                        ((spec.origin[0] + z) * ny + (spec.origin[1] + y)) * nx + spec.origin[2];
                    f(at as u64, spec.size[2])?;
                }
            }
            Ok(())
        }
    }
}

/// [`ChunkSource`] over a raw little-endian `f32` file, read with seeks so
/// only one chunk is resident at a time.
struct RawFileSource {
    file: File,
    dims: Dims,
}

impl RawFileSource {
    fn open(path: &str, dims: Dims) -> Result<Self, String> {
        let file = File::open(path).map_err(|e| format!("open {path}: {e}"))?;
        let len = file
            .metadata()
            .map_err(|e| format!("stat {path}: {e}"))?
            .len();
        let expected = dims.len() as u64 * 4;
        if len != expected {
            return Err(format!(
                "{path} holds {len} bytes but dims {dims} need {expected} (f32)"
            ));
        }
        Ok(RawFileSource { file, dims })
    }
}

impl ChunkSource for RawFileSource {
    fn dims(&self) -> Dims {
        self.dims
    }

    fn min_max(&mut self) -> std::io::Result<(f32, f32)> {
        self.file.seek(SeekFrom::Start(0))?;
        let mut buf = vec![0u8; 1 << 16];
        let (mut lo, mut hi) = (f32::INFINITY, f32::NEG_INFINITY);
        loop {
            // The file length is a validated multiple of 4, so a full read
            // (and the final partial one) always lands on f32 boundaries.
            let n = read_full(&mut self.file, &mut buf)?;
            if n == 0 {
                break;
            }
            for v in buf[..n].chunks_exact(4) {
                let x = f32::from_le_bytes([v[0], v[1], v[2], v[3]]);
                if x.is_nan() {
                    continue;
                }
                lo = lo.min(x);
                hi = hi.max(x);
            }
        }
        if lo > hi {
            Ok((0.0, 0.0))
        } else {
            Ok((lo, hi))
        }
    }

    fn read_chunk(&mut self, spec: &BlockSpec) -> std::io::Result<Field> {
        let mut values = Vec::with_capacity(spec.valid_len());
        let mut row = Vec::new();
        let file = &mut self.file;
        for_each_run(self.dims, spec, |offset, len| {
            file.seek(SeekFrom::Start(offset * 4))
                .map_err(|e| e.to_string())?;
            row.resize(len * 4, 0);
            file.read_exact(&mut row).map_err(|e| e.to_string())?;
            for v in row.chunks_exact(4) {
                values.push(f32::from_le_bytes([v[0], v[1], v[2], v[3]]));
            }
            Ok(())
        })
        .map_err(std::io::Error::other)?;
        Ok(
            Field::from_vec(aesz_repro::archive::chunk_dims(spec), values)
                .expect("run lengths sum to the chunk size"),
        )
    }
}

/// [`ChunkSink`] writing decoded chunks into a raw `f32` file with seeks.
struct RawFileSink {
    file: File,
    dims: Dims,
}

impl RawFileSink {
    fn create(path: &str, dims: Dims) -> Result<Self, String> {
        let file = OpenOptions::new()
            .create(true)
            .write(true)
            .truncate(true)
            .open(path)
            .map_err(|e| format!("create {path}: {e}"))?;
        file.set_len(dims.len() as u64 * 4)
            .map_err(|e| format!("size {path}: {e}"))?;
        Ok(RawFileSink { file, dims })
    }
}

impl ChunkSink for RawFileSink {
    fn write_chunk(&mut self, spec: &BlockSpec, chunk: &Field) -> std::io::Result<()> {
        let values = chunk.as_slice();
        let mut taken = 0usize;
        let file = &mut self.file;
        for_each_run(self.dims, spec, |offset, len| {
            file.seek(SeekFrom::Start(offset * 4))
                .map_err(|e| e.to_string())?;
            let mut row = Vec::with_capacity(len * 4);
            for &v in &values[taken..taken + len] {
                row.extend_from_slice(&v.to_le_bytes());
            }
            taken += len;
            file.write_all(&row).map_err(|e| e.to_string())?;
            Ok(())
        })
        .map_err(std::io::Error::other)
    }
}

/// [`ChunkSink`] that compares decoded chunks against the original source
/// instead of storing them — the streaming PSNR/max-error accumulator of
/// `compress --verify`.
struct VerifySink {
    original: RawFileSource,
    sum_sq: f64,
    max_abs: f64,
    count: u64,
}

impl ChunkSink for VerifySink {
    fn write_chunk(&mut self, spec: &BlockSpec, chunk: &Field) -> std::io::Result<()> {
        let reference = self.original.read_chunk(spec)?;
        for (&a, &b) in reference.as_slice().iter().zip(chunk.as_slice()) {
            let d = (a as f64 - b as f64).abs();
            self.sum_sq += d * d;
            self.max_abs = self.max_abs.max(d);
            self.count += 1;
        }
        Ok(())
    }
}

fn psnr(range: f64, sum_sq: f64, count: u64) -> f64 {
    if count == 0 || sum_sq == 0.0 {
        return f64::INFINITY;
    }
    let mse = sum_sq / count as f64;
    20.0 * range.log10() - 10.0 * mse.log10()
}

fn mb(bytes: usize) -> f64 {
    bytes as f64 / 1e6
}

// ------------------------------------------------------------- subcommands

fn cmd_gen(mut args: Vec<String>) -> Result<(), String> {
    let app = parse_app(&need_opt(&mut args, "--app")?)?;
    let dims = parse_dims(&need_opt(&mut args, "--dims")?)?;
    let output = need_opt(&mut args, "--output")?;
    let seed = match take_opt(&mut args, "--seed")? {
        Some(s) => parse_usize(&s, "seed")? as u64,
        None => 0,
    };
    finish_args(args)?;
    let field = app.generate(dims, seed);
    let mut out =
        BufWriter::new(File::create(&output).map_err(|e| format!("create {output}: {e}"))?);
    out.write_all(&field.to_le_bytes())
        .and_then(|()| out.flush())
        .map_err(|e| format!("write {output}: {e}"))?;
    let (lo, hi) = field.min_max();
    println!(
        "wrote {} ({} elements, {:.1} MB) range [{lo}, {hi}]",
        output,
        field.len(),
        mb(field.len() * 4)
    );
    Ok(())
}

fn cmd_compress(mut args: Vec<String>) -> Result<(), String> {
    let input = need_opt(&mut args, "--input")?;
    let dims = parse_dims(&need_opt(&mut args, "--dims")?)?;
    let codec = parse_codec(&need_opt(&mut args, "--codec")?)?;
    let output = need_opt(&mut args, "--output")?;
    let rel = take_opt(&mut args, "--rel")?;
    let abs = take_opt(&mut args, "--abs")?;
    let bound = match (rel, abs) {
        (Some(e), None) => ErrorBound::rel(parse_f64(&e, "relative bound")?),
        (None, Some(e)) => ErrorBound::abs(parse_f64(&e, "absolute bound")?),
        _ => return Err(format!("exactly one of --rel / --abs is required\n{USAGE}")),
    };
    let opts = ArchiveOptions {
        chunk: match take_opt(&mut args, "--chunk")? {
            Some(s) => parse_usize(&s, "chunk")?,
            None => ArchiveOptions::default().chunk,
        },
        window: match take_opt(&mut args, "--window")? {
            Some(s) => parse_usize(&s, "window")?,
            None => ArchiveOptions::default().window,
        },
    };
    let verify = take_flag(&mut args, "--verify");
    finish_args(args)?;

    let registry = Registry::with_defaults();
    let mut source = RawFileSource::open(&input, dims)?;
    let mut sink = File::create(&output).map_err(|e| format!("create {output}: {e}"))?;
    let t0 = Instant::now();
    let stats = write_archive(
        &mut source,
        bound,
        &opts,
        &mut |_spec: &BlockSpec| {
            registry
                .fork(codec)
                .ok_or(aesz_repro::CompressError::UnsupportedField(
                    "codec not registered",
                ))
        },
        &mut sink,
    )
    .map_err(|e| e.to_string())?;
    sink.flush().map_err(|e| e.to_string())?;
    let secs = t0.elapsed().as_secs_f64();

    println!(
        "{} -> {}: {} chunks (chunk {}, window {}), {} -> {} bytes",
        input, output, stats.chunks, opts.chunk, opts.window, stats.raw_bytes, stats.archive_bytes
    );
    println!(
        "codec {}, bound {}, ratio {:.2}:1, {:.1} MB/s, peak window payload {:.2} MB",
        codec.name(),
        bound,
        stats.raw_bytes as f64 / stats.archive_bytes as f64,
        mb(stats.raw_bytes) / secs,
        mb(stats.peak_window_raw_bytes),
    );

    if verify {
        let bytes = std::fs::read(&output).map_err(|e| format!("read {output}: {e}"))?;
        let reader = ArchiveReader::open(&bytes).map_err(|e| e.to_string())?;
        let mut original = RawFileSource::open(&input, dims)?;
        let (lo, hi) = original.min_max().map_err(|e| e.to_string())?;
        let mut check = VerifySink {
            original,
            sum_sq: 0.0,
            max_abs: 0.0,
            count: 0,
        };
        reader
            .decode_into(
                opts.window,
                &mut |id| {
                    registry
                        .fork(id)
                        .ok_or(aesz_repro::DecompressError::UnknownCodec(id as u8))
                },
                &mut check,
            )
            .map_err(|e| e.to_string())?;
        let resolved = bound.absolute(lo, hi);
        let ok = check.max_abs <= resolved * 1.0001;
        println!(
            "verify: PSNR {:.2} dB, max abs err {:.3e} (bound {:.3e}) {}",
            psnr((hi - lo) as f64, check.sum_sq, check.count),
            check.max_abs,
            resolved,
            if ok { "OK" } else { "VIOLATED" }
        );
        if !ok {
            return Err("error bound violated".into());
        }
    }
    Ok(())
}

fn cmd_decompress(mut args: Vec<String>) -> Result<(), String> {
    let input = need_opt(&mut args, "--input")?;
    let output = need_opt(&mut args, "--output")?;
    let window = match take_opt(&mut args, "--window")? {
        Some(s) => parse_usize(&s, "window")?,
        None => ArchiveOptions::default().window,
    };
    finish_args(args)?;

    let registry = Registry::with_defaults();
    let bytes = std::fs::read(&input).map_err(|e| format!("read {input}: {e}"))?;
    let t0 = Instant::now();
    let reader = ArchiveReader::open(&bytes).map_err(|e| e.to_string())?;
    let dims = reader.dims();
    let mut sink = RawFileSink::create(&output, dims)?;
    reader
        .decode_into(
            window,
            &mut |id| {
                registry
                    .fork(id)
                    .ok_or(aesz_repro::DecompressError::UnknownCodec(id as u8))
            },
            &mut sink,
        )
        .map_err(|e| e.to_string())?;
    sink.file.flush().map_err(|e| e.to_string())?;
    let secs = t0.elapsed().as_secs_f64();
    let raw = dims.len() * 4;
    println!(
        "{} -> {}: dims {}, {} chunks, {} -> {} bytes, {:.1} MB/s",
        input,
        output,
        dims,
        reader.chunk_count(),
        bytes.len(),
        raw,
        mb(raw) / secs,
    );
    Ok(())
}

fn cmd_info(mut args: Vec<String>) -> Result<(), String> {
    let input = need_opt(&mut args, "--input")?;
    finish_args(args)?;
    let bytes = std::fs::read(&input).map_err(|e| format!("read {input}: {e}"))?;
    let reader = ArchiveReader::open(&bytes).map_err(|e| e.to_string())?;
    let header = reader.header();
    println!(
        "{input}: AESA v1, f32, dims {} ({} elements), chunk {} -> {} chunks",
        header.dims,
        header.dims.len(),
        header.chunk,
        reader.chunk_count()
    );
    println!(
        "archive {} bytes (ratio {:.2}:1), header+index {} bytes",
        bytes.len(),
        (header.dims.len() * 4) as f64 / bytes.len() as f64,
        header.data_start(),
    );
    for id in CodecId::all() {
        let (count, frame_bytes) = reader
            .entries()
            .iter()
            .filter(|e| e.codec == id)
            .fold((0usize, 0u64), |(n, b), e| (n + 1, b + e.len));
        if count > 0 {
            println!("  {:<9} {count:>6} chunks, {frame_bytes} bytes", id.name());
        }
    }
    Ok(())
}

fn cmd_compare(mut args: Vec<String>) -> Result<(), String> {
    let a = need_opt(&mut args, "--a")?;
    let b = need_opt(&mut args, "--b")?;
    let dims = parse_dims(&need_opt(&mut args, "--dims")?)?;
    let max_abs = match take_opt(&mut args, "--max-abs")? {
        Some(s) => Some(parse_f64(&s, "max-abs")?),
        None => None,
    };
    finish_args(args)?;

    let mut fa = RawFileSource::open(&a, dims)?;
    let mut fb = RawFileSource::open(&b, dims)?;
    let (lo, hi) = fa.min_max().map_err(|e| e.to_string())?;
    fa.file
        .seek(SeekFrom::Start(0))
        .map_err(|e| e.to_string())?;
    let (mut sum_sq, mut worst, mut count) = (0.0f64, 0.0f64, 0u64);
    let mut buf_a = vec![0u8; 1 << 16];
    let mut buf_b = vec![0u8; 1 << 16];
    loop {
        let n = read_full(&mut fa.file, &mut buf_a).map_err(|e| e.to_string())?;
        if n == 0 {
            break;
        }
        fb.file
            .read_exact(&mut buf_b[..n])
            .map_err(|e| e.to_string())?;
        for (va, vb) in buf_a[..n].chunks_exact(4).zip(buf_b[..n].chunks_exact(4)) {
            let x = f32::from_le_bytes([va[0], va[1], va[2], va[3]]) as f64;
            let y = f32::from_le_bytes([vb[0], vb[1], vb[2], vb[3]]) as f64;
            let d = (x - y).abs();
            sum_sq += d * d;
            worst = worst.max(d);
            count += 1;
        }
    }
    println!(
        "{a} vs {b}: PSNR {:.2} dB, max abs err {:.3e}",
        psnr((hi - lo) as f64, sum_sq, count),
        worst
    );
    if let Some(cap) = max_abs {
        if worst > cap {
            return Err(format!(
                "max abs err {worst:.3e} exceeds --max-abs {cap:.3e}"
            ));
        }
        println!("within --max-abs {cap:.3e} OK");
    }
    Ok(())
}
