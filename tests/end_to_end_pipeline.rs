//! Cross-crate integration test of the full AE-SZ lifecycle: generate data,
//! train, serialize the model, reload it, compress, write the stream to disk,
//! read it back, decompress, and check both the bound and the ratio.

use aesz_repro::core::training::TrainingOptions;
use aesz_repro::core::{train_swae_for_field, AeSz, AeSzConfig};
use aesz_repro::datagen::{load_f32_file, save_f32_file, Application};
use aesz_repro::metrics::{verify_error_bound, ErrorBound, ErrorStats};
use aesz_repro::nn::serialize::{load_model, save_model};
use aesz_repro::tensor::Dims;

#[test]
fn full_pipeline_from_training_to_decompressed_file() {
    let app = Application::CesmCldhgh;
    let dims = Dims::d2(64, 64);
    let train_field = app.generate(dims, 0);
    let test_field = app.generate(dims, 51);

    // Persist the "SDRBench" input the way a user would receive it.
    let dir = std::env::temp_dir().join("aesz_e2e_test");
    std::fs::create_dir_all(&dir).unwrap();
    let input_path = dir.join("cldhgh_snapshot51.f32");
    save_f32_file(&input_path, &test_field).unwrap();
    let loaded_input = load_f32_file(&input_path, dims).unwrap();
    assert_eq!(loaded_input, test_field);

    // Train, serialize, reload.
    let opts = TrainingOptions {
        block_size: 16,
        latent_dim: 8,
        channels: vec![4, 8],
        epochs: 2,
        max_blocks: 64,
        ..TrainingOptions::default_for_rank(2)
    };
    let model = train_swae_for_field(std::slice::from_ref(&train_field), &opts);
    let model = load_model(&save_model(&model)).expect("model roundtrip");

    // Compress, persist the stream, reload, decompress.
    let mut aesz = AeSz::new(
        model,
        AeSzConfig {
            block_size: 16,
            ..AeSzConfig::default_2d()
        },
    );
    let rel_eb = 1e-3;
    let bytes = aesz
        .compress_with_report(&loaded_input, ErrorBound::rel(rel_eb))
        .expect("valid input")
        .0;
    let stream_path = dir.join("cldhgh_snapshot51.aesz");
    std::fs::write(&stream_path, &bytes).unwrap();
    let reread = std::fs::read(&stream_path).unwrap();
    let recon = aesz.try_decompress(&reread).expect("own stream decodes");

    let abs = rel_eb * test_field.value_range() as f64;
    verify_error_bound(test_field.as_slice(), recon.as_slice(), abs, abs * 1e-3).unwrap();
    let stats = ErrorStats::compute(test_field.as_slice(), recon.as_slice());
    assert!(
        stats.psnr > 40.0,
        "PSNR {:.1} unexpectedly low at eb 1e-3",
        stats.psnr
    );
    assert!(
        bytes.len() * 4 < test_field.len() * 4,
        "compression ratio below 4x: {} bytes",
        bytes.len()
    );
    std::fs::remove_dir_all(&dir).ok();
}
