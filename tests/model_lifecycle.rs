//! Cross-process model lifecycle: compress with a trained model in one
//! registry, decode in a **fresh** `Registry::with_defaults()` that never
//! saw the trainer — given only the archive bytes (embedded model), only a
//! sidecar model file, or nothing (the dedicated missing-model failure).
//!
//! "Fresh registry" is the in-process stand-in for a separate process: it
//! holds only what a new process would (default untrained codecs), so
//! everything the decode needs must travel through bytes on the wire or on
//! disk. The CI `archive-smoke` job runs the same cycle across real
//! processes through the `aesz` CLI.

use aesz_repro::archive::{
    compress_field_embedding, compress_field_with, decompress, decompress_chunk, ArchiveOptions,
    ArchiveReader,
};
use aesz_repro::baselines::AeA;
use aesz_repro::core::training::{train_swae_for_field, TrainingOptions};
use aesz_repro::core::AeSz;
use aesz_repro::metrics::archive::ArchiveReadError;
use aesz_repro::model_store::ModelStore;
use aesz_repro::{
    CodecId, Compressor, DecompressError, ErrorBound, Field, PredictorPolicy, Registry,
};

mod common;

/// A trained 2D AE-SZ forced to AE-predict every block, so its streams are
/// guaranteed to carry latent payloads (and therefore to need the model).
fn trained_aesz(field: &Field) -> AeSz {
    let opts = TrainingOptions {
        block_size: 16,
        latent_dim: 8,
        channels: vec![4, 8],
        epochs: 2,
        max_blocks: 48,
        seed: 31,
        ..TrainingOptions::default_for_rank(2)
    };
    let mut aesz = AeSz::from_model(train_swae_for_field(std::slice::from_ref(field), &opts));
    aesz.set_policy(PredictorPolicy::AeOnly);
    aesz
}

fn trainer_registry(field: &Field) -> (Registry, AeSz) {
    let aesz = trained_aesz(field);
    let mut registry = Registry::with_defaults();
    registry.register(Box::new(aesz.clone()));
    (registry, aesz)
}

const OPTS: ArchiveOptions = ArchiveOptions::new().chunk(16).window(3);

#[test]
fn embedded_model_archive_decodes_in_a_fresh_registry_bit_identically() {
    let field = common::field_2d();
    let (registry, _) = trainer_registry(&field);
    let bound = ErrorBound::rel(1e-2);

    let (bytes, stats) =
        compress_field_embedding(&registry, &field, bound, &OPTS, |_| CodecId::AeSz)
            .expect("embedding write");
    assert!(stats.model_bytes > 0, "the model must actually be embedded");

    // The trainer's own decode is the reference.
    let (reference, _) = decompress(&registry, &bytes, 3).expect("trainer decode");

    // A fresh registry that never saw the trainer decodes the archive from
    // its bytes alone, bit-identically.
    let fresh = Registry::with_defaults();
    let (recon, codecs) = decompress(&fresh, &bytes, 3).expect("fresh decode via embedded model");
    assert!(codecs.iter().all(|&c| c == CodecId::AeSz));
    assert_eq!(recon.as_slice(), reference.as_slice());

    // Random access through the fresh registry agrees chunk by chunk.
    let reader = ArchiveReader::open(&bytes).unwrap();
    assert_eq!(reader.models().len(), 1);
    for i in 0..reader.chunk_count() {
        let (spec, chunk) = decompress_chunk(&fresh, &bytes, i).expect("fresh random access");
        assert_eq!(
            chunk.as_slice(),
            reference.read_block_valid(&spec).as_slice(),
            "chunk {i} diverged"
        );
    }

    // The bound holds through the whole lifecycle.
    let abs = bound.resolve(&field);
    for (a, b) in field.as_slice().iter().zip(recon.as_slice()) {
        assert!(((a - b) as f64).abs() <= abs * 1.0001);
    }
}

#[test]
fn sidecar_model_file_decodes_in_a_fresh_registry() {
    let field = common::field_2d();
    let (registry, aesz) = trainer_registry(&field);
    let bound = ErrorBound::rel(1e-2);
    let model = Compressor::embedded_model(&aesz).expect("trained");

    // A *plain* (v1) archive: no embedded model, the model travels as a
    // sidecar file instead.
    let (bytes, stats) = compress_field_with(&registry, &field, bound, &OPTS, |_| CodecId::AeSz)
        .expect("plain write");
    assert_eq!(stats.model_bytes, 0);
    let (reference, _) = decompress(&registry, &bytes, 3).expect("trainer decode");

    let dir = std::env::temp_dir().join(format!("aesz_lifecycle_{}", model.id));
    std::fs::create_dir_all(&dir).unwrap();
    ModelStore::save_sidecar(&dir, &model).unwrap();

    // Fresh registry + sidecar directory → decodes bit-identically.
    let mut fresh = Registry::with_defaults();
    fresh.model_store_mut().add_sidecar_dir(&dir);
    let (recon, _) = decompress(&fresh, &bytes, 3).expect("fresh decode via sidecar");
    assert_eq!(recon.as_slice(), reference.as_slice());

    // The single-frame (non-archive) path resolves through the same store:
    // compress one framed stream, decode it with another fresh registry.
    // (A whole-field frame is its own reconstruction — chunked archives
    // compress each chunk independently — so the reference here is the
    // trainer's own decode of that frame.)
    let mut enc = aesz;
    let frame = enc.compress(&field, bound).expect("frame compress");
    let frame_reference = enc.decompress(&frame).expect("trainer frame decode");
    let mut fresh2 = Registry::with_defaults();
    fresh2.model_store_mut().add_sidecar_dir(&dir);
    let (recon2, id) = fresh2
        .decompress_any(&frame)
        .expect("frame decode via sidecar");
    assert_eq!(id, CodecId::AeSz);
    assert_eq!(recon2.as_slice(), frame_reference.as_slice());

    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn unresolvable_models_fail_with_the_dedicated_missing_model_error() {
    let field = common::field_2d();
    let (registry, mut aesz) = trainer_registry(&field);
    let bound = ErrorBound::rel(1e-2);
    let expect_id = aesz.model_id();

    // Frame path: the fresh registry names the missing model — and the
    // failure is MissingModel, not a geometry mismatch (the acceptance
    // criterion), even though the default model's geometry also differs.
    let frame = aesz.compress(&field, bound).unwrap();
    let mut fresh = Registry::with_defaults();
    match fresh.decompress_any(&frame) {
        Err(DecompressError::MissingModel { codec, model_id }) => {
            assert_eq!(codec, CodecId::AeSz);
            assert_eq!(model_id, expect_id);
        }
        other => panic!("expected MissingModel, got {other:?}"),
    }

    // Archive path: a v1 archive with no embedded model and no sidecar
    // fails per-chunk with the same dedicated error.
    let (bytes, _) = compress_field_with(&registry, &field, bound, &OPTS, |_| CodecId::AeSz)
        .expect("plain write");
    let fresh = Registry::with_defaults();
    match decompress(&fresh, &bytes, 3) {
        Err(ArchiveReadError::Chunk { error, .. }) => {
            assert!(
                matches!(
                    error,
                    DecompressError::MissingModel { codec: CodecId::AeSz, model_id }
                        if model_id == expect_id
                ),
                "expected MissingModel, got {error:?}"
            );
        }
        other => panic!("expected a chunk MissingModel failure, got {other:?}"),
    }
}

#[test]
fn two_models_of_one_codec_in_one_archive_both_resolve() {
    use aesz_repro::archive::write_field_archive_embedding;
    use aesz_repro::metrics::CompressError;

    // Two differently trained AE-SZ instances (different seeds → different
    // content-addressed ids) encode alternating chunks of one archive, and
    // both models are embedded. Decoding must dispatch per chunk by the
    // model id stamped in each stream — per-codec resolution would feed half
    // the chunks the wrong model.
    let field = common::field_2d();
    let a = trained_aesz(&field);
    let b = {
        let opts = TrainingOptions {
            block_size: 16,
            latent_dim: 8,
            channels: vec![4, 8],
            epochs: 2,
            max_blocks: 48,
            seed: 77, // different weights, same geometry
            ..TrainingOptions::default_for_rank(2)
        };
        let mut b = AeSz::from_model(train_swae_for_field(std::slice::from_ref(&field), &opts));
        b.set_policy(PredictorPolicy::AeOnly);
        b
    };
    assert_ne!(a.model_id(), b.model_id());

    let bound = ErrorBound::rel(1e-2);
    let (bytes, stats) = write_field_archive_embedding(
        &field,
        bound,
        &OPTS,
        &mut |spec: &aesz_repro::tensor::BlockSpec| {
            let pick: &AeSz = if spec.index.is_multiple_of(2) { &a } else { &b };
            Ok::<_, CompressError>(Box::new(pick.clone()) as Box<dyn Compressor>)
        },
    )
    .expect("two-model embedding write");
    let reader = ArchiveReader::open(&bytes).unwrap();
    assert_eq!(reader.models().len(), 2, "both models embedded once each");
    assert!(stats.model_bytes > 0);

    // A fresh registry decodes the whole archive and every chunk by random
    // access, purely from the archive bytes.
    let fresh = Registry::with_defaults();
    let (recon, _) = decompress(&fresh, &bytes, 3).expect("fresh two-model decode");
    let abs = bound.resolve(&field);
    for (x, y) in field.as_slice().iter().zip(recon.as_slice()) {
        assert!(((x - y) as f64).abs() <= abs * 1.0001);
    }
    for i in 0..reader.chunk_count() {
        let (spec, chunk) = decompress_chunk(&fresh, &bytes, i).expect("random access");
        assert_eq!(
            chunk.as_slice(),
            recon.read_block_valid(&spec).as_slice(),
            "chunk {i} diverged from the full decode"
        );
    }
}

#[test]
fn ae_a_streams_travel_through_sidecars_too() {
    let field = common::field_2d();
    let mut ae = AeA::new(3);
    ae.train(std::slice::from_ref(&field), 1, 4);
    let model = Compressor::embedded_model(&ae).expect("trained");
    let stream = ae.compress(&field, ErrorBound::rel(1e-2)).unwrap();
    let reference = ae.decompress(&stream).unwrap();

    // Fresh registry: dedicated failure first…
    let mut fresh = Registry::with_defaults();
    assert!(matches!(
        fresh.decompress_any(&stream),
        Err(DecompressError::MissingModel {
            codec: CodecId::AeA,
            ..
        })
    ));
    // …then resolution once the model enters the store.
    fresh
        .model_store_mut()
        .insert_frame(&model.frame)
        .expect("valid frame");
    let (recon, id) = fresh.decompress_any(&stream).expect("resolved");
    assert_eq!(id, CodecId::AeA);
    assert_eq!(recon.as_slice(), reference.as_slice());
}
