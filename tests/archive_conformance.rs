//! Conformance suite of the chunked streaming archive layer: every codec
//! must round-trip through the archive path across ranks, awkward chunk
//! grids and window sizes; random-access chunk decode must match the full
//! decode byte-for-byte; and corrupted archives — truncated anywhere,
//! index offsets flipped, chunk counts lied about — must produce an `Err`,
//! never a panic and never an input-independent allocation.

use aesz_repro::archive::{
    compress_field, compress_field_with, decompress, decompress_chunk, ArchiveOptions,
    ArchiveReader,
};
use aesz_repro::metrics::container::{ArchiveHeader, CHUNK_ENTRY_LEN, FRAME_LEN};
use aesz_repro::metrics::{CodecId, ErrorBound};
use aesz_repro::tensor::BlockSpec;
use aesz_repro::{Dims, Field, Registry};
use proptest::prelude::*;

mod common;
use common::trained_registry;

/// Deterministic smooth-ish field (no datagen dependency, so chunk contents
/// are stable under RNG changes).
fn wavy(dims: Dims) -> Field {
    Field::from_fn(dims, |c| {
        let mut v = 0.35f32;
        for (ax, &x) in c.iter().enumerate() {
            v += ((x as f32) * 0.17 + ax as f32).sin() * 0.5;
        }
        v
    })
}

/// The rank-appropriate test geometries: extents the chunk edge does not
/// divide, a single-chunk case (chunk ≥ every extent), and a many-chunk case.
fn geometries(rank: usize) -> Vec<(Dims, usize)> {
    match rank {
        1 => vec![(Dims::d1(135), 32), (Dims::d1(40), 64), (Dims::d1(96), 8)],
        2 => vec![
            (Dims::d2(44, 38), 16),
            (Dims::d2(30, 19), 7),
            (Dims::d2(24, 24), 64),
        ],
        _ => vec![(Dims::d3(14, 12, 10), 8), (Dims::d3(8, 8, 8), 16)],
    }
}

/// Ranks a codec's archive path is exercised on. AE-B is rank-3-only; the
/// others accept any rank (AE-SZ falls back to Lorenzo off its model rank).
fn ranks(id: CodecId) -> Vec<usize> {
    match id {
        CodecId::AeB => vec![3],
        _ => vec![1, 2, 3],
    }
}

#[test]
fn every_codec_roundtrips_through_the_archive_path() {
    let registry = trained_registry();
    let bound = ErrorBound::rel(1e-2);
    for id in CodecId::all() {
        let bounded = registry.get(id).expect("registered").is_error_bounded();
        for rank in ranks(id) {
            for (dims, chunk) in geometries(rank) {
                let field = wavy(dims);
                let opts = ArchiveOptions::new().chunk(chunk).window(3);
                let (bytes, stats) = compress_field(&registry, &field, bound, &opts, id)
                    .unwrap_or_else(|e| panic!("{id} failed to archive {dims}/{chunk}: {e}"));
                assert_eq!(stats.raw_bytes, field.len() * 4);
                assert!(stats.peak_window_raw_bytes <= stats.raw_bytes);
                let grid_chunks: usize = dims.block_grid(chunk).iter().product();
                assert_eq!(stats.chunks, grid_chunks);

                let (recon, codecs) = decompress(&registry, &bytes, 4)
                    .unwrap_or_else(|e| panic!("{id} failed to read {dims}/{chunk} back: {e}"));
                assert_eq!(recon.dims(), dims);
                assert!(codecs.iter().all(|&c| c == id));
                if bounded {
                    let abs = bound.resolve(&field);
                    for (i, (a, b)) in field.as_slice().iter().zip(recon.as_slice()).enumerate() {
                        assert!(
                            ((a - b) as f64).abs() <= abs * 1.0001,
                            "{id} violated the bound at element {i} of {dims}/{chunk}"
                        );
                    }
                } else {
                    let (lo, hi) = field.min_max();
                    let slack = (hi - lo) * 0.5;
                    assert!(
                        recon
                            .as_slice()
                            .iter()
                            .all(|&v| v.is_finite() && v >= lo - slack && v <= hi + slack),
                        "{id} reconstruction left the data envelope"
                    );
                }

                // Random access: every chunk decoded alone must be
                // byte-identical to its region of the full decode.
                for i in 0..stats.chunks {
                    let (spec, chunk_field) = decompress_chunk(&registry, &bytes, i)
                        .unwrap_or_else(|e| panic!("{id} chunk {i} of {dims}/{chunk}: {e}"));
                    let region = recon.read_block_valid(&spec);
                    assert_eq!(chunk_field.len(), region.len());
                    for (a, b) in chunk_field.as_slice().iter().zip(region.iter()) {
                        assert_eq!(a.to_bits(), b.to_bits(), "{id} chunk {i} diverged");
                    }
                }
            }
        }
    }
}

#[test]
fn window_size_does_not_change_the_archive() {
    let registry = Registry::with_defaults();
    let field = wavy(Dims::d2(40, 28));
    let bound = ErrorBound::rel(1e-3);
    let reference = compress_field(
        &registry,
        &field,
        bound,
        &ArchiveOptions::new().chunk(8).window(1),
        CodecId::Sz2,
    )
    .unwrap()
    .0;
    for window in [2, 5, 100] {
        let bytes = compress_field(
            &registry,
            &field,
            bound,
            &ArchiveOptions::new().chunk(8).window(window),
            CodecId::Sz2,
        )
        .unwrap()
        .0;
        assert_eq!(bytes, reference, "window {window} changed the stream");
        let (recon, _) = decompress(&registry, &bytes, window).unwrap();
        let (ref_recon, _) = decompress(&registry, &reference, 1).unwrap();
        assert_eq!(recon.as_slice(), ref_recon.as_slice());
    }
}

#[test]
fn heterogeneous_archives_dispatch_each_chunk_to_its_codec() {
    let registry = trained_registry();
    let field = wavy(Dims::d2(48, 32));
    let lenses = [
        CodecId::Sz2,
        CodecId::Zfp,
        CodecId::SzInterp,
        CodecId::SzAuto,
        CodecId::AeSz,
    ];
    let bound = ErrorBound::rel(1e-2);
    let opts = ArchiveOptions::new().chunk(16).window(4);
    let (bytes, stats) =
        compress_field_with(&registry, &field, bound, &opts, |spec: &BlockSpec| {
            lenses[spec.index % lenses.len()]
        })
        .expect("mixed archive");
    let reader = ArchiveReader::open(&bytes).expect("open");
    for (i, entry) in reader.entries().iter().enumerate() {
        assert_eq!(entry.codec, lenses[i % lenses.len()]);
    }
    let (recon, codecs) = decompress(&registry, &bytes, 3).expect("mixed decode");
    assert_eq!(codecs.len(), stats.chunks);
    let abs = bound.resolve(&field);
    for (a, b) in field.as_slice().iter().zip(recon.as_slice()) {
        assert!(((a - b) as f64).abs() <= abs * 1.0001);
    }
}

/// A small single-codec archive for the corruption harness.
fn small_archive() -> (Registry, Vec<u8>) {
    let registry = Registry::with_defaults();
    let field = wavy(Dims::d2(20, 14));
    let bytes = compress_field(
        &registry,
        &field,
        ErrorBound::rel(1e-3),
        &ArchiveOptions::new().chunk(8).window(2),
        CodecId::Sz2,
    )
    .unwrap()
    .0;
    (registry, bytes)
}

#[test]
fn truncation_at_every_offset_returns_err_never_panics() {
    let (registry, bytes) = small_archive();
    for len in 0..bytes.len() {
        assert!(
            decompress(&registry, &bytes[..len], 2).is_err(),
            "archive prefix of {len}/{} bytes decoded",
            bytes.len()
        );
    }
    let mut padded = bytes.clone();
    padded.push(0);
    assert!(decompress(&registry, &padded, 2).is_err());
}

#[test]
fn lying_headers_and_flipped_index_offsets_are_rejected() {
    let (registry, bytes) = small_archive();
    let header = ArchiveHeader::read(&bytes).unwrap();
    let base = header.encoded_len();
    let assert_rejected = |evil: Vec<u8>, what: &str| {
        assert!(
            decompress(&registry, &evil, 2).is_err(),
            "corruption `{what}` decoded"
        );
    };

    // Lie about the chunk count (both directions).
    for delta in [1u8, 0xFF] {
        let mut evil = bytes.clone();
        let at = base - 8;
        evil[at] = evil[at].wrapping_add(delta);
        assert_rejected(evil, "chunk count");
    }
    // Zero and inflate the chunk edge (changes the grid → count mismatch).
    for patch in [0u64, 3, u64::MAX] {
        let mut evil = bytes.clone();
        evil[base - 16..base - 8].copy_from_slice(&patch.to_le_bytes());
        assert_rejected(evil, "chunk edge");
    }
    // Zero and explode an extent.
    for patch in [0u64, 1 << 40] {
        let mut evil = bytes.clone();
        evil[8..16].copy_from_slice(&patch.to_le_bytes());
        assert_rejected(evil, "extent");
    }
    // Unknown dtype / rank / reserved flags / version / magic.
    for (at, val) in [(5usize, 2u8), (6, 0), (6, 4), (7, 1), (4, 9), (0, b'X')] {
        let mut evil = bytes.clone();
        evil[at] = val;
        assert_rejected(evil, "header byte");
    }

    let entry = |i: usize| base + i * CHUNK_ENTRY_LEN;
    // Swap the offsets of the first two index entries.
    let mut evil = bytes.clone();
    let (a, b) = (entry(0) + 1, entry(1) + 1);
    for k in 0..8 {
        evil.swap(a + k, b + k);
    }
    assert_rejected(evil, "swapped offsets");
    // Nudge an offset, a length, and a codec id.
    for at in [entry(0) + 1, entry(0) + 9, entry(1) + 1, entry(1) + 9] {
        for delta in [1u8, 0x80] {
            let mut evil = bytes.clone();
            evil[at] = evil[at].wrapping_add(delta);
            assert_rejected(evil, "index field");
        }
    }
    let mut evil = bytes.clone();
    evil[entry(0)] = 0;
    assert_rejected(evil, "codec id 0");
    let mut evil = bytes.clone();
    evil[entry(0)] = 200;
    assert_rejected(evil, "codec id 200");
}

proptest! {
    /// Flipping any single byte of the chunk index, or of any chunk frame's
    /// fixed header, must surface as an `Err` (the index tiling invariant,
    /// the per-frame length check and the codec-id cross-checks leave no
    /// silently-accepted bit). Chunk *payload* bytes are exempt: a payload
    /// flip may decode to different in-bounds values, which is the codec's
    /// own conformance concern.
    #[test]
    fn any_index_or_frame_header_byte_flip_is_rejected(at in 0usize..1000, bit in 0u8..8) {
        let (registry, bytes) = small_archive();
        let header = ArchiveHeader::read(&bytes).unwrap();
        let reader = ArchiveReader::open(&bytes).unwrap();
        let mut protected: Vec<usize> =
            (header.encoded_len()..header.data_start()).collect();
        for entry in reader.entries() {
            protected.extend(entry.offset as usize..entry.offset as usize + FRAME_LEN);
        }
        let at = protected[at % protected.len()];
        let mut evil = bytes.clone();
        evil[at] ^= 1 << bit;
        prop_assert!(
            decompress(&registry, &evil, 2).is_err(),
            "flipping bit {} of byte {} was accepted",
            bit,
            at
        );
    }

    /// Random multi-byte stompings anywhere in the archive must never panic
    /// (errors and — for payload-only damage — decodes are both acceptable).
    #[test]
    fn random_corruption_never_panics(
        at in 0usize..4096,
        len in 1usize..16,
        fill in 0u8..=255,
    ) {
        let (registry, bytes) = small_archive();
        let at = at % bytes.len();
        let end = (at + len).min(bytes.len());
        let mut evil = bytes.clone();
        for b in &mut evil[at..end] {
            *b = fill;
        }
        let _ = decompress(&registry, &evil, 2);
        let _ = decompress_chunk(&registry, &evil, 0);
        prop_assert!(true);
    }
}
