//! Release-mode archive acceptance + throughput measurement.
//!
//! * An 8 MB+ field must flow through the archive path with a chunk window
//!   that keeps the peak resident raw payload far below the whole-field
//!   size, round-trip within the requested bound for every error-bounded
//!   codec (all seven codecs take part, chunk-interleaved; AE-B is fixed
//!   rate and envelope-checked), and serve random-access single-chunk
//!   decodes byte-identical to the full decode.
//! * The chunked-vs-whole-field throughput of the SZ2.1 codec is measured
//!   and written to `BENCH_archive.json` (CI's bench artifact).
//!
//! Timings only mean something under the optimized profile, so the whole
//! suite is ignored in debug builds (CI runs it via `cargo test --release`).

use aesz_repro::archive::{compress_field_with, decompress, decompress_chunk, ArchiveOptions};
use aesz_repro::datagen::Application;
use aesz_repro::metrics::{CodecId, ErrorBound};
use aesz_repro::tensor::BlockSpec;
use aesz_repro::{Dims, Registry};
use std::time::Instant;

mod common;
use common::trained_registry;

#[test]
#[cfg_attr(debug_assertions, ignore = "8 MB acceptance run needs --release")]
fn eight_megabyte_field_through_the_archive_path_all_seven_codecs() {
    let dims = Dims::d3(128, 128, 128);
    let field = Application::NyxBaryonDensity.generate(dims, 3);
    assert!(field.len() * 4 >= 8 * 1024 * 1024, "field must be >= 8 MB");

    let registry = trained_registry();
    let bound = ErrorBound::rel(1e-2);
    let opts = ArchiveOptions::new().chunk(32).window(4);
    let all = CodecId::all();
    let (bytes, stats) = compress_field_with(&registry, &field, bound, &opts, |s: &BlockSpec| {
        all[s.index % all.len()]
    })
    .expect("8 MB archive");

    // Bounded memory: the window held at most 4 chunks of 32³ f32 — a tiny
    // fraction of the 8 MB field.
    assert_eq!(stats.raw_bytes, field.len() * 4);
    assert_eq!(stats.peak_window_raw_bytes, 4 * 32 * 32 * 32 * 4);
    assert!(stats.peak_window_raw_bytes * 16 <= stats.raw_bytes);

    let (recon, codecs) = decompress(&registry, &bytes, 4).expect("8 MB decode");
    assert_eq!(recon.dims(), dims);
    assert_eq!(codecs.len(), stats.chunks);
    assert!(
        CodecId::all().iter().all(|id| codecs.contains(id)),
        "every codec must cover some chunks"
    );

    // Per-element bound on every chunk owned by an error-bounded codec;
    // envelope sanity on AE-B's fixed-rate chunks.
    let abs = bound.resolve(&field);
    let (lo, hi) = field.min_max();
    let slack = (hi - lo) * 0.5;
    for (i, &id) in codecs.iter().enumerate() {
        let spec = BlockSpec::of(dims, opts.chunk_edge(), i);
        let original = field.read_block_valid(&spec);
        let restored = recon.read_block_valid(&spec);
        if registry.get(id).expect("registered").is_error_bounded() {
            for (a, b) in original.iter().zip(restored.iter()) {
                assert!(
                    ((a - b) as f64).abs() <= abs * 1.0001,
                    "{id} violated the bound in chunk {i}"
                );
            }
        } else {
            assert!(restored
                .iter()
                .all(|&v| v.is_finite() && v >= lo - slack && v <= hi + slack));
        }
    }

    // Random access must be byte-identical to the full decode.
    for i in 0..stats.chunks {
        let (spec, chunk) = decompress_chunk(&registry, &bytes, i).expect("chunk decode");
        let region = recon.read_block_valid(&spec);
        for (a, b) in chunk.as_slice().iter().zip(region.iter()) {
            assert_eq!(a.to_bits(), b.to_bits(), "chunk {i} random access diverged");
        }
    }
}

#[test]
#[cfg_attr(debug_assertions, ignore = "throughput measurement needs --release")]
fn chunked_vs_whole_field_throughput_is_recorded() {
    let dims = Dims::d3(128, 128, 128);
    let field = Application::NyxBaryonDensity.generate(dims, 3);
    let raw_bytes = field.len() * 4;
    let bound = ErrorBound::rel(1e-3);
    let registry = Registry::with_defaults();
    let window = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
        .clamp(2, 16);
    let opts = ArchiveOptions::new().chunk(64).window(window);

    // Whole-field single-frame path.
    let mut sz2 = registry.fork(CodecId::Sz2).expect("sz2");
    let t0 = Instant::now();
    let whole = sz2.compress(&field, bound).expect("whole-field compress");
    let whole_c = t0.elapsed().as_secs_f64();
    let t0 = Instant::now();
    let whole_recon = sz2.decompress(&whole).expect("whole-field decompress");
    let whole_d = t0.elapsed().as_secs_f64();
    assert_eq!(whole_recon.dims(), dims);

    // Chunked archive path (same codec on every chunk).
    let t0 = Instant::now();
    let (bytes, stats) = compress_field_with(&registry, &field, bound, &opts, |_| CodecId::Sz2)
        .expect("archive compress");
    let arch_c = t0.elapsed().as_secs_f64();
    let t0 = Instant::now();
    let (arch_recon, _) = decompress(&registry, &bytes, window).expect("archive decompress");
    let arch_d = t0.elapsed().as_secs_f64();
    assert_eq!(arch_recon.dims(), dims);

    let mbps = |secs: f64| raw_bytes as f64 / 1e6 / secs;
    let json = format!(
        "{{\n  \"field\": \"nyx-baryon {dims}\",\n  \"field_bytes\": {raw_bytes},\n  \
         \"bound\": \"{bound}\",\n  \"codec\": \"SZ2.1\",\n  \"whole_field\": {{\n    \
         \"compress_s\": {whole_c:.4}, \"decompress_s\": {whole_d:.4},\n    \
         \"compress_mbps\": {:.2}, \"decompress_mbps\": {:.2},\n    \"bytes\": {}\n  }},\n  \
         \"archive\": {{\n    \"chunk\": {}, \"window\": {window},\n    \
         \"compress_s\": {arch_c:.4}, \"decompress_s\": {arch_d:.4},\n    \
         \"compress_mbps\": {:.2}, \"decompress_mbps\": {:.2},\n    \"bytes\": {},\n    \
         \"peak_window_raw_bytes\": {}\n  }}\n}}\n",
        mbps(whole_c),
        mbps(whole_d),
        whole.len(),
        opts.chunk_edge(),
        mbps(arch_c),
        mbps(arch_d),
        bytes.len(),
        stats.peak_window_raw_bytes,
    );
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/BENCH_archive.json");
    std::fs::write(path, &json).expect("write BENCH_archive.json");
    println!("wrote {path}:\n{json}");
}
