//! Concurrency soak of [`SharedRegistry`]'s lazy model resolution: many
//! threads decompressing learned streams whose model is *not* yet
//! registered — only its frame sits in the backing store — must trigger
//! exactly one store build, with every other decode served by the freshly
//! registered instance. No deadlock, no lock poisoning, no double builds.

use std::sync::{Arc, Barrier};

use aesz_repro::metrics::CodecId;
use aesz_repro::{ErrorBound, SharedRegistry};

mod common;

#[test]
fn racing_threads_resolve_a_cold_model_exactly_once() {
    // A learned AESC stream plus the model frame it references. AE-A is
    // the strictly model-dependent codec: every stream is id-prefixed and
    // undecodable without the exact network (AE-SZ streams whose adaptive
    // stage picked no AE blocks decode model-free, which would bypass the
    // resolution path this test exists to race).
    let trained = common::trained_registry();
    let field = common::field_2d();
    let mut codec = trained.fork(CodecId::AeA).expect("trained aea");
    let stream = codec
        .compress(&field, ErrorBound::rel(1e-2))
        .expect("compress");
    let model = codec
        .embedded_model()
        .expect("trained codecs carry a model");

    // Decoding side: default registry (untrained aea), model only in the
    // store — the first decode must come up through lazy resolution.
    let shared = Arc::new(SharedRegistry::with_defaults());
    shared
        .insert_model_frame(&model.frame)
        .expect("store the frame");
    assert_eq!(shared.model_resolutions(), 0);
    assert_eq!(shared.model_cache_hits(), 0);

    let threads = 16usize;
    let rounds = 8usize;
    let barrier = Arc::new(Barrier::new(threads));
    let handles: Vec<_> = (0..threads)
        .map(|_| {
            let shared = Arc::clone(&shared);
            let barrier = Arc::clone(&barrier);
            let stream = stream.clone();
            let dims = field.dims();
            std::thread::spawn(move || {
                // All threads hit the unresolved model at once.
                barrier.wait();
                for _ in 0..rounds {
                    let (got, id) = shared.decompress_any(&stream).expect("decompress");
                    assert_eq!(id, CodecId::AeA);
                    assert_eq!(got.dims(), dims);
                }
            })
        })
        .collect();
    for h in handles {
        h.join().expect("no thread panicked, no lock poisoned");
    }

    // Exactly one thread won the write race and built from the store; the
    // losers (and every later round) counted as cache hits.
    assert_eq!(shared.model_resolutions(), 1);
    assert_eq!(
        shared.model_cache_hits(),
        (threads * rounds - 1) as u64,
        "every decode but the resolving one must be a cache hit"
    );
}

#[test]
fn decodes_proceed_while_other_codecs_are_registered() {
    // Readers on a hot model must not deadlock against writers swapping a
    // different codec's entry.
    let trained = common::trained_registry();
    let field = common::field_2d();
    let mut codec = trained.fork(CodecId::AeSz).expect("trained aesz");
    let stream = codec
        .compress(&field, ErrorBound::rel(1e-2))
        .expect("compress");

    let shared = Arc::new(SharedRegistry::with_defaults());
    shared.register(codec.fork());

    let writer = {
        let shared = Arc::clone(&shared);
        let other = trained.fork(CodecId::AeA).expect("trained aea");
        std::thread::spawn(move || {
            for _ in 0..64 {
                shared.register(other.fork());
            }
        })
    };
    let readers: Vec<_> = (0..4)
        .map(|_| {
            let shared = Arc::clone(&shared);
            let stream = stream.clone();
            std::thread::spawn(move || {
                for _ in 0..16 {
                    shared.decompress_any(&stream).expect("decompress");
                }
            })
        })
        .collect();
    writer.join().expect("writer survived");
    for r in readers {
        r.join().expect("reader survived");
    }
    // The hot model never left the registry, so no store builds happened.
    assert_eq!(shared.model_resolutions(), 0);
}
