//! Concurrency soak of [`SharedRegistry`]'s lazy model resolution: many
//! threads decompressing learned streams whose model is *not* yet
//! registered — only its frame sits in the backing store — must trigger
//! exactly one store build, with every other decode served by the freshly
//! registered instance. No deadlock, no lock poisoning, no double builds.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Barrier};

use aesz_repro::metrics::{CodecId, Compressor};
use aesz_repro::{ErrorBound, SharedRegistry};
use rayon::pool::{PoolFullTagged, TaggedJob, WorkPool, WorkerLocal};

mod common;

#[test]
fn racing_threads_resolve_a_cold_model_exactly_once() {
    // A learned AESC stream plus the model frame it references. AE-A is
    // the strictly model-dependent codec: every stream is id-prefixed and
    // undecodable without the exact network (AE-SZ streams whose adaptive
    // stage picked no AE blocks decode model-free, which would bypass the
    // resolution path this test exists to race).
    let trained = common::trained_registry();
    let field = common::field_2d();
    let mut codec = trained.fork(CodecId::AeA).expect("trained aea");
    let stream = codec
        .compress(&field, ErrorBound::rel(1e-2))
        .expect("compress");
    let model = codec
        .embedded_model()
        .expect("trained codecs carry a model");

    // Decoding side: default registry (untrained aea), model only in the
    // store — the first decode must come up through lazy resolution.
    let shared = Arc::new(SharedRegistry::with_defaults());
    shared
        .insert_model_frame(&model.frame)
        .expect("store the frame");
    assert_eq!(shared.model_resolutions(), 0);
    assert_eq!(shared.model_cache_hits(), 0);

    let threads = 16usize;
    let rounds = 8usize;
    let barrier = Arc::new(Barrier::new(threads));
    let handles: Vec<_> = (0..threads)
        .map(|_| {
            let shared = Arc::clone(&shared);
            let barrier = Arc::clone(&barrier);
            let stream = stream.clone();
            let dims = field.dims();
            std::thread::spawn(move || {
                // All threads hit the unresolved model at once.
                barrier.wait();
                for _ in 0..rounds {
                    let (got, id) = shared.decompress_any(&stream).expect("decompress");
                    assert_eq!(id, CodecId::AeA);
                    assert_eq!(got.dims(), dims);
                }
            })
        })
        .collect();
    for h in handles {
        h.join().expect("no thread panicked, no lock poisoned");
    }

    // Exactly one thread won the write race and built from the store; the
    // losers (and every later round) counted as cache hits.
    assert_eq!(shared.model_resolutions(), 1);
    assert_eq!(
        shared.model_cache_hits(),
        (threads * rounds - 1) as u64,
        "every decode but the resolving one must be a cache hit"
    );
}

#[test]
fn decodes_proceed_while_other_codecs_are_registered() {
    // Readers on a hot model must not deadlock against writers swapping a
    // different codec's entry.
    let trained = common::trained_registry();
    let field = common::field_2d();
    let mut codec = trained.fork(CodecId::AeSz).expect("trained aesz");
    let stream = codec
        .compress(&field, ErrorBound::rel(1e-2))
        .expect("compress");

    let shared = Arc::new(SharedRegistry::with_defaults());
    shared.register(codec.fork());

    let writer = {
        let shared = Arc::clone(&shared);
        let other = trained.fork(CodecId::AeA).expect("trained aea");
        std::thread::spawn(move || {
            for _ in 0..64 {
                shared.register(other.fork());
            }
        })
    };
    let readers: Vec<_> = (0..4)
        .map(|_| {
            let shared = Arc::clone(&shared);
            let stream = stream.clone();
            std::thread::spawn(move || {
                for _ in 0..16 {
                    shared.decompress_any(&stream).expect("decompress");
                }
            })
        })
        .collect();
    writer.join().expect("writer survived");
    for r in readers {
        r.join().expect("reader survived");
    }
    // The hot model never left the registry, so no store builds happened.
    assert_eq!(shared.model_resolutions(), 0);
}

/// Soak of the per-worker resident-codec pattern `aesz serve` uses
/// ([`rayon::pool::WorkerLocal`] keyed by the executing worker's index):
/// every job compresses through its worker's long-lived fork, and every
/// stream must stay byte-identical to a fresh-fork compression. A codec
/// instance that accumulated state from a previous job — or a
/// [`WorkerLocal`] that ever handed one worker's slot to another mid-job —
/// would surface here as a diverged stream or a torn instance.
#[test]
fn per_worker_resident_codecs_never_leak_state_across_jobs() {
    let trained = common::trained_registry();
    let shared = Arc::new(SharedRegistry::with_defaults());
    // AE-A: the strictly model-dependent codec — if resident state drifted,
    // its streams would show it.
    shared.register(trained.fork(CodecId::AeA).expect("trained aea"));
    let field = Arc::new(common::field_2d());
    let bound = ErrorBound::rel(1e-2);
    let expected = Arc::new(
        shared
            .compress(CodecId::AeA, &field, bound)
            .expect("fresh-fork compress"),
    );

    let workers = 3usize;
    let jobs = 96usize;
    let pool = WorkPool::new(workers, workers + jobs);
    type Slot = Option<(usize, Box<dyn Compressor>)>;
    let locals: Arc<WorkerLocal<Slot>> = Arc::new(WorkerLocal::new(workers));
    let mismatches = Arc::new(AtomicUsize::new(0));
    let done = Arc::new(AtomicUsize::new(0));

    for _ in 0..jobs {
        let shared = Arc::clone(&shared);
        let locals = Arc::clone(&locals);
        let field = Arc::clone(&field);
        let expected = Arc::clone(&expected);
        let mismatches = Arc::clone(&mismatches);
        let done = Arc::clone(&done);
        let mut job: TaggedJob = Box::new(move |worker| {
            let ok = (|| {
                let mut slot = locals.get(worker)?;
                let (owner, instance) = slot
                    .get_or_insert_with(|| (worker, shared.fork(CodecId::AeA).expect("fork aea")));
                // The slot a worker sees must always be its own.
                if *owner != worker {
                    return None;
                }
                let stream = instance.compress(&field, bound).ok()?;
                (stream.as_slice() == expected.as_slice()).then_some(())
            })();
            if ok.is_none() {
                mismatches.fetch_add(1, Ordering::Relaxed);
            }
            done.fetch_add(1, Ordering::Release);
        });
        loop {
            match pool.try_execute_with(job) {
                Ok(()) => break,
                Err(PoolFullTagged(back)) => {
                    job = back;
                    std::thread::yield_now();
                }
            }
        }
    }
    while done.load(Ordering::Acquire) < jobs {
        std::thread::sleep(std::time::Duration::from_millis(1));
    }
    assert_eq!(
        mismatches.load(Ordering::Relaxed),
        0,
        "a resident per-worker codec produced a stream differing from a fresh fork"
    );
    // Each worker that ran at least one job forked exactly once and kept
    // the instance resident — no churn, no cross-worker sharing.
    let residents = (0..workers)
        .filter(|&w| locals.get(w).map(|s| s.is_some()).unwrap_or(false))
        .count();
    assert!(residents >= 1, "at least one worker served jobs");
}
