//! Golden-stream fixtures: committed `AESC` and `AESA` byte streams that
//! today's decoders must keep reading byte-for-byte, locking the wire
//! formats against accidental version breaks.
//!
//! The fixtures live under `tests/fixtures/` and were produced by the
//! `#[ignore]`d `regenerate_golden_fixtures` test below
//! (`cargo test --test golden_streams -- --ignored` rewrites them — only do
//! that for an *intentional*, version-bumped format change). The input field
//! is analytic (no RNG, no datagen), so the fixtures are independent of the
//! vendored `rand` stream.
//!
//! Only deterministic traditional codecs appear in fixtures: the learned
//! codecs' streams depend on model weights, which are not wire format.

use aesz_repro::archive::{compress_field_with, decompress, decompress_chunk, ArchiveReader};
use aesz_repro::metrics::{container, CodecId, Compressor, ErrorBound};
use aesz_repro::tensor::BlockSpec;
use aesz_repro::{Dims, Field, Registry};
use std::path::PathBuf;

fn fixture_path(name: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures")
        .join(name)
}

fn read_fixture(name: &str) -> Vec<u8> {
    std::fs::read(fixture_path(name))
        .unwrap_or_else(|e| panic!("missing fixture {name} (regenerate_golden_fixtures): {e}"))
}

/// The analytic input field of every fixture.
///
/// Exact IEEE `f32` arithmetic only — integer-valued operands and
/// power-of-two divisors, no libm calls (`sin` etc. are platform-libm
/// dependent to 1 ulp) — so the fixture inputs, and therefore the encoded
/// bytes, are bit-identical on every platform.
fn golden_field(dims: Dims) -> Field {
    Field::from_fn(dims, |c| {
        let mut h: u32 = 2166136261;
        for &x in c {
            h = (h ^ x as u32).wrapping_mul(16777619);
        }
        let mut v = 0.25f32 + (h % 1024) as f32 / 4096.0;
        for (ax, &x) in c.iter().enumerate() {
            v += ((x * (ax + 2)) % 23) as f32 / 64.0;
        }
        v
    })
}

const FRAME_DIMS: Dims = Dims::D2 { ny: 16, nx: 12 };
const ARCHIVE_DIMS: Dims = Dims::D2 { ny: 24, nx: 20 };
const ARCHIVE_CHUNK: usize = 8;
const ARCHIVE_CODECS: [CodecId; 4] = [
    CodecId::Sz2,
    CodecId::Zfp,
    CodecId::SzInterp,
    CodecId::SzAuto,
];
const BOUND: ErrorBound = ErrorBound::Abs(1e-3);

fn make_frame() -> Vec<u8> {
    aesz_repro::baselines::Sz2::new()
        .compress(&golden_field(FRAME_DIMS), BOUND)
        .expect("golden frame")
}

fn make_archive() -> Vec<u8> {
    let registry = Registry::with_defaults();
    compress_field_with(
        &registry,
        &golden_field(ARCHIVE_DIMS),
        BOUND,
        &aesz_repro::archive::ArchiveOptions::new()
            .chunk(ARCHIVE_CHUNK)
            .window(2),
        |spec: &BlockSpec| ARCHIVE_CODECS[spec.index % ARCHIVE_CODECS.len()],
    )
    .expect("golden archive")
    .0
}

#[test]
fn golden_aesc_frame_still_decodes_byte_for_byte() {
    let stream = read_fixture("sz2_16x12.aesc");
    let expected = read_fixture("sz2_16x12.recon.f32");

    assert_eq!(container::peek(&stream).unwrap().codec, CodecId::Sz2);
    let (recon, id) = aesz_repro::decompress_any(&stream).expect("golden frame decodes");
    assert_eq!(id, CodecId::Sz2);
    assert_eq!(recon.dims(), FRAME_DIMS);
    assert_eq!(
        recon.to_le_bytes(),
        expected,
        "reconstruction of the committed AESC stream changed"
    );
    // The committed reconstruction really honours the committed bound.
    let field = golden_field(FRAME_DIMS);
    for (a, b) in field.as_slice().iter().zip(recon.as_slice()) {
        assert!(((a - b) as f64).abs() <= 1e-3 * 1.0001);
    }
}

#[test]
fn golden_aesa_archive_still_decodes_byte_for_byte() {
    let stream = read_fixture("mixed_24x20_chunk8.aesa");
    let expected = read_fixture("mixed_24x20_chunk8.recon.f32");

    let reader = ArchiveReader::open(&stream).expect("golden archive opens");
    assert_eq!(reader.dims(), ARCHIVE_DIMS);
    assert_eq!(reader.header().chunk, ARCHIVE_CHUNK);
    assert_eq!(reader.chunk_count(), 9);
    for (i, entry) in reader.entries().iter().enumerate() {
        assert_eq!(entry.codec, ARCHIVE_CODECS[i % ARCHIVE_CODECS.len()]);
    }

    let registry = Registry::with_defaults();
    let (recon, _) = decompress(&registry, &stream, 3).expect("golden archive decodes");
    assert_eq!(
        recon.to_le_bytes(),
        expected,
        "reconstruction of the committed AESA archive changed"
    );
    // Random access agrees with the committed full decode.
    for i in 0..reader.chunk_count() {
        let (spec, chunk) = decompress_chunk(&registry, &stream, i).expect("chunk decodes");
        assert_eq!(chunk.as_slice(), recon.read_block_valid(&spec).as_slice());
    }
}

#[test]
fn todays_encoders_still_reproduce_the_golden_streams() {
    // Stronger than decode-compat: the traditional codecs are deterministic,
    // so today's encoders should emit the committed bytes exactly. If an
    // *intentional* encoder change breaks this, regenerate the fixtures and
    // say so in the changelog; decode-compat above must never break.
    assert_eq!(make_frame(), read_fixture("sz2_16x12.aesc"));
    assert_eq!(make_archive(), read_fixture("mixed_24x20_chunk8.aesa"));
}

/// Rewrites every fixture. Run explicitly (`-- --ignored`) only for an
/// intentional wire-format or encoder change.
#[test]
#[ignore = "regenerates the committed golden fixtures"]
fn regenerate_golden_fixtures() {
    std::fs::create_dir_all(fixture_path("")).unwrap();
    let frame = make_frame();
    let (recon, _) = aesz_repro::decompress_any(&frame).unwrap();
    std::fs::write(fixture_path("sz2_16x12.aesc"), &frame).unwrap();
    std::fs::write(fixture_path("sz2_16x12.recon.f32"), recon.to_le_bytes()).unwrap();

    let archive = make_archive();
    let registry = Registry::with_defaults();
    let (recon, _) = decompress(&registry, &archive, 2).unwrap();
    std::fs::write(fixture_path("mixed_24x20_chunk8.aesa"), &archive).unwrap();
    std::fs::write(
        fixture_path("mixed_24x20_chunk8.recon.f32"),
        recon.to_le_bytes(),
    )
    .unwrap();
}
