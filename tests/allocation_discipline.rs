//! Allocation discipline of the per-block hot paths (see README
//! "Performance"): after the scratch buffers warm up, the block loops of
//! `Sz2` and the core AE-SZ compressor must perform no per-block heap
//! allocation. The test installs a counting allocator and compares the
//! allocating-call count between a small and a much larger field — if any
//! block-loop path allocated per block, the count would grow by at least
//! one per extra block, while scratch reuse keeps the growth logarithmic
//! (output-vector doubling and the entropy-coder stages only).
//!
//! This binary holds exactly one `#[test]` so the measured regions never
//! interleave with another test's allocations.

mod common;

use aesz_repro::baselines::Sz2;
use aesz_repro::core::training::{train_swae_for_field, TrainingOptions};
use aesz_repro::core::{AeSz, AeSzConfig, PredictorPolicy};
use aesz_repro::datagen::Application;
use aesz_repro::metrics::{Compressor, ErrorBound};
use aesz_repro::{Dims, Field};

#[global_allocator]
static ALLOC: common::alloc::CountingAlloc = common::alloc::CountingAlloc::new();

/// Allocating calls made by `f`.
fn count_allocations<R>(f: impl FnOnce() -> R) -> (u64, R) {
    let before = ALLOC.allocations();
    let result = f();
    (ALLOC.allocations() - before, result)
}

fn field(side: usize) -> Field {
    Application::CesmCldhgh.generate(Dims::d2(side, side), 9)
}

const BOUND: ErrorBound = ErrorBound::Abs(1e-3);

#[test]
fn block_loops_allocate_o1_per_block() {
    // --- Sz2 (block size 8): 8×8 grid vs 32×32 grid of blocks. ---
    let small = field(64); // 64 blocks
    let large = field(256); // 1024 blocks
    let extra_blocks = 1024 - 64;

    let mut sz2 = Sz2::new();
    // Warm-up outputs are also the decode inputs below.
    let small_stream = sz2.compress(&small, BOUND).expect("compress");
    let (a_small, large_stream) = count_allocations(|| sz2.compress(&small, BOUND).ok());
    drop(large_stream);
    let (a_large, large_stream) = count_allocations(|| sz2.compress(&large, BOUND).ok());
    let large_stream = large_stream.expect("compress");
    assert!(
        a_large < a_small + extra_blocks / 4,
        "sz2 compress allocations scale with block count: \
         {a_small} for 64 blocks vs {a_large} for 1024"
    );

    let (d_small, _) = count_allocations(|| sz2.decompress(&small_stream).ok());
    let (d_large, _) = count_allocations(|| sz2.decompress(&large_stream).ok());
    assert!(
        d_large < d_small + extra_blocks / 4,
        "sz2 decompress allocations scale with block count: \
         {d_small} for 64 blocks vs {d_large} for 1024"
    );

    // --- Core AE-SZ (block size 16, Lorenzo-only so the measurement sees
    // exactly the chunked block loop, not the model's forward pass). ---
    let train = Application::CesmCldhgh.generate(Dims::d2(32, 48), 0);
    let opts = TrainingOptions {
        block_size: 16,
        latent_dim: 4,
        channels: vec![4],
        epochs: 1,
        max_blocks: 4,
        seed: 3,
        ..TrainingOptions::default_for_rank(2)
    };
    let model = train_swae_for_field(std::slice::from_ref(&train), &opts);
    let mut aesz = AeSz::new(
        model,
        AeSzConfig {
            block_size: 16,
            ..AeSzConfig::default_2d()
        },
    );
    aesz.set_policy(PredictorPolicy::LorenzoOnly);

    let small = field(64); // 16 blocks
    let large = field(512); // 1024 blocks
    let extra_blocks = 1024 - 16;
    let small_stream = aesz.compress(&small, BOUND).expect("compress");
    let (c_small, _) = count_allocations(|| aesz.compress(&small, BOUND).ok());
    let (c_large, large_stream) = count_allocations(|| aesz.compress(&large, BOUND).ok());
    let large_stream = large_stream.expect("compress");
    assert!(
        c_large < c_small + extra_blocks / 4,
        "aesz compress allocations scale with block count: \
         {c_small} for 16 blocks vs {c_large} for 1024"
    );

    let (e_small, _) = count_allocations(|| aesz.decompress(&small_stream).ok());
    let (e_large, _) = count_allocations(|| aesz.decompress(&large_stream).ok());
    assert!(
        e_large < e_small + extra_blocks / 4,
        "aesz decompress allocations scale with block count: \
         {e_small} for 16 blocks vs {e_large} for 1024"
    );
}
