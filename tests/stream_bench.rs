//! Release-mode streaming acceptance + throughput measurement.
//!
//! * An 8 MB+ field pushed through [`StreamFieldDecoder`] in fixed-size
//!   packets must reconstruct bit-identically to the buffered decode while
//!   the parser's buffer high-water mark stays bounded by one chunk frame,
//!   not the archive.
//! * Streamed-vs-buffered decode throughput (and the residency witness) is
//!   measured and written to `BENCH_stream.json` (CI's bench artifact).
//!
//! Timings only mean something under the optimized profile, so the suite is
//! ignored in debug builds (CI runs it via `cargo test --release`).

use aesz_repro::archive::{compress_field_with, decompress, ArchiveOptions};
use aesz_repro::datagen::Application;
use aesz_repro::metrics::{CodecId, ErrorBound};
use aesz_repro::stream::{StreamFieldDecoder, StreamOutput};
use aesz_repro::{Dims, Field, Registry};
use std::time::Instant;

#[test]
#[cfg_attr(debug_assertions, ignore = "throughput measurement needs --release")]
fn streamed_vs_buffered_decode_throughput_is_recorded() {
    let dims = Dims::d3(128, 128, 128);
    let field = Application::NyxBaryonDensity.generate(dims, 3);
    let raw_bytes = field.len() * 4;
    assert!(raw_bytes >= 8 * 1024 * 1024, "field must be >= 8 MB");
    let bound = ErrorBound::rel(1e-3);
    let registry = Registry::with_defaults();
    let window = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
        .clamp(2, 16);
    let opts = ArchiveOptions::new().chunk(64).window(window);

    let (bytes, _) = compress_field_with(&registry, &field, bound, &opts, |_| CodecId::Sz2)
        .expect("archive compress");

    // Buffered reference decode (windowed + parallel).
    let t0 = Instant::now();
    let (buffered, _) = decompress(&registry, &bytes, window).expect("buffered decode");
    let buffered_s = t0.elapsed().as_secs_f64();

    // Push-based decode in pipe-sized packets.
    const PACKET: usize = 64 * 1024;
    let t0 = Instant::now();
    let mut decoder = StreamFieldDecoder::new(&registry);
    let mut recon: Option<Field> = None;
    let mut chunks = 0usize;
    let drain = |d: &mut StreamFieldDecoder, recon: &mut Option<Field>, chunks: &mut usize| {
        while let Some(out) = d.poll().expect("stream decode") {
            match out {
                StreamOutput::Header(h) => *recon = Some(Field::zeros(h.dims)),
                StreamOutput::Chunk(spec, chunk) => {
                    *chunks += 1;
                    recon
                        .as_mut()
                        .expect("header precedes chunks")
                        .write_block_valid(&spec, chunk.as_slice());
                }
                StreamOutput::Field(_) => panic!("archive stream, not a frame"),
            }
        }
    };
    for packet in bytes.chunks(PACKET) {
        decoder.feed(packet);
        drain(&mut decoder, &mut recon, &mut chunks);
    }
    decoder.finish();
    drain(&mut decoder, &mut recon, &mut chunks);
    let streamed_s = t0.elapsed().as_secs_f64();
    let peak = decoder.peak_buffered();
    let recon = recon.expect("stream yielded a field");

    // Acceptance: bit-identity with the buffered path, bounded residency.
    assert_eq!(recon.as_slice(), buffered.as_slice());
    assert!(
        peak < bytes.len() / 4,
        "parser buffered {peak} of a {}-byte archive",
        bytes.len()
    );

    let mbps = |secs: f64| raw_bytes as f64 / 1e6 / secs;
    let json = format!(
        "{{\n  \"field\": \"nyx-baryon {dims}\",\n  \"field_bytes\": {raw_bytes},\n  \
         \"bound\": \"{bound}\",\n  \"codec\": \"SZ2.1\",\n  \
         \"archive_bytes\": {},\n  \"chunk\": {}, \"window\": {window},\n  \
         \"packet_bytes\": {PACKET},\n  \"chunks\": {chunks},\n  \
         \"buffered\": {{ \"decompress_s\": {buffered_s:.4}, \"decompress_mbps\": {:.2} }},\n  \
         \"streamed\": {{ \"decompress_s\": {streamed_s:.4}, \"decompress_mbps\": {:.2},\n    \
         \"peak_parser_buffer_bytes\": {peak} }}\n}}\n",
        bytes.len(),
        opts.chunk_edge(),
        mbps(buffered_s),
        mbps(streamed_s),
    );
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/BENCH_stream.json");
    std::fs::write(path, &json).expect("write BENCH_stream.json");
    println!("wrote {path}:\n{json}");
}
