//! Differential bit-identity harness for the optimized hot-path kernels.
//!
//! Every rewritten kernel in the workspace keeps a scalar `*_reference`
//! twin (see README "Performance"). This suite drives both sides over the
//! same randomized inputs — ranks 1–3, lengths covering every `len % 8`
//! residue, denormals, ±infinity and NaN-adjacent magnitudes — and demands
//! *bitwise* identical outputs: same quantizer codes, same escape lists,
//! same `f32` reconstruction bits, same `f64` loss bits, same encoded
//! bytes. A kernel that is merely "close" fails; the optimizations must be
//! reorderings the IEEE semantics cannot observe.
//!
//! The NN inference engine is held to the same contract: `gemm_into` and the
//! `im2col`/`col2im` packers must match their scalar twins bitwise across
//! spatial ranks 2–3, strides, pads and odd edges, and the whole GEMM-lowered
//! `ConvNd` path must reproduce the direct 7-deep loop it replaced bit for
//! bit on hostile weights (`ae_stream_golden.rs` extends that lock to whole
//! trained-autoencoder streams).
//!
//! The second half locks whole streams: each of the seven codecs must emit
//! byte-identical output across repeated runs and across fork boundaries
//! (learned codecs included), and the traditional codecs must keep decoding
//! the committed golden fixtures from before the kernel rewrite byte-for-
//! byte (`golden_streams.rs` holds the encode-side lock).

mod common;

use aesz_repro::codec::bitio::{BitReader, BitWriter};
use aesz_repro::codec::huffman::{
    huffman_decode_capped, huffman_decode_capped_reference, huffman_encode,
    huffman_encode_reference,
};
use aesz_repro::codec::lz::{
    zlite_compress, zlite_decompress_capped, zlite_decompress_capped_reference,
};
use aesz_repro::metrics::{CodecId, ErrorBound};
use aesz_repro::nn::conv::ConvNd;
use aesz_repro::nn::gemm::{gemm_into, gemm_reference, GemmBias};
use aesz_repro::nn::im2col::{
    col2im_into, col2im_reference, im2col_into, im2col_reference, ConvGeom,
};
use aesz_repro::nn::{Layer, NnScratch, Shape};
use aesz_repro::predictors::{lorenzo, mean, regression, Quantizer};
use aesz_repro::tensor::init::rng;
use proptest::prelude::*;

/// Finite-but-hostile values spliced into random blocks: denormals on both
/// sides of zero, signed zeros, both infinities, and NaN-adjacent
/// magnitudes (`f32::MAX`, near-overflow products).
const SPECIALS: [f32; 10] = [
    f32::MIN_POSITIVE / 2.0,  // positive denormal
    -f32::MIN_POSITIVE / 4.0, // negative denormal
    0.0,
    -0.0,
    f32::INFINITY,
    f32::NEG_INFINITY,
    f32::MAX,
    -f32::MAX,
    3.0e38,
    -3.0e38,
];

/// Deterministic extents for a case: rank 1–3, shaped so the total length
/// sweeps every `len % 8` residue class across the case budget.
fn make_extents(rank: usize, a: usize, b: usize, c: usize) -> Vec<usize> {
    match rank {
        1 => vec![a * b * c], // 1..=125: hits every residue mod 8
        2 => vec![a, b * c],
        _ => vec![a, b, c],
    }
}

/// Slice `values` to the extents' product and splice specials at `spots`.
fn make_block(values: &[f32], extents: &[usize], spots: &[usize], picks: &[usize]) -> Vec<f32> {
    let n: usize = extents.iter().product();
    let mut block: Vec<f32> = values.iter().copied().cycle().take(n).collect();
    for (&spot, &pick) in spots.iter().zip(picks.iter()) {
        block[spot % n] = SPECIALS[pick % SPECIALS.len()];
    }
    block
}

fn bits32(v: &[f32]) -> Vec<u32> {
    v.iter().map(|x| x.to_bits()).collect()
}

/// Hostile values safe to splice into *weights* on the GEMM path: everything
/// in [`SPECIALS`] except the infinities. Padded taps reach the accumulator
/// as an explicit `+0.0·w` term, which is a bitwise no-op only for finite
/// `w` (`0·∞ = NaN`); trained networks are always finite, so the harness
/// matches the contract the kernel documents rather than demanding identity
/// on inputs no model can produce (see `crates/nn/src/gemm.rs`).
const FINITE_SPECIALS: [f32; 8] = [
    f32::MIN_POSITIVE / 2.0,
    -f32::MIN_POSITIVE / 4.0,
    0.0,
    -0.0,
    f32::MAX,
    -f32::MAX,
    3.0e38,
    -3.0e38,
];

/// The pre-GEMM `ConvNd` forward pass: the direct 7-deep loop with
/// skip-out-of-bounds padding, accumulating taps in `(ci, dk, hk, wk)`
/// order from the bias. The lowered im2col+GEMM path must match this
/// bitwise on finite weights.
#[allow(clippy::too_many_arguments)]
fn conv_direct_reference(
    x: &[f32],
    n: usize,
    in_c: usize,
    out_c: usize,
    in_dhw: [usize; 3],
    kernel_dhw: [usize; 3],
    stride_dhw: [usize; 3],
    pad_dhw: [usize; 3],
    w: &[f32],
    b: &[f32],
) -> Vec<f32> {
    let [id_e, ih_e, iw_e] = in_dhw;
    let [kd, kh, kw] = kernel_dhw;
    let [sd, sh, sw] = stride_dhw;
    let [pd, ph, pw] = pad_dhw;
    let od_e = (id_e + 2 * pd - kd) / sd + 1;
    let oh_e = (ih_e + 2 * ph - kh) / sh + 1;
    let ow_e = (iw_e + 2 * pw - kw) / sw + 1;
    let k_elems = kd * kh * kw;
    let in_spatial = id_e * ih_e * iw_e;
    let out_spatial = od_e * oh_e * ow_e;
    let mut out = vec![0.0f32; n * out_c * out_spatial];
    for ni in 0..n {
        let x_n = &x[ni * in_c * in_spatial..(ni + 1) * in_c * in_spatial];
        let out_n = &mut out[ni * out_c * out_spatial..(ni + 1) * out_c * out_spatial];
        for co in 0..out_c {
            let w_co = &w[co * in_c * k_elems..(co + 1) * in_c * k_elems];
            for od in 0..od_e {
                for oh in 0..oh_e {
                    for ow in 0..ow_e {
                        let mut acc = b[co];
                        for ci in 0..in_c {
                            for dk in 0..kd {
                                let id = (od * sd + dk) as isize - pd as isize;
                                if id < 0 || id >= id_e as isize {
                                    continue;
                                }
                                for hk in 0..kh {
                                    let ih = (oh * sh + hk) as isize - ph as isize;
                                    if ih < 0 || ih >= ih_e as isize {
                                        continue;
                                    }
                                    for wk in 0..kw {
                                        let iw = (ow * sw + wk) as isize - pw as isize;
                                        if iw < 0 || iw >= iw_e as isize {
                                            continue;
                                        }
                                        let xi = ci * in_spatial
                                            + (id as usize * ih_e + ih as usize) * iw_e
                                            + iw as usize;
                                        let wi = ci * k_elems + (dk * kh + hk) * kw + wk;
                                        acc += x_n[xi] * w_co[wi];
                                    }
                                }
                            }
                        }
                        out_n[(co * od_e + od) * oh_e * ow_e + oh * ow_e + ow] = acc;
                    }
                }
            }
        }
    }
    out
}

proptest! {
    #[test]
    fn lorenzo_kernels_match_their_references(
        rank in 1usize..=3,
        a in 1usize..=5,
        b in 1usize..=5,
        c in 1usize..=5,
        values in proptest::collection::vec(-100.0f32..100.0, 16..64),
        spots in proptest::collection::vec(0usize..1024, 0..5),
        picks in proptest::collection::vec(0usize..SPECIALS.len(), 0..5),
        eb_exp in -6i32..0,
    ) {
        let extents = make_extents(rank, a, b, c);
        let data = make_block(&values, &extents, &spots, &picks);
        let quantizer = Quantizer::new(10f64.powi(eb_exp), 1 << 16);

        // Ideal predictions: fused scan vs. per-point coordinate walk.
        let mut preds = Vec::new();
        lorenzo::ideal_predictions_into(&data, &extents, &mut preds);
        let preds_ref = lorenzo::ideal_predictions_reference(&data, &extents);
        prop_assert_eq!(bits32(&preds), bits32(&preds_ref));

        // Fused l1 loss vs. the same f64 fold over the reference buffer.
        let loss = lorenzo::l1_loss(&data, &extents);
        let loss_ref: f64 = data
            .iter()
            .zip(preds_ref.iter())
            .map(|(&d, &p)| (d as f64 - p as f64).abs())
            .sum();
        prop_assert_eq!(loss.to_bits(), loss_ref.to_bits());

        // Compress: same codes, same escapes, same reconstruction bits.
        let (mut codes, mut unpred, mut recon) = (Vec::new(), Vec::new(), Vec::new());
        lorenzo::compress_into(&data, &extents, &quantizer, &mut codes, &mut unpred, &mut recon);
        let (blk_ref, recon_ref) = lorenzo::compress_reference(&data, &extents, &quantizer);
        prop_assert_eq!(&codes, &blk_ref.codes);
        prop_assert_eq!(bits32(&unpred), bits32(&blk_ref.unpredictable));
        prop_assert_eq!(bits32(&recon), bits32(&recon_ref));

        // Decompress the block both ways.
        let mut out = Vec::new();
        lorenzo::decompress_into(&codes, &unpred, &extents, &quantizer, &mut out);
        let out_ref = lorenzo::decompress_reference(&blk_ref, &extents, &quantizer);
        prop_assert_eq!(bits32(&out), bits32(&out_ref));
    }

    #[test]
    fn mean_kernels_match_their_references(
        n in 1usize..=64,
        values in proptest::collection::vec(-100.0f32..100.0, 16..64),
        spots in proptest::collection::vec(0usize..1024, 0..5),
        picks in proptest::collection::vec(0usize..SPECIALS.len(), 0..5),
        eb_exp in -6i32..0,
    ) {
        let extents = [n];
        let data = make_block(&values, &extents, &spots, &picks);
        let quantizer = Quantizer::new(10f64.powi(eb_exp), 1 << 16);
        let mv = mean::block_mean(&data);

        let (mut codes, mut unpred, mut recon) = (Vec::new(), Vec::new(), Vec::new());
        mean::compress_into(&data, mv, &quantizer, &mut codes, &mut unpred, &mut recon);
        let (blk_ref, recon_ref) = mean::compress_reference(&data, mv, &quantizer);
        prop_assert_eq!(&codes, &blk_ref.codes);
        prop_assert_eq!(bits32(&unpred), bits32(&blk_ref.unpredictable));
        prop_assert_eq!(bits32(&recon), bits32(&recon_ref));

        let mut out = Vec::new();
        mean::decompress_into(&codes, &unpred, mv, &quantizer, &mut out);
        let out_ref = mean::decompress_reference(&blk_ref, mv, &quantizer);
        prop_assert_eq!(bits32(&out), bits32(&out_ref));
    }

    #[test]
    fn regression_kernels_match_their_references(
        rank in 1usize..=3,
        a in 1usize..=5,
        b in 1usize..=5,
        c in 1usize..=5,
        values in proptest::collection::vec(-100.0f32..100.0, 16..64),
        spots in proptest::collection::vec(0usize..1024, 0..3),
        picks in proptest::collection::vec(0usize..SPECIALS.len(), 0..3),
        eb_exp in -6i32..0,
    ) {
        let extents = make_extents(rank, a, b, c);
        let data = make_block(&values, &extents, &spots, &picks);
        let quantizer = Quantizer::new(10f64.powi(eb_exp), 1 << 16);

        // Stack-array normal equations vs. dense design matrix.
        let fit = regression::fit(&data, &extents);
        let fit_ref = regression::fit_reference(&data, &extents);
        prop_assert_eq!(bits32(&fit.slopes), bits32(&fit_ref.slopes));
        prop_assert_eq!(fit.intercept.to_bits(), fit_ref.intercept.to_bits());

        // Fused fit-and-sum loss vs. the materialised-predictions fold.
        let loss = regression::l1_loss(&data, &extents);
        let loss_ref = regression::l1_loss_reference(&data, &extents);
        prop_assert_eq!(loss.to_bits(), loss_ref.to_bits());

        let (mut codes, mut unpred, mut recon) = (Vec::new(), Vec::new(), Vec::new());
        let coeffs =
            regression::compress_into(&data, &extents, &quantizer, &mut codes, &mut unpred, &mut recon);
        let (coeffs_ref, blk_ref, recon_ref) =
            regression::compress_reference(&data, &extents, &quantizer);
        prop_assert_eq!(bits32(&coeffs.slopes), bits32(&coeffs_ref.slopes));
        prop_assert_eq!(coeffs.intercept.to_bits(), coeffs_ref.intercept.to_bits());
        prop_assert_eq!(&codes, &blk_ref.codes);
        prop_assert_eq!(bits32(&unpred), bits32(&blk_ref.unpredictable));
        prop_assert_eq!(bits32(&recon), bits32(&recon_ref));

        let mut out = Vec::new();
        regression::decompress_into(&coeffs, &codes, &unpred, &extents, &quantizer, &mut out);
        let out_ref = regression::decompress_reference(&coeffs_ref, &blk_ref, &extents, &quantizer);
        prop_assert_eq!(bits32(&out), bits32(&out_ref));
    }

    #[test]
    fn bitio_batched_and_scalar_paths_agree(
        words in proptest::collection::vec(0u64..u64::MAX, 1..48),
        widths in proptest::collection::vec(1usize..=57, 1..48),
    ) {
        // Pair each value with a width and mask it down so both writers see
        // identical in-range inputs.
        let items: Vec<(u64, u8)> = words
            .iter()
            .zip(widths.iter())
            .map(|(&w, &n)| (w & (u64::MAX >> (64 - n)), n as u8))
            .collect();

        let mut fast = BitWriter::new();
        let mut slow = BitWriter::new();
        for &(v, n) in &items {
            fast.write_bits(v, n);
            slow.write_bits_reference(v, n);
        }
        prop_assert_eq!(fast.bit_len(), slow.bit_len());
        let bytes = fast.into_bytes();
        prop_assert_eq!(&bytes, &slow.into_bytes());

        // Read the stream back three ways: batched, scalar, peek+consume.
        let mut fast_r = BitReader::new(&bytes);
        let mut slow_r = BitReader::new(&bytes);
        let mut peek_r = BitReader::new(&bytes);
        for &(v, n) in &items {
            prop_assert_eq!(fast_r.read_bits(n), Some(v));
            prop_assert_eq!(slow_r.read_bits_reference(n), Some(v));
            let peeked = peek_r.peek_bits(n) & (u64::MAX >> (64 - n as u32));
            prop_assert_eq!(peeked, v);
            peek_r.consume(n);
        }
    }

    #[test]
    fn huffman_lut_decode_matches_the_walker(
        symbols in proptest::collection::vec(0u32..600, 0..512),
        skew in proptest::collection::vec(0u32..4, 0..512),
    ) {
        // Skew the alphabet: most streams are dominated by a few hot codes
        // (quantizer output is), which is what makes the LUT path fire.
        let symbols: Vec<u32> = symbols
            .iter()
            .zip(skew.iter().chain(std::iter::repeat(&0)))
            .map(|(&s, &k)| if k > 0 { s % 7 } else { s })
            .collect();

        let fast = huffman_encode(&symbols);
        let slow = huffman_encode_reference(&symbols);
        prop_assert_eq!(&fast, &slow);

        let dec = huffman_decode_capped(&fast, symbols.len());
        let dec_ref = huffman_decode_capped_reference(&fast, symbols.len());
        prop_assert_eq!(&dec, &dec_ref);
        prop_assert_eq!(dec, Some(symbols));
    }

    #[test]
    fn huffman_decoders_agree_on_hostile_bytes(
        bytes in proptest::collection::vec(0u8..=255, 0..256),
        cap in 0usize..512,
    ) {
        // On arbitrary (mostly invalid) bytes the two decoders must agree
        // exactly: same acceptance, same symbols, same rejection.
        prop_assert_eq!(
            huffman_decode_capped(&bytes, cap),
            huffman_decode_capped_reference(&bytes, cap)
        );
    }

    #[test]
    fn zlite_decoders_agree_on_round_trips_and_hostile_bytes(
        data in proptest::collection::vec(0u8..=255, 0..512),
        stutter in proptest::collection::vec(0usize..64, 0..8),
        flips in proptest::collection::vec(0usize..4096, 0..4),
    ) {
        // Make the input compressible (repeats at varying distances) so the
        // copy paths — overlapping and disjoint — actually run.
        let mut input = data.clone();
        for &s in &stutter {
            if !input.is_empty() {
                let from = s % input.len();
                let take = (s / 7 + 1).min(input.len() - from);
                let chunk: Vec<u8> = input[from..from + take].to_vec();
                input.extend_from_slice(&chunk);
            }
        }
        let packed = zlite_compress(&input);
        let out = zlite_decompress_capped(&packed, input.len());
        let out_ref = zlite_decompress_capped_reference(&packed, input.len());
        prop_assert_eq!(&out, &out_ref);
        prop_assert_eq!(out, Some(input));

        // Corrupt the stream; both decoders must still agree byte-for-byte.
        let mut bad = packed;
        for &f in &flips {
            if !bad.is_empty() {
                let at = f % bad.len();
                bad[at] ^= (f / 251 + 1) as u8;
            }
        }
        for cap in [0usize, 16, 4096] {
            prop_assert_eq!(
                zlite_decompress_capped(&bad, cap),
                zlite_decompress_capped_reference(&bad, cap)
            );
        }
    }

    #[test]
    fn gemm_kernels_match_their_references(
        m in 1usize..=4,
        k in 1usize..=9,
        p in 1usize..=10,
        slack in 0usize..=2,
        bias_kind in 0usize..=2,
        values in proptest::collection::vec(-100.0f32..100.0, 16..64),
        spots in proptest::collection::vec(0usize..1024, 0..6),
        picks in proptest::collection::vec(0usize..SPECIALS.len(), 0..6),
    ) {
        // A, B and the bias all get the full hostile set (±∞ included): both
        // kernels run identical per-element op sequences, so even NaN
        // payloads must agree bit for bit.
        let a = make_block(&values, &[m, k], &spots, &picks);
        let b = make_block(&values, &[k, p], &spots, &picks);
        let bias_buf = make_block(&values, &[m.max(p)], &spots, &picks);
        let bias = match bias_kind {
            0 => GemmBias::Zero,
            1 => GemmBias::Row(&bias_buf),
            _ => GemmBias::Col(&bias_buf),
        };
        // Sentinel-filled C with strided rows: the inter-row gaps must
        // survive both kernels untouched.
        let ldc = p + slack;
        let mut fast = vec![9.25f32; (m - 1) * ldc + p];
        let mut slow = fast.clone();
        gemm_into(&a, &b, bias, m, k, p, &mut fast, ldc);
        gemm_reference(&a, &b, bias, m, k, p, &mut slow, ldc);
        prop_assert_eq!(bits32(&fast), bits32(&slow));
        for (i, &v) in fast.iter().enumerate() {
            if i % ldc >= p {
                prop_assert_eq!(v.to_bits(), 9.25f32.to_bits());
            }
        }
    }

    #[test]
    fn im2col_kernels_match_their_references(
        rank in 2usize..=3,
        channels in 1usize..=3,
        d in 1usize..=4,
        h in 1usize..=6,
        w in 1usize..=6,
        kernel_pick in 0usize..=1,
        sd in 1usize..=2,
        sh in 1usize..=2,
        sw in 1usize..=2,
        panel in 0usize..256,
        values in proptest::collection::vec(-100.0f32..100.0, 16..64),
        spots in proptest::collection::vec(0usize..1024, 0..6),
        picks in proptest::collection::vec(0usize..SPECIALS.len(), 0..6),
    ) {
        // Same-padding geometry exactly as ConvNd builds it: 2D data rides
        // in the depth-1 plane with a 1×k×k kernel.
        let kk = [1usize, 3][kernel_pick];
        let (dd, kd, psd) = if rank == 2 { (1, 1, 1) } else { (d, kk, sd) };
        let g = ConvGeom::new(
            channels,
            [dd, h, w],
            [kd, kk, kk],
            [psd, sh, sw],
            [kd / 2, kk / 2, kk / 2],
        );
        let x = make_block(&values, &[channels, dd, h, w], &spots, &picks);
        let rows = g.out_rows();
        let or0 = panel % rows;
        let or1 = rows.min(or0 + 1 + panel / 16);
        for (lo, hi) in [(0, rows), (or0, or1)] {
            let (mut fast, mut slow) = (Vec::new(), Vec::new());
            im2col_into(&x, &g, lo, hi, &mut fast);
            im2col_reference(&x, &g, lo, hi, &mut slow);
            prop_assert_eq!(bits32(&fast), bits32(&slow));
        }

        // And fold back: col2im must accumulate onto a pre-seeded buffer in
        // the same pinned order on both sides.
        let np = g.out_spatial();
        let col = make_block(&values, &[g.k_rows(), np], &spots, &picks);
        let mut xf = make_block(&values, &[channels, dd, h, w], &[], &[]);
        let mut xs = xf.clone();
        col2im_into(&col, &g, 0, rows, &mut xf);
        col2im_reference(&col, &g, 0, rows, &mut xs);
        prop_assert_eq!(bits32(&xf), bits32(&xs));
    }

    #[test]
    fn conv_gemm_lowering_matches_the_direct_loop(
        rank in 2usize..=3,
        n in 1usize..=2,
        in_c in 1usize..=3,
        out_c in 1usize..=3,
        kernel_pick in 0usize..=1,
        stride in 1usize..=2,
        d in 1usize..=4,
        h in 1usize..=6,
        w in 1usize..=6,
        seed in 0u64..1024,
        values in proptest::collection::vec(-100.0f32..100.0, 16..64),
        spots in proptest::collection::vec(0usize..1024, 0..5),
        picks in proptest::collection::vec(0usize..SPECIALS.len(), 0..5),
        wspots in proptest::collection::vec(0usize..1024, 0..4),
        wpicks in proptest::collection::vec(0usize..FINITE_SPECIALS.len(), 0..4),
    ) {
        // End-to-end: ConvNd's im2col+GEMM inference path against the
        // pre-rewrite direct loop, on Kaiming weights spliced with finite
        // hostile values (the kernel's documented bit-identity domain —
        // inputs still carry the full set, infinities included).
        let kernel = [1usize, 3][kernel_pick];
        let mut r = rng(seed);
        let mut conv = ConvNd::new(rank, in_c, out_c, kernel, stride, &mut r);
        {
            let mut params = conv.params_mut();
            let wv = params[0].value.as_mut_slice();
            for (&spot, &pick) in wspots.iter().zip(wpicks.iter()) {
                let n = wv.len();
                wv[spot % n] = FINITE_SPECIALS[pick % FINITE_SPECIALS.len()];
            }
            let bv = params[1].value.as_mut_slice();
            for (i, bo) in bv.iter_mut().enumerate() {
                let v = values[i % values.len()];
                // Never −0.0: a padded tap's +0.0 term would flip it.
                *bo = if v == 0.0 { 0.25 } else { v };
            }
        }
        let weights: Vec<f32> = conv.params()[0].value.as_slice().to_vec();
        let biases: Vec<f32> = conv.params()[1].value.as_slice().to_vec();

        let (dd, kd, psd) = if rank == 2 { (1, 1, 1) } else { (d, kernel, stride) };
        let x = make_block(&values, &[n, in_c, dd, h, w], &spots, &picks);
        let shape = if rank == 2 {
            Shape::new(&[n, in_c, h, w])
        } else {
            Shape::new(&[n, in_c, dd, h, w])
        };
        let mut out = Vec::new();
        let mut scratch = NnScratch::new();
        let out_shape = conv.infer_into(&x, shape, &mut out, &mut scratch).expect("valid shape");

        let direct = conv_direct_reference(
            &x,
            n,
            in_c,
            out_c,
            [dd, h, w],
            [kd, kernel, kernel],
            [psd, stride, stride],
            [kd / 2, kernel / 2, kernel / 2],
            &weights,
            &biases,
        );
        prop_assert_eq!(out.len(), out_shape.len());
        prop_assert_eq!(bits32(&out), bits32(&direct));
    }
}

/// Whole-stream lock: every codec (learned ones included) must be
/// deterministic — two independent forks compressing the same field under
/// the same bound emit byte-identical streams, under both `ErrorBound`
/// modes. Combined with `golden_streams.rs` (which pins the traditional
/// codecs' bytes to committed pre-rewrite fixtures), this extends the
/// bit-identity contract from kernels to full streams for all seven codecs.
#[test]
fn all_seven_codecs_emit_bit_identical_streams_across_forks() {
    let mut registry = common::trained_registry();
    for codec in CodecId::all() {
        let field = common::test_field(codec);
        for bound in [ErrorBound::Abs(1e-3), ErrorBound::RangeRel(1e-3)] {
            let one = registry
                .fork(codec)
                .expect("codec registered")
                .compress(&field, bound)
                .expect("compress");
            let two = registry
                .fork(codec)
                .expect("codec registered")
                .compress(&field, bound)
                .expect("compress");
            assert_eq!(
                one, two,
                "{codec:?} under {bound:?} is not run-to-run deterministic"
            );
            // And the stream its own fork emitted must decode.
            let (recon, id) = registry.decompress_any(&one).expect("stream decodes");
            assert_eq!(id, codec);
            assert_eq!(recon.dims(), field.dims());
        }
    }
}
