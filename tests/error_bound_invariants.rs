//! Cross-crate integration test: every compressor that claims to be
//! error-bounded must respect the requested bound on every application's data,
//! across several error bounds (the invariant of DESIGN.md §6).

use aesz_repro::baselines::{Sz2, SzAuto, SzInterp, Zfp};
use aesz_repro::core::training::TrainingOptions;
use aesz_repro::core::{train_swae_for_field, AeSz, AeSzConfig};
use aesz_repro::datagen::Application;
use aesz_repro::metrics::{verify_error_bound, Compressor, ErrorBound};
use aesz_repro::tensor::Dims;

fn check(comp: &mut dyn Compressor, field: &aesz_repro::tensor::Field, rel_eb: f64) {
    let bytes = comp
        .compress(field, ErrorBound::rel(rel_eb))
        .unwrap_or_else(|e| panic!("{} failed to compress at eb {rel_eb}: {e}", comp.name()));
    let recon = comp
        .decompress(&bytes)
        .unwrap_or_else(|e| panic!("{} failed to decode its own stream: {e}", comp.name()));
    let abs = rel_eb * field.value_range() as f64;
    verify_error_bound(field.as_slice(), recon.as_slice(), abs, abs * 1e-3)
        .unwrap_or_else(|e| panic!("{} violated the bound at eb {rel_eb}: {e}", comp.name()));

    // The same absolute bound, requested in absolute mode, must hold too.
    let bytes = comp
        .compress(field, ErrorBound::abs(abs))
        .unwrap_or_else(|e| panic!("{} failed to compress at abs {abs}: {e}", comp.name()));
    let recon = comp.decompress(&bytes).expect("own stream decodes");
    verify_error_bound(field.as_slice(), recon.as_slice(), abs, abs * 1e-3)
        .unwrap_or_else(|e| panic!("{} violated the absolute bound {abs}: {e}", comp.name()));
}

#[test]
fn traditional_baselines_respect_bounds_on_all_applications() {
    for app in Application::all() {
        let dims = match app.rank() {
            2 => Dims::d2(48, 64),
            _ => Dims::d3(20, 24, 24),
        };
        let field = app.generate(dims, 50);
        for rel_eb in [1e-2, 1e-3] {
            check(&mut Sz2::new(), &field, rel_eb);
            check(&mut Zfp::new(), &field, rel_eb);
            check(&mut SzAuto::new(), &field, rel_eb);
            check(&mut SzInterp::new(), &field, rel_eb);
        }
    }
}

#[test]
fn aesz_respects_bounds_in_2d_and_3d() {
    for (app, dims, block) in [
        (Application::CesmFreqsh, Dims::d2(64, 64), 16usize),
        (Application::NyxTemperature, Dims::d3(24, 24, 24), 8),
    ] {
        let train = app.generate(dims, 0);
        let test = app.generate(dims, 50);
        let opts = TrainingOptions {
            block_size: block,
            latent_dim: 8,
            channels: vec![4, 8],
            epochs: 2,
            max_blocks: 64,
            ..TrainingOptions::default_for_rank(app.rank())
        };
        let model = train_swae_for_field(std::slice::from_ref(&train), &opts);
        let mut aesz = AeSz::new(
            model,
            AeSzConfig {
                block_size: block,
                ..AeSzConfig::default_2d()
            },
        );
        for rel_eb in [1e-1, 1e-2, 1e-3] {
            check(&mut aesz, &test, rel_eb);
        }
    }
}
