//! Conformance of the streaming ingest/egress layer against the buffered
//! paths it must agree with:
//!
//! * the push-based [`StreamFieldDecoder`] must reconstruct the same field
//!   as the buffered [`ArchiveReader`] decode, at *any* feed granularity
//!   (down to one byte at a time), across all seven codecs — including
//!   learned chunks whose embedded models only arrive in the archive tail;
//! * a truncated or header-corrupted stream must error in both paths —
//!   never a panic, never a silent partial field;
//! * an archive grown in place with [`ArchiveAppender`] must reopen as a
//!   plain archive whose chunks — old and new — random-access decode, with
//!   the original payload bytes untouched.

use std::io::Cursor;
use std::sync::OnceLock;

use aesz_repro::archive::{
    compress_field, compress_field_embedding, decompress, decompress_chunk, ArchiveAppender,
    ArchiveOptions, ArchiveReadError, ArchiveReader, FieldSource,
};
use aesz_repro::metrics::container::{ArchiveHeader, FRAME_LEN};
use aesz_repro::metrics::CodecId;
use aesz_repro::stream::{decompress_reader, StreamFieldDecoder, StreamOutput};
use aesz_repro::{Dims, ErrorBound, Field, Registry};
use proptest::prelude::*;

mod common;

/// One archive exercising all seven codecs (cycled per chunk) with the
/// learned models *embedded*, plus its buffered reconstruction — built once,
/// since training the learned codecs dominates the suite's runtime. A fresh
/// default registry must decode it, which is exactly what the streaming
/// decoder's deferred-chunk path is for: chunks arrive before the models.
fn seven_codec_archive() -> &'static (Vec<u8>, Field, usize) {
    static CELL: OnceLock<(Vec<u8>, Field, usize)> = OnceLock::new();
    CELL.get_or_init(|| {
        let registry = common::trained_registry();
        let field = common::field_3d();
        let all = CodecId::all();
        let opts = ArchiveOptions::new().chunk(8).window(2);
        let (bytes, stats) =
            compress_field_embedding(&registry, &field, ErrorBound::rel(1e-2), &opts, |spec| {
                all[spec.index % all.len()]
            })
            .expect("seven-codec archive");
        let fresh = Registry::with_defaults();
        let (recon, _) = decompress(&fresh, &bytes, 3).expect("buffered decode");
        (bytes, recon, stats.chunks)
    })
}

/// Push `bytes` through a [`StreamFieldDecoder`] in packets of `step`,
/// assembling the reconstruction like a consumer would.
fn decode_pushed(registry: &Registry, bytes: &[u8], step: usize) -> (Field, usize, usize) {
    let mut decoder = StreamFieldDecoder::new(registry);
    let mut recon: Option<Field> = None;
    let mut chunks = 0usize;
    let drain = |d: &mut StreamFieldDecoder, recon: &mut Option<Field>, chunks: &mut usize| {
        while let Some(out) = d.poll().expect("stream decode") {
            match out {
                StreamOutput::Header(h) => *recon = Some(Field::zeros(h.dims)),
                StreamOutput::Chunk(spec, chunk) => {
                    *chunks += 1;
                    recon
                        .as_mut()
                        .expect("header precedes chunks")
                        .write_block_valid(&spec, chunk.as_slice());
                }
                StreamOutput::Field(field) => *recon = Some(field),
            }
        }
    };
    for packet in bytes.chunks(step.max(1)) {
        decoder.feed(packet);
        drain(&mut decoder, &mut recon, &mut chunks);
    }
    decoder.finish();
    drain(&mut decoder, &mut recon, &mut chunks);
    let peak = decoder.peak_buffered();
    (recon.expect("stream yielded a field"), chunks, peak)
}

proptest! {
    /// Incremental decode is granularity-independent: whatever packet size
    /// the bytes arrive in — one byte, a weird prime, bigger than the
    /// archive — the reconstruction is bit-identical to the buffered
    /// reader's, every chunk is emitted exactly once, and the parser's
    /// buffer high-water mark stays below the whole stream.
    #[test]
    fn incremental_decode_matches_buffered_at_any_granularity(step in 1usize..3000) {
        let (bytes, buffered, chunk_count) = seven_codec_archive();
        let fresh = Registry::with_defaults();
        let (recon, chunks, peak) = decode_pushed(&fresh, bytes, step);
        prop_assert_eq!(chunks, *chunk_count);
        prop_assert_eq!(recon.dims(), buffered.dims());
        prop_assert_eq!(recon.as_slice(), buffered.as_slice());
        prop_assert!(peak < bytes.len(), "peak {} vs stream {}", peak, bytes.len());
    }

    /// Every proper prefix of the archive errors in both paths: the
    /// buffered reader (which sees the truncation up front) and the push
    /// decoder (which only learns of it at `finish`). Both surface a
    /// decode-layer error, not an I/O one — truncation is a property of the
    /// stream, not of the transport.
    #[test]
    fn any_truncation_errs_in_both_paths(frac in 0usize..1000) {
        let (bytes, _, _) = seven_codec_archive();
        let cut = frac * (bytes.len() - 1) / 999;
        let prefix = &bytes[..cut];

        let fresh = Registry::with_defaults();
        prop_assert!(decompress(&fresh, prefix, 2).is_err());
        match decompress_reader(&fresh, &mut &prefix[..]) {
            Err(ArchiveReadError::Archive(_)) => {}
            Err(other) => return Err(TestCaseError::fail(format!(
                "streamed truncation at {cut} gave a non-archive error: {other}"
            ))),
            Ok(_) => return Err(TestCaseError::fail(format!(
                "streamed decode accepted a {cut}-byte prefix of {} bytes", bytes.len()
            ))),
        }
    }

    /// Flipping any bit of the chunk index or of a chunk frame's fixed
    /// header is rejected by both paths. (Payload bytes are exempt: a
    /// payload flip may decode to different in-bounds values, which is the
    /// codec's own conformance concern.)
    #[test]
    fn index_and_frame_header_flips_err_in_both_paths(at in 0usize..100_000, bit in 0u8..8) {
        let (bytes, _, _) = seven_codec_archive();
        let header = ArchiveHeader::read(bytes).unwrap();
        let reader = ArchiveReader::open(bytes).unwrap();
        let mut protected: Vec<usize> = (header.encoded_len()..header.data_start()).collect();
        for entry in reader.entries() {
            protected.extend(entry.offset as usize..entry.offset as usize + FRAME_LEN);
        }
        let at = protected[at % protected.len()];
        let mut evil = bytes.clone();
        evil[at] ^= 1 << bit;

        let fresh = Registry::with_defaults();
        prop_assert!(decompress(&fresh, &evil, 2).is_err());
        prop_assert!(decompress_reader(&fresh, &mut &evil[..]).is_err());
    }

    /// Append + reopen is indistinguishable from having written the grown
    /// archive in the first place: the base archive's payload bytes are
    /// untouched, the reopened index covers old and new chunks, every chunk
    /// random-access decodes within the bound, and both the buffered and
    /// the push decoder reconstruct the same grown field.
    #[test]
    fn append_then_reopen_roundtrips_with_random_access(pre in 1usize..4, post in 1usize..4) {
        let chunk = 8usize;
        let fast = 24usize;
        let full = Field::from_fn(Dims::d2((pre + post) * chunk, fast), |c| {
            ((c[0] as f32) * 0.13).sin() + ((c[1] as f32) * 0.29).cos() * 0.5
        });
        let row = fast;
        let (base_vals, slab_vals) = full.as_slice().split_at(pre * chunk * row);
        let base = Field::from_vec(Dims::d2(pre * chunk, fast), base_vals.to_vec()).unwrap();
        let slab = Field::from_vec(Dims::d2(post * chunk, fast), slab_vals.to_vec()).unwrap();
        let bound = ErrorBound::abs(1e-3);
        let per_band = fast.div_ceil(chunk);

        let registry = Registry::with_defaults();
        let opts = ArchiveOptions::new()
            .chunk(chunk)
            .window(2)
            .reserve(post * per_band);
        let (bytes, base_stats) =
            compress_field(&registry, &base, bound, &opts, CodecId::Sz2).unwrap();

        let mut appender = ArchiveAppender::open(Cursor::new(bytes.clone())).unwrap();
        prop_assert_eq!(appender.spare_slots(), post * per_band);
        let stats = appender
            .append(&mut FieldSource(&slab), bound, 2, &mut |_| {
                registry
                    .fork(CodecId::Zfp)
                    .ok_or(aesz_repro::CompressError::UnsupportedField("zfp"))
            })
            .unwrap();
        prop_assert_eq!(stats.chunks, post * per_band);
        let grown = appender.finalize().unwrap().into_inner();

        // Existing payload bytes were never rewritten.
        let data_start = ArchiveHeader::read(&bytes).unwrap().data_start();
        let old_payload = &bytes[data_start..];
        prop_assert_eq!(&grown[data_start..data_start + old_payload.len()], old_payload);

        let reader = ArchiveReader::open(&grown).unwrap();
        prop_assert_eq!(reader.dims(), full.dims());
        prop_assert_eq!(reader.chunk_count(), base_stats.chunks + stats.chunks);
        // Every reserved slot was consumed.
        prop_assert_eq!(reader.header().index_slots(), reader.chunk_count());

        // Every chunk — pre-existing and appended — random-access decodes
        // within the bound.
        for i in 0..reader.chunk_count() {
            let (spec, chunk_field) = decompress_chunk(&registry, &grown, i).unwrap();
            let original = full.read_block_valid(&spec);
            for (a, b) in original.iter().zip(chunk_field.as_slice()) {
                prop_assert!(((a - b) as f64).abs() <= 1e-3 * 1.0001);
            }
        }

        // Buffered and pushed full decodes agree bit for bit.
        let (buffered, _) = decompress(&registry, &grown, 3).unwrap();
        let (pushed, chunks, _) = decode_pushed(&registry, &grown, 61);
        prop_assert_eq!(chunks, reader.chunk_count());
        prop_assert_eq!(pushed.as_slice(), buffered.as_slice());
    }
}

/// The byte-at-a-time extreme is the classic state-machine bug magnet, so
/// it gets a dedicated (non-random) lock next to the proptest sweep.
#[test]
fn one_byte_packets_decode_identically() {
    let (bytes, buffered, chunk_count) = seven_codec_archive();
    let fresh = Registry::with_defaults();
    let (recon, chunks, _) = decode_pushed(&fresh, bytes, 1);
    assert_eq!(chunks, *chunk_count);
    assert_eq!(recon.as_slice(), buffered.as_slice());
}
