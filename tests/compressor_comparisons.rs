//! Cross-crate integration test of the comparative claims the benchmark
//! harness relies on: the relative behaviour of the compressors, not absolute
//! numbers.

use aesz_repro::baselines::{Sz2, SzInterp, Zfp};
use aesz_repro::core::training::TrainingOptions;
use aesz_repro::core::{train_swae_for_field, AeSz, AeSzConfig, PredictorPolicy};
use aesz_repro::datagen::Application;
use aesz_repro::metrics::{measure, Compressor, ErrorBound};
use aesz_repro::tensor::Dims;

#[test]
fn all_compressors_beat_raw_storage_on_smooth_data() {
    let field = Application::CesmCldhgh.generate(Dims::d2(96, 96), 20);
    for comp in [
        &mut Sz2::new() as &mut dyn Compressor,
        &mut Zfp::new(),
        &mut SzInterp::new(),
    ] {
        let p = measure(comp, &field, ErrorBound::rel(1e-3)).expect("valid roundtrip");
        assert!(
            p.compression_ratio > 2.0,
            "{} only reached CR {:.2}",
            comp.name(),
            p.compression_ratio
        );
    }
}

#[test]
fn adaptive_predictor_selection_is_not_worse_than_lorenzo_only() {
    // Fig. 11's claim, in relaxed form: at a coarse bound the adaptive policy
    // must not produce a (meaningfully) larger stream than Lorenzo-only.
    let app = Application::CesmCldhgh;
    let train = app.generate(Dims::d2(96, 96), 0);
    let test = app.generate(Dims::d2(96, 96), 50);
    let opts = TrainingOptions {
        block_size: 16,
        latent_dim: 8,
        channels: vec![4, 8],
        epochs: 3,
        max_blocks: 96,
        ..TrainingOptions::default_for_rank(2)
    };
    let model = train_swae_for_field(std::slice::from_ref(&train), &opts);
    let mut aesz = AeSz::new(
        model,
        AeSzConfig {
            block_size: 16,
            ..AeSzConfig::default_2d()
        },
    );
    let eb = ErrorBound::rel(1e-2);
    let adaptive = aesz.compress_with_report(&test, eb).unwrap().0.len();
    aesz.set_policy(PredictorPolicy::LorenzoOnly);
    let lorenzo_only = aesz.compress_with_report(&test, eb).unwrap().0.len();
    assert!(
        (adaptive as f64) < 1.1 * lorenzo_only as f64,
        "adaptive {adaptive} should not lose badly to lorenzo-only {lorenzo_only}"
    );
}

#[test]
fn finer_bounds_monotonically_increase_psnr_for_every_compressor() {
    let field = Application::HurricaneU.generate(Dims::d3(16, 32, 32), 44);
    for comp in [
        &mut Sz2::new() as &mut dyn Compressor,
        &mut Zfp::new(),
        &mut SzInterp::new(),
    ] {
        let coarse = measure(comp, &field, ErrorBound::rel(1e-2)).expect("valid roundtrip");
        let fine = measure(comp, &field, ErrorBound::rel(1e-4)).expect("valid roundtrip");
        assert!(
            fine.psnr > coarse.psnr,
            "{}: PSNR did not improve with a finer bound",
            comp.name()
        );
        assert!(fine.bit_rate > coarse.bit_rate);
    }
}
