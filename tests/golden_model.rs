//! Golden-model fixture: a committed `AESZMDL1` model file that today's
//! loader must keep reading byte-for-byte, locking the model wire format —
//! and the [`ModelId`] derivation over it — against accidental breaks, the
//! same way `tests/golden_streams.rs` locks `AESC`/`AESA`.
//!
//! The fixture model is a freshly initialised (untrained) tiny SWAE: weight
//! init draws from the vendored deterministic RNG, so the bytes are
//! reproducible on every platform with no training-loop float accumulation
//! involved. `regenerate_golden_fixtures` (run with `-- --ignored`) rewrites
//! the fixture for an *intentional* format change.

use aesz_repro::nn::models::conv_ae::{AeConfig, ConvAutoencoder};
use aesz_repro::nn::serialize::{load_model, model_id, save_model};
use aesz_repro::ModelId;
use std::path::PathBuf;

fn fixture_path(name: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures")
        .join(name)
}

fn read_fixture(name: &str) -> Vec<u8> {
    std::fs::read(fixture_path(name))
        .unwrap_or_else(|e| panic!("missing fixture {name} (regenerate_golden_fixtures): {e}"))
}

/// The fixture's architecture; `seed` pins the deterministic weight init.
fn golden_config() -> AeConfig {
    AeConfig {
        spatial_rank: 2,
        block_size: 8,
        latent_dim: 4,
        channels: vec![4],
        variational: false,
        seed: 2021,
    }
}

const MODEL_FIXTURE: &str = "tiny_swae.aeszmdl";
const ID_FIXTURE: &str = "tiny_swae.aeszmdl.id";

#[test]
fn golden_model_file_still_loads_byte_for_byte() {
    let bytes = read_fixture(MODEL_FIXTURE);
    let committed_id = String::from_utf8(read_fixture(ID_FIXTURE)).expect("utf8 id fixture");
    let committed_id = ModelId::from_hex(committed_id.trim()).expect("hex id fixture");

    // Decode-compat: the committed file loads, re-serializes to the same
    // bytes, and hashes to the committed id (locking both the `AESZMDL1`
    // layout and the ModelId derivation).
    let loaded = load_model(&bytes).expect("golden model loads");
    assert_eq!(loaded.config(), &golden_config());
    assert_eq!(
        save_model(&loaded),
        bytes,
        "re-serializing the committed model changed its bytes"
    );
    assert_eq!(
        model_id(&loaded),
        committed_id,
        "the ModelId derivation over the committed bytes changed"
    );

    // Encoder-compat: today's initialisation reproduces the fixture exactly
    // (deterministic vendored RNG). An intentional init/serialization change
    // must regenerate the fixture and say so in the changelog.
    assert_eq!(save_model(&ConvAutoencoder::new(golden_config())), bytes);
}

#[test]
fn every_truncation_of_the_golden_model_is_rejected() {
    let bytes = read_fixture(MODEL_FIXTURE);
    for len in 0..bytes.len() {
        assert!(
            load_model(&bytes[..len]).is_err(),
            "truncated model file of {len}/{} bytes loaded",
            bytes.len()
        );
    }
    let mut padded = bytes.clone();
    padded.push(0);
    assert!(load_model(&padded).is_err(), "trailing byte accepted");
}

#[test]
fn single_bit_flips_never_panic_and_never_keep_the_id() {
    let bytes = read_fixture(MODEL_FIXTURE);
    let committed_id = ModelId::of(&bytes);

    // Every bit of the header/config region, plus a stride through the
    // weight payload (every byte would be needlessly slow): a flip must
    // either fail to load or produce a model whose canonical bytes — and
    // therefore id — differ. Silently loading as the *same* model would
    // defeat content addressing.
    let mut positions: Vec<usize> = (0..bytes.len().min(96)).collect();
    positions.extend((96..bytes.len()).step_by(97));
    for at in positions {
        for bit in 0..8 {
            let mut evil = bytes.clone();
            evil[at] ^= 1 << bit;
            match load_model(&evil) {
                Err(_) => {}
                Ok(model) => {
                    assert_ne!(
                        model_id(&model),
                        committed_id,
                        "flipping bit {bit} of byte {at} kept the model id"
                    );
                    assert_eq!(
                        save_model(&model),
                        evil,
                        "byte {at} is not canonically stored"
                    );
                }
            }
        }
    }
}

#[test]
fn random_stompings_never_panic() {
    // Deterministic pseudo-random multi-byte corruption: xorshift positions
    // and values, no RNG crate needed. Loading must never panic.
    let bytes = read_fixture(MODEL_FIXTURE);
    let mut state = 0x9e3779b97f4a7c15u64;
    let mut next = move || {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        state
    };
    for _ in 0..200 {
        let mut evil = bytes.clone();
        let stomps = (next() % 8 + 1) as usize;
        for _ in 0..stomps {
            let at = (next() % evil.len() as u64) as usize;
            evil[at] = (next() & 0xff) as u8;
        }
        let _ = load_model(&evil); // must return, Ok or Err
    }
}

/// Rewrites the model fixture and its id. Run explicitly (`-- --ignored`)
/// only for an intentional wire-format or initialisation change.
#[test]
#[ignore = "regenerates the committed golden model fixture"]
fn regenerate_golden_fixtures() {
    std::fs::create_dir_all(fixture_path("")).unwrap();
    let model = ConvAutoencoder::new(golden_config());
    let bytes = save_model(&model);
    std::fs::write(fixture_path(MODEL_FIXTURE), &bytes).unwrap();
    std::fs::write(fixture_path(ID_FIXTURE), format!("{}\n", model_id(&model))).unwrap();
}
