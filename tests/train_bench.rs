//! Release-mode training benchmark: measures the paper's offline stage
//! (SWAE training throughput) and what the trained model buys at
//! compression time (trained vs. untrained compression ratio under the
//! AE-only policy, plus how often the adaptive policy actually picks the
//! AE), and writes `BENCH_train.json` (CI's bench artifact).
//!
//! Timings only mean something under the optimized profile, so the test is
//! ignored in debug builds (CI runs it via `cargo test --release`).

use aesz_repro::core::training::{train_swae_for_field, TrainingOptions};
use aesz_repro::core::AeSz;
use aesz_repro::datagen::Application;
use aesz_repro::{Compressor, Dims, ErrorBound, PredictorPolicy};
use std::time::Instant;

#[test]
#[cfg_attr(debug_assertions, ignore = "training throughput needs --release")]
fn training_throughput_and_trained_vs_untrained_ratio_are_recorded() {
    let dims = Dims::d2(256, 256);
    let field = Application::CesmCldhgh.generate(dims, 3);
    let bound = ErrorBound::rel(1e-3);
    let opts = TrainingOptions::default_for_rank(2);

    // Offline stage: train the SWAE and time it.
    let t0 = Instant::now();
    let model = train_swae_for_field(std::slice::from_ref(&field), &opts);
    let train_s = t0.elapsed().as_secs_f64();
    let blocks = opts.max_blocks.min(field.block_count(opts.block_size));
    let block_bytes = blocks * opts.block_size * opts.block_size * 4 * opts.epochs;

    let mut trained = AeSz::from_model(model);
    let model_bytes = Compressor::embedded_model(&trained)
        .expect("trained")
        .frame
        .len();

    // AE-only isolates the model's prediction quality in the ratio; the
    // untrained comparison is a freshly initialised twin of the same
    // architecture (same geometry, untrained weights).
    let ratio = |bytes: usize| (field.len() * 4) as f64 / bytes as f64;
    trained.set_policy(PredictorPolicy::AeOnly);
    let (stream, _) = trained
        .compress_with_report(&field, bound)
        .expect("compress");
    let ratio_trained_aeonly = ratio(stream.len());
    let twin_cfg = trained.model().config().clone();
    let mut twin = AeSz::from_model(aesz_repro::nn::models::conv_ae::ConvAutoencoder::new(
        twin_cfg,
    ));
    twin.set_policy(PredictorPolicy::AeOnly);
    let (stream, _) = twin.compress_with_report(&field, bound).expect("compress");
    let ratio_untrained_aeonly = ratio(stream.len());

    // Adaptive: how often the trained AE beats (mean-)Lorenzo, and the
    // resulting ratio.
    trained.set_policy(PredictorPolicy::Adaptive);
    let (stream, report) = trained
        .compress_with_report(&field, bound)
        .expect("compress");
    let ratio_adaptive = ratio(stream.len());

    assert!(
        ratio_trained_aeonly >= ratio_untrained_aeonly * 0.95,
        "training should not hurt the AE-only ratio: {ratio_untrained_aeonly:.2} -> \
         {ratio_trained_aeonly:.2}"
    );

    let json = format!(
        "{{\n  \"field\": \"cesm-cldhgh {dims}\",\n  \"bound\": \"{bound}\",\n  \
         \"train\": {{\n    \"epochs\": {}, \"blocks\": {blocks}, \"block_size\": {},\n    \
         \"seconds\": {train_s:.3}, \"train_mbps\": {:.3},\n    \"model_file_bytes\": \
         {model_bytes}\n  }},\n  \"compress\": {{\n    \"ratio_untrained_aeonly\": \
         {ratio_untrained_aeonly:.3},\n    \"ratio_trained_aeonly\": \
         {ratio_trained_aeonly:.3},\n    \"ratio_trained_adaptive\": {ratio_adaptive:.3},\n    \
         \"adaptive_ae_fraction\": {:.4}\n  }}\n}}\n",
        opts.epochs,
        opts.block_size,
        block_bytes as f64 / 1e6 / train_s,
        report.ae_fraction(),
    );
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/BENCH_train.json");
    std::fs::write(path, &json).expect("write BENCH_train.json");
    println!("wrote {path}:\n{json}");
}
