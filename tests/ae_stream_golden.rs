//! Golden lock: AE codec streams must stay byte-identical across kernel
//! rewrites.
//!
//! The hashes below were captured from the direct-loop (pre-GEMM) nn kernels
//! on the deterministic `common::trained_registry()` models, so they pin the
//! "before" side of the before/after bit-identity requirement: any change to
//! the inference path that perturbs a single output bit of AE-SZ, AE-A or
//! AE-B shows up here as a changed stream or reconstruction hash. The
//! untrained-model case is covered through AE-SZ, the only AE codec that
//! compresses with fresh weights (AE-A/AE-B refuse to run untrained, which
//! the conformance suite already locks in).

mod common;

use aesz_repro::core::{AeSz, AeSzConfig};
use aesz_repro::metrics::{CodecId, Compressor, ErrorBound};
use aesz_repro::nn::{AeConfig, ConvAutoencoder};

/// FNV-1a over the byte stream: dependency-free and stable across platforms.
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

fn hash_f32s(values: &[f32]) -> u64 {
    let mut bytes = Vec::with_capacity(values.len() * 4);
    for v in values {
        bytes.extend_from_slice(&v.to_le_bytes());
    }
    fnv1a(&bytes)
}

/// `(codec, stream hash, reconstruction hash)` captured before the GEMM
/// rewrite. Regenerate by running this test and copying the printed table —
/// but only if a stream format change (never a kernel change) requires it.
const TRAINED_GOLDEN: [(CodecId, u64, u64); 3] = [
    (CodecId::AeSz, 0x96a5_08bb_9a80_a92c, 0xbc96_80ed_12f9_ce68),
    (CodecId::AeA, 0xc3fe_b621_ec38_2d48, 0x66c0_b6ce_0822_14b9),
    (CodecId::AeB, 0x003a_ad04_e982_5cba, 0x889c_6844_38c9_c7c7),
];

const UNTRAINED_AESZ_GOLDEN: (u64, u64) = (0x4aa8_8ea0_6b59_bfc9, 0xbc96_80ed_12f9_ce68);

#[test]
fn ae_streams_match_the_pre_gemm_golden_hashes() {
    let registry = common::trained_registry();
    let bound = ErrorBound::rel(1e-3);

    let mut got = Vec::new();
    for (id, _, _) in TRAINED_GOLDEN {
        let field = common::test_field(id);
        let mut codec = registry.fork(id).expect("registered");
        let stream = codec.compress(&field, bound).expect("compress");
        let recon = codec.decompress(&stream).expect("decompress");
        got.push((id, fnv1a(&stream), hash_f32s(recon.as_slice())));
    }

    // Untrained coverage: AE-SZ compresses with freshly initialised weights.
    let fresh = ConvAutoencoder::new(AeConfig {
        spatial_rank: 2,
        block_size: 16,
        latent_dim: 4,
        channels: vec![4],
        variational: false,
        seed: 123,
    });
    let mut untrained = AeSz::new(
        fresh,
        AeSzConfig {
            block_size: 16,
            ..AeSzConfig::default_2d()
        },
    );
    let field = common::field_2d();
    let stream = untrained.compress(&field, bound).expect("compress");
    let recon = untrained.decompress(&stream).expect("decompress");
    let untrained_got = (fnv1a(&stream), hash_f32s(recon.as_slice()));

    for (id, stream_hash, recon_hash) in &got {
        println!("    (CodecId::{id:?}, 0x{stream_hash:016x}, 0x{recon_hash:016x}),");
    }
    println!(
        "untrained aesz: (0x{:016x}, 0x{:016x})",
        untrained_got.0, untrained_got.1
    );

    let want: Vec<(CodecId, u64, u64)> = TRAINED_GOLDEN.to_vec();
    assert_eq!(
        got, want,
        "trained AE stream bits drifted from the golden lock"
    );
    assert_eq!(
        untrained_got, UNTRAINED_AESZ_GOLDEN,
        "untrained AE-SZ stream bits drifted from the golden lock"
    );
}
