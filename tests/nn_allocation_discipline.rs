//! Allocation discipline of the NN inference path (see README
//! "Performance"): once a resident [`NnScratch`] and output buffer have
//! warmed up, `encode_blocks_into` / `decode_latents_into` must perform
//! **zero** heap allocations per call — the whole forward pass runs in the
//! caller-owned scratch. That is the contract the resident compressor forks
//! (`AeSz`, `AeA`, `AeB`, and the per-worker forks in `aesz serve`) rely on
//! for their amortized O(1)-allocations-per-block hot loops.
//!
//! The inference path also must not touch the training caches: `infer_into`
//! takes `&self`, so cache writes are ruled out at the type level — this
//! binary exercises encode/decode through a shared reference to make that
//! visible — and the bit-identity of the two paths is locked by
//! `kernel_differential.rs` and the per-layer tests in `crates/nn`.
//!
//! This binary holds exactly one `#[test]` so the measured regions never
//! interleave with another test's allocations.

mod common;

use aesz_repro::nn::{AeConfig, ConvAutoencoder, NnScratch};

#[global_allocator]
static ALLOC: common::alloc::CountingAlloc = common::alloc::CountingAlloc::new();

/// Allocating calls made by `f`.
fn count_allocations<R>(f: impl FnOnce() -> R) -> (u64, R) {
    let before = ALLOC.allocations();
    let result = f();
    (ALLOC.allocations() - before, result)
}

#[test]
fn warm_inference_path_performs_no_per_call_allocations() {
    // The AE-B-like 2D geometry: 16×16 blocks through a strided conv stack.
    let model = ConvAutoencoder::new(AeConfig {
        spatial_rank: 2,
        block_size: 16,
        latent_dim: 8,
        channels: vec![8, 16],
        variational: true,
        seed: 11,
    });
    let batch = 16usize; // blocks per call, the compressors' chunk size
    let block_len = model.config().block_len();
    let blocks: Vec<f32> = (0..batch * block_len)
        .map(|i| ((i as f32) * 0.37).sin())
        .collect();

    let mut scratch = NnScratch::new();
    let (mut latents, mut decoded) = (Vec::new(), Vec::new());

    // Warm-up: first calls size the scratch and output buffers.
    model
        .encode_blocks_into(&blocks, batch, &mut latents, &mut scratch)
        .expect("shaped batch");
    model
        .decode_latents_into(&latents, batch, &mut decoded, &mut scratch)
        .expect("shaped latents");

    // Steady state: every subsequent encode+decode round must run entirely
    // inside the warm buffers. 32 rounds × 16 blocks = 512 blocks; a single
    // per-block (or even per-call) allocation would fail the == 0 below.
    let rounds = 32u64;
    let (n_alloc, checksum) = count_allocations(|| {
        let mut acc = 0.0f64;
        for _ in 0..rounds {
            model
                .encode_blocks_into(&blocks, batch, &mut latents, &mut scratch)
                .expect("shaped batch");
            model
                .decode_latents_into(&latents, batch, &mut decoded, &mut scratch)
                .expect("shaped latents");
            acc += f64::from(decoded[0]);
        }
        acc
    });
    assert!(checksum.is_finite());
    assert_eq!(
        n_alloc, 0,
        "warm inference allocated {n_alloc} times over {rounds} encode+decode rounds"
    );

    // And the outputs of the warm path are the same every round (the loop
    // above would have amplified any scratch-reuse corruption).
    let mut latents2 = Vec::new();
    let mut scratch2 = NnScratch::new();
    model
        .encode_blocks_into(&blocks, batch, &mut latents2, &mut scratch2)
        .expect("shaped batch");
    let a: Vec<u32> = latents.iter().map(|v| v.to_bits()).collect();
    let b: Vec<u32> = latents2.iter().map(|v| v.to_bits()).collect();
    assert_eq!(a, b, "fresh scratch and warm scratch disagree");
}
