//! Release-mode per-codec throughput measurement and speed gate.
//!
//! Every registered codec compresses and decompresses an 8 MB field
//! (rank matched to what the codec supports) through the whole-field
//! path — the same path the kernel rewrites in `crates/codec`,
//! `crates/predictors`, `crates/baselines` and `crates/core` target.
//! The measured MB/s land in `BENCH_speed.json` (CI's speed artifact),
//! and `bench-floor.toml` records the per-codec floor: the test fails
//! if any codec drops more than 20% below its floor, so a kernel
//! regression breaks the build instead of silently eating the speedup.
//!
//! Timings only mean something under the optimized profile, so the
//! suite is ignored in debug builds (CI runs it via
//! `cargo test --release -q --test speed_bench`).

use aesz_repro::datagen::Application;
use aesz_repro::metrics::{CodecId, ErrorBound};
use aesz_repro::Dims;
use std::fmt::Write as _;
use std::time::Instant;

mod common;

/// Stable lowercase key for JSON/TOML (CodecId::name has dots and dashes).
fn key(id: CodecId) -> &'static str {
    match id {
        CodecId::AeSz => "aesz",
        CodecId::Sz2 => "sz2",
        CodecId::Zfp => "zfp",
        CodecId::SzAuto => "szauto",
        CodecId::SzInterp => "szinterp",
        CodecId::AeA => "aea",
        CodecId::AeB => "aeb",
    }
}

struct Measured {
    id: CodecId,
    field_desc: String,
    raw_bytes: usize,
    stream_bytes: usize,
    compress_mbps: f64,
    decompress_mbps: f64,
}

/// Floors parsed from `bench-floor.toml`: `(codec key, compress, decompress)`.
///
/// The file is plain `[section]` + `key = float` TOML; parsing it by hand
/// keeps the gate dependency-free (the workspace is offline).
fn parse_floors(src: &str) -> Vec<(String, f64, f64)> {
    let mut floors: Vec<(String, f64, f64)> = Vec::new();
    for line in src.lines() {
        let line = line.split('#').next().unwrap_or("").trim();
        if line.is_empty() {
            continue;
        }
        if let Some(name) = line.strip_prefix('[').and_then(|l| l.strip_suffix(']')) {
            floors.push((name.trim().to_string(), f64::NAN, f64::NAN));
        } else if let Some((k, v)) = line.split_once('=') {
            let entry = floors.last_mut().expect("key before any [codec] section");
            let value: f64 = v.trim().parse().expect("floor values are floats");
            match k.trim() {
                "compress_mbps" => entry.1 = value,
                "decompress_mbps" => entry.2 = value,
                other => panic!("unknown floor key {other:?}"),
            }
        }
    }
    for (name, c, d) in &floors {
        assert!(
            c.is_finite() && d.is_finite(),
            "[{name}] must set both compress_mbps and decompress_mbps"
        );
    }
    floors
}

#[test]
#[cfg_attr(debug_assertions, ignore = "throughput measurement needs --release")]
fn per_codec_throughput_is_recorded_and_gated() {
    // 8 MB fields, rank-matched: AE-B only accepts rank 3; the 2D codecs
    // get a 2048x1024 CESM slab of the same byte size.
    let dims_2d = Dims::d2(2048, 1024);
    let field_2d = Application::CesmCldhgh.generate(dims_2d, 9);
    let dims_3d = Dims::d3(128, 128, 128);
    let field_3d = Application::NyxBaryonDensity.generate(dims_3d, 3);
    assert!(field_2d.len() * 4 >= 8 * 1024 * 1024);
    assert!(field_3d.len() * 4 >= 8 * 1024 * 1024);

    let registry = common::trained_registry();
    let bound = ErrorBound::rel(1e-3);

    let mut results: Vec<Measured> = Vec::new();
    for id in CodecId::all() {
        let (field, desc) = match id {
            // The learned codecs were trained on rank-2 blocks; AE-B is the
            // rank-3-only convolutional baseline.
            CodecId::AeB => (&field_3d, format!("nyx-baryon {dims_3d}")),
            _ => (&field_2d, format!("cesm {dims_2d}")),
        };
        let raw_bytes = field.len() * 4;
        let mut codec = registry.fork(id).expect("every codec is registered");

        let t0 = Instant::now();
        let stream = codec.compress(field, bound).expect("compress");
        let compress_s = t0.elapsed().as_secs_f64();
        let t0 = Instant::now();
        let recon = codec.decompress(&stream).expect("decompress");
        let decompress_s = t0.elapsed().as_secs_f64();
        assert_eq!(recon.dims(), field.dims(), "{id} round trip lost the dims");

        let mbps = |secs: f64| raw_bytes as f64 / 1e6 / secs;
        results.push(Measured {
            id,
            field_desc: desc,
            raw_bytes,
            stream_bytes: stream.len(),
            compress_mbps: mbps(compress_s),
            decompress_mbps: mbps(decompress_s),
        });
    }

    // BENCH_speed.json: one object per codec, keyed by the stable name.
    let mut json = String::from("{\n  \"bound\": \"rel 1e-3\",\n  \"codecs\": {\n");
    for (i, m) in results.iter().enumerate() {
        let comma = if i + 1 < results.len() { "," } else { "" };
        let _ = write!(
            json,
            "    \"{}\": {{\n      \"name\": \"{}\", \"field\": \"{}\",\n      \
             \"raw_bytes\": {}, \"stream_bytes\": {},\n      \
             \"compress_mbps\": {:.2}, \"decompress_mbps\": {:.2}\n    }}{}\n",
            key(m.id),
            m.id.name(),
            m.field_desc,
            m.raw_bytes,
            m.stream_bytes,
            m.compress_mbps,
            m.decompress_mbps,
            comma,
        );
    }
    json.push_str("  }\n}\n");
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/BENCH_speed.json");
    std::fs::write(path, &json).expect("write BENCH_speed.json");
    println!("wrote {path}:\n{json}");

    // The gate: every codec with a recorded floor must stay within 20% of
    // it, in both directions.
    let floor_path = concat!(env!("CARGO_MANIFEST_DIR"), "/bench-floor.toml");
    let floors = parse_floors(&std::fs::read_to_string(floor_path).expect("read bench-floor.toml"));
    assert_eq!(
        floors.len(),
        results.len(),
        "bench-floor.toml must carry a floor for every codec"
    );
    let mut failures = String::new();
    for (name, floor_c, floor_d) in &floors {
        let m = results
            .iter()
            .find(|m| key(m.id) == name)
            .unwrap_or_else(|| panic!("bench-floor.toml names unknown codec {name:?}"));
        for (dir, measured, floor) in [
            ("compress", m.compress_mbps, *floor_c),
            ("decompress", m.decompress_mbps, *floor_d),
        ] {
            if measured < floor * 0.8 {
                let _ = writeln!(
                    failures,
                    "  {name} {dir}: {measured:.2} MB/s is more than 20% below \
                     the {floor:.2} MB/s floor"
                );
            }
        }
    }
    assert!(failures.is_empty(), "speed gate failed:\n{failures}");
}
