//! Release-mode per-codec throughput measurement and speed gate.
//!
//! Every registered codec compresses and decompresses an 8 MB field
//! (rank matched to what the codec supports) through the whole-field
//! path — the same path the kernel rewrites in `crates/codec`,
//! `crates/predictors`, `crates/baselines`, `crates/core` and the
//! GEMM-lowered inference engine in `crates/nn` target. The measured
//! MB/s land in `BENCH_speed.json` (CI's speed artifact) together with
//! two informational extras: the rank-3-capable codecs re-measured on
//! the same Nyx 128³ field AE-B runs on (`<codec>@nyx` rows, so the
//! cross-codec comparison is same-field instead of same-size), and a
//! per-layer time breakdown of the NN inference stacks. `bench-floor.toml`
//! records the per-codec floor for the seven canonical rows: the test
//! fails if any gated codec drops more than 20% below its floor, so a
//! kernel regression breaks the build instead of silently eating the
//! speedup. The `@nyx` rows are not gated.
//!
//! Timings only mean something under the optimized profile, so the
//! suite is ignored in debug builds (CI runs it via
//! `cargo test --release -q --test speed_bench`).

use aesz_repro::datagen::Application;
use aesz_repro::metrics::{CodecId, ErrorBound};
use aesz_repro::nn::{AeConfig, ConvAutoencoder, NnScratch, Shape};
use aesz_repro::{Dims, Field, Registry};
use std::fmt::Write as _;
use std::time::Instant;

mod common;

/// Stable lowercase key for JSON/TOML (CodecId::name has dots and dashes).
fn key(id: CodecId) -> &'static str {
    match id {
        CodecId::AeSz => "aesz",
        CodecId::Sz2 => "sz2",
        CodecId::Zfp => "zfp",
        CodecId::SzAuto => "szauto",
        CodecId::SzInterp => "szinterp",
        CodecId::AeA => "aea",
        CodecId::AeB => "aeb",
    }
}

struct Measured {
    key: String,
    name: String,
    field_desc: String,
    raw_bytes: usize,
    stream_bytes: usize,
    compress_mbps: f64,
    decompress_mbps: f64,
    /// Canonical rows are gated against `bench-floor.toml`; the same-field
    /// `@nyx` comparison rows are informational.
    gated: bool,
}

/// One whole-field compress + decompress round through a fresh fork.
fn measure(
    registry: &Registry,
    id: CodecId,
    field: &Field,
    row_key: String,
    field_desc: String,
    gated: bool,
) -> Measured {
    let raw_bytes = field.len() * 4;
    let bound = ErrorBound::rel(1e-3);
    let mut codec = registry.fork(id).expect("every codec is registered");

    let t0 = Instant::now();
    let stream = codec.compress(field, bound).expect("compress");
    let compress_s = t0.elapsed().as_secs_f64();
    let t0 = Instant::now();
    let recon = codec.decompress(&stream).expect("decompress");
    let decompress_s = t0.elapsed().as_secs_f64();
    assert_eq!(
        recon.dims(),
        field.dims(),
        "{id:?} round trip lost the dims"
    );

    let mbps = |secs: f64| raw_bytes as f64 / 1e6 / secs;
    Measured {
        key: row_key,
        name: id.name().to_string(),
        field_desc,
        raw_bytes,
        stream_bytes: stream.len(),
        compress_mbps: mbps(compress_s),
        decompress_mbps: mbps(decompress_s),
        gated,
    }
}

struct LayerTiming {
    stack: &'static str,
    label: String,
    out_elems: usize,
    ms_per_batch: f64,
}

/// Time each layer of the inference stacks on AE-B's model geometry
/// (3D, block 16, channels [8, 8], latent 64) over a 16-block batch — the
/// chunk size the AE compressors feed `infer_into` with. Untrained weights
/// time exactly like trained ones (same shapes, same kernels).
fn nn_layer_breakdown() -> Vec<LayerTiming> {
    let model = ConvAutoencoder::new(AeConfig {
        spatial_rank: 3,
        block_size: 16,
        latent_dim: 64,
        channels: vec![8, 8],
        variational: false,
        seed: 7,
    });
    let batch = 16usize;
    let block_len = model.config().block_len();
    let blocks: Vec<f32> = (0..batch * block_len)
        .map(|i| ((i as f32) * 0.37).sin())
        .collect();
    let latents = vec![0.25f32; batch * model.config().latent_dim];

    let mut timings = Vec::new();
    let stacks: [(&'static str, &aesz_repro::nn::Sequential, Vec<f32>, Shape); 2] = [
        (
            "encoder",
            model.encoder_layers(),
            blocks,
            Shape::new(&[batch, 1, 16, 16, 16]),
        ),
        (
            "decoder",
            model.decoder_layers(),
            latents,
            Shape::new(&[batch, model.config().latent_dim]),
        ),
    ];
    for (stack, seq, input, in_shape) in stacks {
        let mut scratch = NnScratch::new();
        let mut cur = input;
        let mut shape = in_shape;
        let mut out = Vec::new();
        for (i, layer) in seq.layers().iter().enumerate() {
            // Warm the scratch, then time steady-state repetitions.
            let out_shape = layer
                .infer_into(&cur, shape, &mut out, &mut scratch)
                .expect("bench shapes are valid");
            let reps = 5u32;
            let t0 = Instant::now();
            for _ in 0..reps {
                layer
                    .infer_into(&cur, shape, &mut out, &mut scratch)
                    .expect("bench shapes are valid");
            }
            let ms = t0.elapsed().as_secs_f64() * 1e3 / f64::from(reps);
            timings.push(LayerTiming {
                stack,
                label: format!("{i}:{}", layer.name()),
                out_elems: out_shape.len(),
                ms_per_batch: ms,
            });
            std::mem::swap(&mut cur, &mut out);
            shape = out_shape;
        }
    }
    timings
}

/// Floors parsed from `bench-floor.toml`: `(codec key, compress, decompress)`.
///
/// The file is plain `[section]` + `key = float` TOML; parsing it by hand
/// keeps the gate dependency-free (the workspace is offline).
fn parse_floors(src: &str) -> Vec<(String, f64, f64)> {
    let mut floors: Vec<(String, f64, f64)> = Vec::new();
    for line in src.lines() {
        let line = line.split('#').next().unwrap_or("").trim();
        if line.is_empty() {
            continue;
        }
        if let Some(name) = line.strip_prefix('[').and_then(|l| l.strip_suffix(']')) {
            floors.push((name.trim().to_string(), f64::NAN, f64::NAN));
        } else if let Some((k, v)) = line.split_once('=') {
            let entry = floors.last_mut().expect("key before any [codec] section");
            let value: f64 = v.trim().parse().expect("floor values are floats");
            match k.trim() {
                "compress_mbps" => entry.1 = value,
                "decompress_mbps" => entry.2 = value,
                other => panic!("unknown floor key {other:?}"),
            }
        }
    }
    for (name, c, d) in &floors {
        assert!(
            c.is_finite() && d.is_finite(),
            "[{name}] must set both compress_mbps and decompress_mbps"
        );
    }
    floors
}

#[test]
#[cfg_attr(debug_assertions, ignore = "throughput measurement needs --release")]
fn per_codec_throughput_is_recorded_and_gated() {
    // 8 MB fields, rank-matched: AE-B only accepts rank 3; the 2D codecs
    // get a 2048x1024 CESM slab of the same byte size.
    let dims_2d = Dims::d2(2048, 1024);
    let field_2d = Application::CesmCldhgh.generate(dims_2d, 9);
    let dims_3d = Dims::d3(128, 128, 128);
    let field_3d = Application::NyxBaryonDensity.generate(dims_3d, 3);
    assert!(field_2d.len() * 4 >= 8 * 1024 * 1024);
    assert!(field_3d.len() * 4 >= 8 * 1024 * 1024);

    let registry = common::trained_registry();

    // The seven canonical (gated) rows.
    let mut results: Vec<Measured> = Vec::new();
    for id in CodecId::all() {
        let (field, desc) = match id {
            // The learned codecs were trained on rank-2 blocks; AE-B is the
            // rank-3-only convolutional baseline.
            CodecId::AeB => (&field_3d, format!("nyx-baryon {dims_3d}")),
            _ => (&field_2d, format!("cesm {dims_2d}")),
        };
        results.push(measure(
            &registry,
            id,
            field,
            key(id).to_string(),
            desc,
            true,
        ));
    }

    // Same-field comparison rows: every rank-3-capable codec on the exact
    // field AE-B is measured on, so the cross-codec columns compare like
    // with like (informational — no floors).
    for id in [
        CodecId::Sz2,
        CodecId::Zfp,
        CodecId::SzAuto,
        CodecId::SzInterp,
        CodecId::AeA,
    ] {
        results.push(measure(
            &registry,
            id,
            &field_3d,
            format!("{}@nyx", key(id)),
            format!("nyx-baryon {dims_3d}"),
            false,
        ));
    }

    let layer_timings = nn_layer_breakdown();

    // BENCH_speed.json: one object per codec row, keyed by the stable name,
    // plus the per-layer NN inference breakdown.
    let mut json = String::from("{\n  \"bound\": \"rel 1e-3\",\n  \"codecs\": {\n");
    for (i, m) in results.iter().enumerate() {
        let comma = if i + 1 < results.len() { "," } else { "" };
        let _ = write!(
            json,
            "    \"{}\": {{\n      \"name\": \"{}\", \"field\": \"{}\", \"gated\": {},\n      \
             \"raw_bytes\": {}, \"stream_bytes\": {},\n      \
             \"compress_mbps\": {:.2}, \"decompress_mbps\": {:.2}\n    }}{}\n",
            m.key,
            m.name,
            m.field_desc,
            m.gated,
            m.raw_bytes,
            m.stream_bytes,
            m.compress_mbps,
            m.decompress_mbps,
            comma,
        );
    }
    json.push_str("  },\n");
    json.push_str(
        "  \"nn_layer_ms_per_16_block_batch\": {\n    \
         \"model\": \"AE-B geometry: 3D, block 16, channels [8, 8], latent 64\",\n",
    );
    for (stack_i, stack) in ["encoder", "decoder"].iter().enumerate() {
        let rows: Vec<&LayerTiming> = layer_timings.iter().filter(|t| t.stack == *stack).collect();
        let _ = writeln!(json, "    \"{stack}\": [");
        for (i, t) in rows.iter().enumerate() {
            let comma = if i + 1 < rows.len() { "," } else { "" };
            let _ = writeln!(
                json,
                "      {{ \"layer\": \"{}\", \"out_elems\": {}, \"ms\": {:.3} }}{}",
                t.label, t.out_elems, t.ms_per_batch, comma,
            );
        }
        let comma = if stack_i == 0 { "," } else { "" };
        let _ = writeln!(json, "    ]{comma}");
    }
    json.push_str("  }\n}\n");
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/BENCH_speed.json");
    std::fs::write(path, &json).expect("write BENCH_speed.json");
    println!("wrote {path}:\n{json}");

    // The gate: every gated codec must have a floor and stay within 20% of
    // it, in both directions. Informational rows carry no floors.
    let floor_path = concat!(env!("CARGO_MANIFEST_DIR"), "/bench-floor.toml");
    let floors = parse_floors(&std::fs::read_to_string(floor_path).expect("read bench-floor.toml"));
    for m in results.iter().filter(|m| m.gated) {
        assert!(
            floors.iter().any(|(name, _, _)| *name == m.key),
            "bench-floor.toml is missing a floor for {}",
            m.key
        );
    }
    let mut failures = String::new();
    for (name, floor_c, floor_d) in &floors {
        let m = results
            .iter()
            .find(|m| m.gated && m.key == *name)
            .unwrap_or_else(|| panic!("bench-floor.toml names unknown codec {name:?}"));
        for (dir, measured, floor) in [
            ("compress", m.compress_mbps, *floor_c),
            ("decompress", m.decompress_mbps, *floor_d),
        ] {
            if measured < floor * 0.8 {
                let _ = writeln!(
                    failures,
                    "  {name} {dir}: {measured:.2} MB/s is more than 20% below \
                     the {floor:.2} MB/s floor"
                );
            }
        }
    }
    assert!(failures.is_empty(), "speed gate failed:\n{failures}");
}
