//! Hostile-input conformance of the `AESP` service protocol, mirroring the
//! discipline `stream_conformance.rs` applies to `AESC`/`AESA` bytes:
//!
//! * truncating a well-formed message at *every* byte offset must produce a
//!   clean error — never a panic, never a silently short message;
//! * flipping any single bit in the fixed header must be rejected (or, for
//!   the type byte, at worst re-typed — still never a panic);
//! * hostile declared lengths (`u64::MAX`, 2^32 wraparounds) must be
//!   refused *before* any length-derived allocation.

use aesz_repro::metrics::protocol::{
    decode_request, decode_response, header_bytes, ErrorCode, Limits, ModelEntry, MsgType, Request,
    Response, ServerStats, TrainKnobs, HEADER_LEN,
};
use aesz_repro::metrics::{CodecId, ModelId};
use aesz_repro::ErrorBound;

mod common;

/// One message of every request type, with non-trivial payloads.
fn sample_requests() -> Vec<Request> {
    vec![
        Request::Compress {
            codec: CodecId::Zfp,
            bound: ErrorBound::rel(1e-3),
            field: common::field_2d(),
        },
        Request::Decompress {
            bytes: (0u16..600).map(|b| (b % 251) as u8).collect(),
        },
        Request::Train {
            codec: CodecId::AeSz,
            knobs: TrainKnobs {
                epochs: 1,
                block: 16,
                latent: 4,
                max_blocks: 6,
                seed: 11,
            },
            field: common::field_2d(),
        },
        Request::Health,
        Request::Stats,
        Request::ListModels,
    ]
}

/// One message of every response type.
fn sample_responses() -> Vec<Response> {
    let mut stats = ServerStats {
        uptime_ms: 5_000,
        requests: 41,
        ok: 40,
        errors: 1,
        busy_rejections: 3,
        bytes_in: 1 << 20,
        bytes_out: 1 << 19,
        queue_depth: 2,
        connections_active: 4,
        connections_total: 44,
        model_cache_hits: 12,
        model_resolutions: 1,
        models_resident: 2,
        ..ServerStats::default()
    };
    stats.compress_by_codec[ServerStats::codec_slot(CodecId::Sz2)] = 17;
    stats.decompress_by_codec[ServerStats::codec_slot(CodecId::AeB)] = 23;
    vec![
        Response::CompressOk {
            stream: (0u16..300).map(|b| (b % 253) as u8).collect(),
        },
        Response::DecompressOk {
            field: common::field_3d(),
        },
        Response::TrainOk {
            id: ModelId::of(b"protocol-conformance weights"),
            frame: vec![7; 96],
        },
        Response::HealthOk {
            uptime_ms: 1234,
            queue_depth: 0,
        },
        Response::StatsOk(stats),
        Response::ModelList {
            entries: vec![
                ModelEntry {
                    id: ModelId::of(b"a"),
                    codec: Some(CodecId::AeSz),
                    verified: true,
                    param_bytes: 4096,
                },
                ModelEntry {
                    id: ModelId::of(b"b"),
                    codec: None,
                    verified: false,
                    param_bytes: 0,
                },
            ],
        },
        Response::Error {
            code: ErrorCode::Unsupported,
            message: "unit under test".into(),
        },
        Response::Busy { queue_depth: 9 },
    ]
}

#[test]
fn every_message_roundtrips_whole() {
    let limits = Limits::default();
    for req in sample_requests() {
        let bytes = req.encode();
        let (back, used) = decode_request(&bytes, &limits).expect("request roundtrip");
        assert_eq!(used, bytes.len());
        assert_eq!(back.msg_type(), req.msg_type());
    }
    for resp in sample_responses() {
        let bytes = resp.encode();
        let (back, used) = decode_response(&bytes, &limits).expect("response roundtrip");
        assert_eq!(used, bytes.len());
        assert_eq!(back.msg_type(), resp.msg_type());
    }
}

#[test]
fn truncation_at_every_offset_errors_cleanly() {
    let limits = Limits::default();
    for req in sample_requests() {
        let bytes = req.encode();
        for cut in 0..bytes.len() {
            let r = decode_request(&bytes[..cut], &limits);
            assert!(
                r.is_err(),
                "{:?} truncated to {cut}/{} decoded anyway",
                req.msg_type(),
                bytes.len()
            );
        }
    }
    for resp in sample_responses() {
        let bytes = resp.encode();
        for cut in 0..bytes.len() {
            let r = decode_response(&bytes[..cut], &limits);
            assert!(
                r.is_err(),
                "{:?} truncated to {cut}/{} decoded anyway",
                resp.msg_type(),
                bytes.len()
            );
        }
    }
}

#[test]
fn single_bit_flips_in_the_header_never_pass_silently() {
    let limits = Limits::default();
    let originals = [
        Request::Health.encode(),
        Request::Decompress {
            bytes: vec![1, 2, 3, 4, 5, 6, 7, 8],
        }
        .encode(),
    ];
    for bytes in &originals {
        let want = decode_request(bytes, &limits).expect("pristine decodes").0;
        for byte in 0..HEADER_LEN {
            for bit in 0..8u8 {
                let mut evil = bytes.clone();
                evil[byte] ^= 1 << bit;
                match decode_request(&evil, &limits) {
                    // Flips in magic, version, or the reserved bytes must be
                    // rejected outright.
                    Err(_) => {}
                    Ok((got, _)) if byte == 5 => {
                        // A type-byte flip may land on another valid request
                        // type; the decoded message must reflect that — a
                        // flip can never yield the original message back.
                        assert_ne!(got.msg_type(), want.msg_type(), "byte 5 bit {bit}");
                    }
                    Ok(_) if byte >= 8 => {
                        // A length-byte flip shrinking the declared length
                        // can legally decode a prefix (opaque payloads have
                        // no internal length); growing it must have errored,
                        // which the Err arm already accepted.
                    }
                    Ok(_) => panic!("flip of header byte {byte} bit {bit} passed"),
                }
            }
        }
    }
}

#[test]
fn hostile_declared_lengths_are_refused_before_allocation() {
    let limits = Limits::default();
    // Each hostile length rides a real header with a tiny actual body; a
    // decoder that believed the length and pre-allocated would OOM long
    // before the assert.
    for len in [
        u64::MAX,
        u64::MAX - (HEADER_LEN as u64) + 1,
        (1u64 << 32) + 17,
        (1u64 << 63) | 42,
        limits.max_body + 1,
    ] {
        for msg in [MsgType::Compress, MsgType::Decompress, MsgType::Train] {
            let mut evil = header_bytes(msg, len).to_vec();
            evil.extend_from_slice(&[0u8; 64]);
            assert!(
                decode_request(&evil, &limits).is_err(),
                "{msg:?} with declared length {len} was accepted"
            );
        }
        let mut evil = header_bytes(MsgType::DecompressOk, len).to_vec();
        evil.extend_from_slice(&[0u8; 64]);
        assert!(
            decode_response(&evil, &limits).is_err(),
            "DecompressOk with declared length {len} was accepted"
        );
    }
}

#[test]
fn request_response_direction_is_enforced() {
    let limits = Limits::default();
    let req = Request::Health.encode();
    assert!(decode_response(&req, &limits).is_err());
    let resp = Response::Busy { queue_depth: 1 }.encode();
    assert!(decode_request(&resp, &limits).is_err());
}
