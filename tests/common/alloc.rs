//! A counting global allocator for the allocation-discipline tests.
//!
//! Wraps [`System`] and counts every allocating call (`alloc`,
//! `alloc_zeroed`, `realloc`); frees are not counted. The type lives here in
//! `tests/common` so any test binary can install it, but registration via
//! `#[global_allocator]` happens per binary — only
//! `tests/allocation_discipline.rs` does, so the rest of the suite runs on
//! the plain system allocator.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

/// System allocator plus an atomic count of allocating calls.
pub struct CountingAlloc {
    allocations: AtomicU64,
}

impl CountingAlloc {
    pub const fn new() -> Self {
        CountingAlloc {
            allocations: AtomicU64::new(0),
        }
    }

    /// Total allocating calls (alloc + alloc_zeroed + realloc) so far.
    pub fn allocations(&self) -> u64 {
        self.allocations.load(Ordering::Relaxed)
    }
}

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        self.allocations.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        self.allocations.fetch_add(1, Ordering::Relaxed);
        System.alloc_zeroed(layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        self.allocations.fetch_add(1, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }
}
