//! Shared helpers of the integration suites: deterministic test fields and a
//! registry whose learned codecs are cheaply trained, so all seven
//! compressors can produce and decode streams.
#![allow(dead_code)] // each test binary uses its own subset

pub mod alloc;

use aesz_repro::baselines::{AeA, AeB};
use aesz_repro::core::training::{train_swae_for_field, TrainingOptions};
use aesz_repro::core::{AeSz, AeSzConfig};
use aesz_repro::datagen::Application;
use aesz_repro::metrics::CodecId;
use aesz_repro::{Dims, Field, Registry};

/// The 2D field most codecs are exercised on (small, so the
/// truncation-at-every-offset loops stay fast).
pub fn field_2d() -> Field {
    Application::CesmCldhgh.generate(Dims::d2(32, 48), 50)
}

/// The 3D field used for AE-B (which only supports rank 3).
pub fn field_3d() -> Field {
    Application::Rtm.generate(Dims::d3(16, 16, 16), 50)
}

/// The field a codec is conformance-tested on.
pub fn test_field(id: CodecId) -> Field {
    match id {
        CodecId::AeB => field_3d(),
        _ => field_2d(),
    }
}

/// A registry whose learned codecs are (cheaply) trained, so all seven
/// compressors can produce and decode streams.
pub fn trained_registry() -> Registry {
    let mut registry = Registry::with_defaults();

    let train_2d = Application::CesmCldhgh.generate(Dims::d2(32, 48), 0);
    let opts = TrainingOptions {
        block_size: 16,
        latent_dim: 4,
        channels: vec![4],
        epochs: 1,
        max_blocks: 6,
        seed: 11,
        ..TrainingOptions::default_for_rank(2)
    };
    let model = train_swae_for_field(std::slice::from_ref(&train_2d), &opts);
    registry.register(Box::new(AeSz::new(
        model,
        AeSzConfig {
            block_size: 16,
            ..AeSzConfig::default_2d()
        },
    )));

    let mut ae_a = AeA::new(5);
    ae_a.train(std::slice::from_ref(&train_2d), 1, 6);
    registry.register(Box::new(ae_a));

    let train_3d = Application::Rtm.generate(Dims::d3(16, 16, 16), 0);
    let mut ae_b = AeB::new(7);
    ae_b.train(std::slice::from_ref(&train_3d), 1, 8);
    registry.register(Box::new(ae_b));

    registry
}
