//! Shared conformance suite over the unified compressor API: every
//! registered codec must roundtrip through the container frame, honour both
//! error-bound modes (unless it declares itself not error-bounded), survive
//! degenerate inputs, and reject — never panic on — truncated streams at
//! every offset, both at the frame level and inside the payload.

use aesz_repro::metrics::{
    container, max_abs_error, verify_error_bound, CodecId, CompressError, ErrorBound,
};
use aesz_repro::{Dims, Field};

mod common;
use common::{field_2d, test_field, trained_registry};

#[test]
fn roundtrip_honours_both_bound_modes() {
    let mut registry = trained_registry();
    for id in CodecId::all() {
        let field = test_field(id);
        let abs = 1e-2 * field.value_range() as f64;
        for bound in [ErrorBound::rel(1e-2), ErrorBound::abs(abs)] {
            let codec = registry.get_mut(id).expect("registered");
            let bounded = codec.is_error_bounded();
            let bytes = codec
                .compress(&field, bound)
                .unwrap_or_else(|e| panic!("{id} failed to compress ({bound}): {e}"));
            assert_eq!(container::peek(&bytes).unwrap().codec, id);
            let recon = codec
                .decompress(&bytes)
                .unwrap_or_else(|e| panic!("{id} failed to decode its own stream: {e}"));
            assert_eq!(recon.dims(), field.dims(), "{id} changed the dims");
            let resolved = bound.resolve(&field);
            if bounded {
                verify_error_bound(
                    field.as_slice(),
                    recon.as_slice(),
                    resolved,
                    resolved * 1e-3,
                )
                .unwrap_or_else(|e| panic!("{id} violated its bound ({bound}): {e}"));
            } else {
                // AE-B: fixed-rate, quality is whatever the network delivers —
                // but the reconstruction must still be sane.
                let (lo, hi) = field.min_max();
                let slack = (hi - lo) * 0.5;
                assert!(
                    recon
                        .as_slice()
                        .iter()
                        .all(|&v| v.is_finite() && v >= lo - slack && v <= hi + slack),
                    "{id} reconstruction left the data envelope"
                );
            }
        }
    }
}

#[test]
fn constant_fields_roundtrip_within_bound() {
    let mut registry = trained_registry();
    let bound = ErrorBound::rel(1e-3);
    for id in CodecId::all() {
        let dims = match id {
            CodecId::AeB => Dims::d3(16, 16, 16),
            _ => Dims::d2(24, 24),
        };
        let field = Field::from_vec(dims, vec![4.2; dims.len()]).unwrap();
        let codec = registry.get_mut(id).expect("registered");
        let bytes = codec
            .compress(&field, bound)
            .unwrap_or_else(|e| panic!("{id} failed on a constant field: {e}"));
        let recon = codec
            .decompress(&bytes)
            .unwrap_or_else(|e| panic!("{id} failed to decode its constant-field stream: {e}"));
        assert_eq!(recon.dims(), field.dims());
        if codec.is_error_bounded() {
            // Degenerate-range contract: the relative value acts as the
            // absolute bound.
            let resolved = bound.resolve(&field);
            let max_err = max_abs_error(field.as_slice(), recon.as_slice());
            assert!(
                max_err <= resolved * 1.001,
                "{id} violated the degenerate-range bound: {max_err} > {resolved}"
            );
        }
    }
}

/// The PR-3 latent gap: `ErrorBound::Abs` on a constant (`hi == lo`) field.
/// Per the degenerate-range contract documented on `ErrorBound::resolve`, an
/// absolute bound resolves to exactly itself (no flooring, no rescaling), so
/// every error-bounded codec must reconstruct a constant field within the
/// requested absolute tolerance — and the streams must dispatch through
/// `decompress_any` like any other.
#[test]
fn abs_bound_on_constant_fields_roundtrips_through_decompress_any() {
    let mut registry = trained_registry();
    let bound = ErrorBound::abs(1e-3);
    for id in CodecId::all() {
        let dims = match id {
            CodecId::AeB => Dims::d3(16, 16, 16),
            _ => Dims::d2(24, 24),
        };
        let field = Field::from_vec(dims, vec![-7.25; dims.len()]).unwrap();
        let bounded = registry.get_mut(id).expect("registered").is_error_bounded();
        let bytes = registry
            .get_mut(id)
            .expect("registered")
            .compress(&field, bound)
            .unwrap_or_else(|e| panic!("{id} failed on a constant field with an abs bound: {e}"));
        let (recon, dispatched) = registry
            .decompress_any(&bytes)
            .unwrap_or_else(|e| panic!("decompress_any failed for {id}: {e}"));
        assert_eq!(dispatched, id);
        assert_eq!(recon.dims(), field.dims());
        // resolve() must hand every codec exactly the requested tolerance.
        assert_eq!(bound.resolve(&field), 1e-3, "{id}");
        if bounded {
            let max_err = max_abs_error(field.as_slice(), recon.as_slice());
            assert!(
                max_err <= 1e-3 * 1.001,
                "{id} violated the abs bound on a constant field: {max_err}"
            );
        }
    }
}

#[test]
fn empty_and_rank_mismatched_fields_are_rejected() {
    let mut registry = trained_registry();
    let empty = Field::zeros(Dims::d2(0, 16));
    for id in CodecId::all() {
        let codec = registry.get_mut(id).expect("registered");
        assert!(
            matches!(
                codec.compress(&empty, ErrorBound::rel(1e-3)),
                Err(CompressError::UnsupportedField(_))
            ),
            "{id} accepted an empty field"
        );
    }
    // AE-B is rank-3 only; a 2D field must be an error, not a panic.
    let codec = registry.get_mut(CodecId::AeB).expect("registered");
    assert!(matches!(
        codec.compress(&field_2d(), ErrorBound::rel(1e-3)),
        Err(CompressError::UnsupportedField(_))
    ));
}

#[test]
fn truncation_at_every_offset_returns_err_never_panics() {
    let mut registry = trained_registry();
    for id in CodecId::all() {
        let field = test_field(id);
        let codec = registry.get_mut(id).expect("registered");
        let bytes = codec
            .compress(&field, ErrorBound::rel(1e-2))
            .unwrap_or_else(|e| panic!("{id} failed to compress: {e}"));

        // Frame-level truncation: every prefix of the framed stream.
        for len in 0..bytes.len() {
            assert!(
                codec.decompress(&bytes[..len]).is_err(),
                "{id}: framed prefix of {len}/{} bytes decoded",
                bytes.len()
            );
        }

        // Payload-level truncation: re-frame every prefix of the payload with
        // a *consistent* frame, so the codec's own validation is what must
        // reject it (the frame length check cannot catch these).
        let (_, payload) = container::read_frame(&bytes).expect("own frame");
        let payload = payload.to_vec();
        for len in 0..payload.len() {
            let reframed = container::write_frame(id, &payload[..len]);
            assert!(
                codec.decompress(&reframed).is_err(),
                "{id}: payload prefix of {len}/{} bytes decoded",
                payload.len()
            );
        }
    }
}

#[test]
fn decompress_any_roundtrips_all_seven_codecs() {
    let mut registry = trained_registry();
    let mut streams = Vec::new();
    for id in CodecId::all() {
        let field = test_field(id);
        let bytes = registry
            .get_mut(id)
            .expect("registered")
            .compress(&field, ErrorBound::rel(1e-2))
            .unwrap_or_else(|e| panic!("{id} failed to compress: {e}"));
        streams.push((id, field, bytes));
    }
    for (id, field, bytes) in &streams {
        let (recon, dispatched) = registry
            .decompress_any(bytes)
            .unwrap_or_else(|e| panic!("decompress_any failed for {id}: {e}"));
        assert_eq!(dispatched, *id);
        assert_eq!(recon.dims(), field.dims());
        // Truncated prefixes must be errors through the dispatcher too.
        for len in 0..bytes.len() {
            assert!(
                registry.decompress_any(&bytes[..len]).is_err(),
                "{id}: dispatched prefix of {len} bytes decoded"
            );
        }
    }
}

#[test]
fn streams_are_rejected_by_the_wrong_codec() {
    let mut registry = trained_registry();
    let field = field_2d();
    let bytes = registry
        .get_mut(CodecId::Sz2)
        .unwrap()
        .compress(&field, ErrorBound::rel(1e-2))
        .unwrap();
    let zfp = registry.get_mut(CodecId::Zfp).unwrap();
    assert!(matches!(
        zfp.decompress(&bytes),
        Err(aesz_repro::DecompressError::WrongCodec {
            expected: CodecId::Zfp,
            found: CodecId::Sz2,
        })
    ));
}
