//! Shared conformance suite over the unified compressor API: every
//! registered codec must roundtrip through the container frame, honour both
//! error-bound modes (unless it declares itself not error-bounded), survive
//! degenerate inputs, and reject — never panic on — truncated streams at
//! every offset, both at the frame level and inside the payload.

use aesz_repro::baselines::{AeA, AeB};
use aesz_repro::core::training::{train_swae_for_field, TrainingOptions};
use aesz_repro::core::{AeSz, AeSzConfig};
use aesz_repro::datagen::Application;
use aesz_repro::metrics::{
    container, max_abs_error, verify_error_bound, CodecId, CompressError, ErrorBound,
};
use aesz_repro::{Dims, Field, Registry};

/// The 2D field most codecs are exercised on (small, so the
/// truncation-at-every-offset loops stay fast).
fn field_2d() -> Field {
    Application::CesmCldhgh.generate(Dims::d2(32, 48), 50)
}

/// The 3D field used for AE-B (which only supports rank 3).
fn field_3d() -> Field {
    Application::Rtm.generate(Dims::d3(16, 16, 16), 50)
}

/// The field a codec is conformance-tested on.
fn test_field(id: CodecId) -> Field {
    match id {
        CodecId::AeB => field_3d(),
        _ => field_2d(),
    }
}

/// A registry whose learned codecs are (cheaply) trained, so all seven
/// compressors can produce and decode streams.
fn trained_registry() -> Registry {
    let mut registry = Registry::with_defaults();

    let train_2d = Application::CesmCldhgh.generate(Dims::d2(32, 48), 0);
    let opts = TrainingOptions {
        block_size: 16,
        latent_dim: 4,
        channels: vec![4],
        epochs: 1,
        max_blocks: 6,
        seed: 11,
        ..TrainingOptions::default_for_rank(2)
    };
    let model = train_swae_for_field(std::slice::from_ref(&train_2d), &opts);
    registry.register(Box::new(AeSz::new(
        model,
        AeSzConfig {
            block_size: 16,
            ..AeSzConfig::default_2d()
        },
    )));

    let mut ae_a = AeA::new(5);
    ae_a.train(std::slice::from_ref(&train_2d), 1, 6);
    registry.register(Box::new(ae_a));

    let train_3d = Application::Rtm.generate(Dims::d3(16, 16, 16), 0);
    let mut ae_b = AeB::new(7);
    ae_b.train(std::slice::from_ref(&train_3d), 1, 8);
    registry.register(Box::new(ae_b));

    registry
}

#[test]
fn roundtrip_honours_both_bound_modes() {
    let mut registry = trained_registry();
    for id in CodecId::all() {
        let field = test_field(id);
        let abs = 1e-2 * field.value_range() as f64;
        for bound in [ErrorBound::rel(1e-2), ErrorBound::abs(abs)] {
            let codec = registry.get_mut(id).expect("registered");
            let bounded = codec.is_error_bounded();
            let bytes = codec
                .compress(&field, bound)
                .unwrap_or_else(|e| panic!("{id} failed to compress ({bound}): {e}"));
            assert_eq!(container::peek_codec(&bytes).unwrap(), id);
            let recon = codec
                .decompress(&bytes)
                .unwrap_or_else(|e| panic!("{id} failed to decode its own stream: {e}"));
            assert_eq!(recon.dims(), field.dims(), "{id} changed the dims");
            let resolved = bound.resolve(&field);
            if bounded {
                verify_error_bound(
                    field.as_slice(),
                    recon.as_slice(),
                    resolved,
                    resolved * 1e-3,
                )
                .unwrap_or_else(|e| panic!("{id} violated its bound ({bound}): {e}"));
            } else {
                // AE-B: fixed-rate, quality is whatever the network delivers —
                // but the reconstruction must still be sane.
                let (lo, hi) = field.min_max();
                let slack = (hi - lo) * 0.5;
                assert!(
                    recon
                        .as_slice()
                        .iter()
                        .all(|&v| v.is_finite() && v >= lo - slack && v <= hi + slack),
                    "{id} reconstruction left the data envelope"
                );
            }
        }
    }
}

#[test]
fn constant_fields_roundtrip_within_bound() {
    let mut registry = trained_registry();
    let bound = ErrorBound::rel(1e-3);
    for id in CodecId::all() {
        let dims = match id {
            CodecId::AeB => Dims::d3(16, 16, 16),
            _ => Dims::d2(24, 24),
        };
        let field = Field::from_vec(dims, vec![4.2; dims.len()]).unwrap();
        let codec = registry.get_mut(id).expect("registered");
        let bytes = codec
            .compress(&field, bound)
            .unwrap_or_else(|e| panic!("{id} failed on a constant field: {e}"));
        let recon = codec
            .decompress(&bytes)
            .unwrap_or_else(|e| panic!("{id} failed to decode its constant-field stream: {e}"));
        assert_eq!(recon.dims(), field.dims());
        if codec.is_error_bounded() {
            // Degenerate-range contract: the relative value acts as the
            // absolute bound.
            let resolved = bound.resolve(&field);
            let max_err = max_abs_error(field.as_slice(), recon.as_slice());
            assert!(
                max_err <= resolved * 1.001,
                "{id} violated the degenerate-range bound: {max_err} > {resolved}"
            );
        }
    }
}

#[test]
fn empty_and_rank_mismatched_fields_are_rejected() {
    let mut registry = trained_registry();
    let empty = Field::zeros(Dims::d2(0, 16));
    for id in CodecId::all() {
        let codec = registry.get_mut(id).expect("registered");
        assert!(
            matches!(
                codec.compress(&empty, ErrorBound::rel(1e-3)),
                Err(CompressError::UnsupportedField(_))
            ),
            "{id} accepted an empty field"
        );
    }
    // AE-B is rank-3 only; a 2D field must be an error, not a panic.
    let codec = registry.get_mut(CodecId::AeB).expect("registered");
    assert!(matches!(
        codec.compress(&field_2d(), ErrorBound::rel(1e-3)),
        Err(CompressError::UnsupportedField(_))
    ));
}

#[test]
fn truncation_at_every_offset_returns_err_never_panics() {
    let mut registry = trained_registry();
    for id in CodecId::all() {
        let field = test_field(id);
        let codec = registry.get_mut(id).expect("registered");
        let bytes = codec
            .compress(&field, ErrorBound::rel(1e-2))
            .unwrap_or_else(|e| panic!("{id} failed to compress: {e}"));

        // Frame-level truncation: every prefix of the framed stream.
        for len in 0..bytes.len() {
            assert!(
                codec.decompress(&bytes[..len]).is_err(),
                "{id}: framed prefix of {len}/{} bytes decoded",
                bytes.len()
            );
        }

        // Payload-level truncation: re-frame every prefix of the payload with
        // a *consistent* frame, so the codec's own validation is what must
        // reject it (the frame length check cannot catch these).
        let (_, payload) = container::read_frame(&bytes).expect("own frame");
        let payload = payload.to_vec();
        for len in 0..payload.len() {
            let reframed = container::write_frame(id, &payload[..len]);
            assert!(
                codec.decompress(&reframed).is_err(),
                "{id}: payload prefix of {len}/{} bytes decoded",
                payload.len()
            );
        }
    }
}

#[test]
fn decompress_any_roundtrips_all_seven_codecs() {
    let mut registry = trained_registry();
    let mut streams = Vec::new();
    for id in CodecId::all() {
        let field = test_field(id);
        let bytes = registry
            .get_mut(id)
            .expect("registered")
            .compress(&field, ErrorBound::rel(1e-2))
            .unwrap_or_else(|e| panic!("{id} failed to compress: {e}"));
        streams.push((id, field, bytes));
    }
    for (id, field, bytes) in &streams {
        let (recon, dispatched) = registry
            .decompress_any(bytes)
            .unwrap_or_else(|e| panic!("decompress_any failed for {id}: {e}"));
        assert_eq!(dispatched, *id);
        assert_eq!(recon.dims(), field.dims());
        // Truncated prefixes must be errors through the dispatcher too.
        for len in 0..bytes.len() {
            assert!(
                registry.decompress_any(&bytes[..len]).is_err(),
                "{id}: dispatched prefix of {len} bytes decoded"
            );
        }
    }
}

#[test]
fn streams_are_rejected_by_the_wrong_codec() {
    let mut registry = trained_registry();
    let field = field_2d();
    let bytes = registry
        .get_mut(CodecId::Sz2)
        .unwrap()
        .compress(&field, ErrorBound::rel(1e-2))
        .unwrap();
    let zfp = registry.get_mut(CodecId::Zfp).unwrap();
    assert!(matches!(
        zfp.decompress(&bytes),
        Err(aesz_repro::DecompressError::WrongCodec {
            expected: CodecId::Zfp,
            found: CodecId::Sz2,
        })
    ));
}
