//! Umbrella crate for the AE-SZ reproduction workspace.
//!
//! Re-exports the public APIs of every member crate so that examples and
//! integration tests can `use aesz_repro::...` without naming each crate,
//! and hosts the [`registry`] module (the codec [`Registry`] over all seven
//! compressors and the [`decompress_any`] dispatch entry point), the
//! [`model_store`] module (content-addressed storage and lazy resolution of
//! trained models — the train → ship → resolve lifecycle), and the
//! [`archive`] module (registry-driven chunked streaming archives with
//! per-chunk codec choice, random-access decode, and embedded-model
//! resolution).

#![forbid(unsafe_code)]

// Wire-parsing modules (the `aesz-lint` deny-set, see the repo-root
// lint.toml) must not panic on attacker-shaped bytes; the clippy headers
// below enforce the same contract (rule R1) at the compiler level. Tests
// are exempt via clippy.toml's allow-*-in-tests keys.
#[deny(
    clippy::unwrap_used,
    clippy::expect_used,
    clippy::panic,
    clippy::unreachable,
    clippy::todo,
    clippy::unimplemented
)]
pub mod archive;
pub mod model_store;
#[deny(
    clippy::unwrap_used,
    clippy::expect_used,
    clippy::panic,
    clippy::unreachable,
    clippy::todo,
    clippy::unimplemented
)]
pub mod registry;
#[deny(
    clippy::unwrap_used,
    clippy::expect_used,
    clippy::panic,
    clippy::unreachable,
    clippy::todo,
    clippy::unimplemented
)]
pub mod stream;

pub use aesz_baselines as baselines;
pub use aesz_codec as codec;
pub use aesz_core as core;
pub use aesz_datagen as datagen;
pub use aesz_metrics as metrics;
pub use aesz_nn as nn;
pub use aesz_predictors as predictors;
pub use aesz_tensor as tensor;

// The handful of types almost every consumer needs, at the crate root: the
// compressor, its configuration, the unified error types, the error-bound
// modes, the codec registry, and the trait the benchmark harness drives
// everything through.
pub use aesz_core::{AeSz, AeSzConfig, CompressionReport, PredictorPolicy};
pub use aesz_metrics::{
    CodecId, CompressError, Compressor, CompressorError, DecompressError, EmbeddedModel,
    ErrorBound, ModelId,
};
pub use aesz_tensor::{Dims, Field};
pub use model_store::{ModelStore, ModelStoreError, SidecarEntry};
pub use registry::{decompress_any, Registry, RegistryAccess, SharedRegistry};
pub use stream::{decompress_reader, decompress_reader_limited, StreamFieldDecoder, StreamOutput};
