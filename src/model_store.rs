//! The content-addressed model store behind the codec
//! [`Registry`](crate::registry::Registry).
//!
//! The paper's central design keeps the trained autoencoder *separate* from
//! the compressed data so one network serves every snapshot of an
//! application (Fig. 2). That split needs an artifact pipeline: somewhere to
//! put a trained model ("ship"), and a way for a decoder that never saw the
//! trainer to find it again ("resolve"). [`ModelStore`] is that pipeline:
//!
//! * **in-memory registration** — [`ModelStore::insert`] /
//!   [`ModelStore::insert_frame`] hold `AESM` frames keyed by [`ModelId`];
//! * **sidecar files** — [`ModelStore::add_sidecar_dir`] points at
//!   directories of `<model-id-hex>.aesm` files
//!   ([`ModelStore::save_sidecar`] writes them), looked up lazily on miss;
//! * **embedded archive sections** — the `AESA` v2 model section is loaded
//!   into the store by the archive entry points of [`crate::archive`].
//!
//! Every byte entering the store is verified: the frame must parse and the
//! payload must hash to the id it is filed under, so a corrupted or renamed
//! model file is rejected instead of silently decoding garbage.
//! [`ModelStore::build`] turns a stored frame into a trained compressor for
//! the frame's codec — the `ModelId → trained compressor` resolution the
//! registry performs when a stream reports [`DecompressError::MissingModel`].

use std::collections::HashMap;
use std::path::{Path, PathBuf};

use aesz_baselines::{AeA, AeB};
use aesz_core::AeSz;
use aesz_metrics::container::read_model_frame;
use aesz_metrics::{CodecId, Compressor, DecompressError, EmbeddedModel, ModelId};
use aesz_nn::serialize::{load_model, ModelError};

/// Why a model file or frame could not enter the store.
#[derive(Debug)]
pub enum ModelStoreError {
    /// Reading a sidecar file failed.
    Io(std::io::Error),
    /// The bytes are not a valid `AESM` frame.
    Frame(DecompressError),
    /// The file name promises a different id than the payload hashes to.
    IdMismatch {
        /// Id the file name (or caller) claimed.
        claimed: ModelId,
        /// Id the payload actually hashes to.
        actual: ModelId,
    },
}

impl From<std::io::Error> for ModelStoreError {
    fn from(e: std::io::Error) -> Self {
        ModelStoreError::Io(e)
    }
}

impl From<DecompressError> for ModelStoreError {
    fn from(e: DecompressError) -> Self {
        ModelStoreError::Frame(e)
    }
}

impl std::fmt::Display for ModelStoreError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ModelStoreError::Io(e) => write!(f, "model store I/O failed: {e}"),
            ModelStoreError::Frame(e) => write!(f, "invalid model frame: {e}"),
            ModelStoreError::IdMismatch { claimed, actual } => write!(
                f,
                "model file claims id {claimed} but its payload hashes to {actual}"
            ),
        }
    }
}

impl std::error::Error for ModelStoreError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ModelStoreError::Io(e) => Some(e),
            ModelStoreError::Frame(e) => Some(e),
            ModelStoreError::IdMismatch { .. } => None,
        }
    }
}

/// One `*.aesm` file found by [`ModelStore::scan_sidecar_dir`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SidecarEntry {
    /// File name inside the scanned directory.
    pub file_name: String,
    /// The payload's content hash when the frame parses, otherwise the id
    /// the file name claims (when it is valid hex). `None` for files that
    /// neither parse nor carry an id-shaped name.
    pub id: Option<ModelId>,
    /// Codec the frame names, when it parses.
    pub codec: Option<CodecId>,
    /// Serialized parameter bytes (the `AESM` payload length; 0 when the
    /// frame does not parse).
    pub param_bytes: u64,
    /// Whether the frame parses *and* its payload hashes to the id the
    /// file name claims — only verified files will resolve via
    /// [`ModelStore::lookup`].
    pub verified: bool,
}

/// Content-addressed storage of serialized trained models (`AESM` frames),
/// resolvable from memory or sidecar directories.
#[derive(Default)]
pub struct ModelStore {
    models: HashMap<ModelId, EmbeddedModel>,
    sidecar_dirs: Vec<PathBuf>,
}

impl ModelStore {
    /// An empty store with no sidecar directories.
    pub fn new() -> Self {
        ModelStore::default()
    }

    /// Register a verified model, returning its id. Re-inserting the same
    /// content is a no-op (content addressing makes it idempotent).
    pub fn insert(&mut self, model: EmbeddedModel) -> ModelId {
        let id = model.id;
        self.models.insert(id, model);
        id
    }

    /// Parse, verify and register a raw `AESM` frame.
    pub fn insert_frame(&mut self, frame: &[u8]) -> Result<ModelId, ModelStoreError> {
        let (model, _) = EmbeddedModel::from_frame(frame)?;
        Ok(self.insert(model))
    }

    /// Load, verify and register a sidecar model file (any path — the file
    /// name does not have to be the id).
    pub fn insert_file(&mut self, path: &Path) -> Result<ModelId, ModelStoreError> {
        let bytes = std::fs::read(path)?;
        self.insert_frame(&bytes)
    }

    /// Add a directory that is searched for `<model-id-hex>.aesm` files when
    /// an id misses the in-memory map. Directories are searched in the order
    /// they were added; files are verified before use.
    pub fn add_sidecar_dir(&mut self, dir: impl Into<PathBuf>) {
        self.sidecar_dirs.push(dir.into());
    }

    /// The canonical sidecar path of a model inside `dir`.
    pub fn sidecar_path(dir: &Path, id: ModelId) -> PathBuf {
        dir.join(format!("{id}.aesm"))
    }

    /// Write a model to its canonical sidecar path inside `dir`, returning
    /// that path — the "ship" half of train → ship → resolve.
    pub fn save_sidecar(dir: &Path, model: &EmbeddedModel) -> std::io::Result<PathBuf> {
        let path = Self::sidecar_path(dir, model.id);
        std::fs::write(&path, &model.frame)?;
        Ok(path)
    }

    /// Ids currently resident in memory (sidecar files are not enumerated).
    pub fn ids(&self) -> Vec<ModelId> {
        let mut ids: Vec<ModelId> = self.models.keys().copied().collect();
        ids.sort();
        ids
    }

    /// Non-caching lookup: the in-memory map first, then each sidecar
    /// directory's `<id>.aesm`. Sidecar hits are verified (frame parse +
    /// payload hash); a file whose content does not hash to its name is
    /// ignored (a later directory may hold the real one). Returns an owned
    /// copy so read-only holders (e.g. the archive decode path behind
    /// `&Registry`) can resolve without mutating the store.
    pub fn lookup(&self, id: ModelId) -> Option<EmbeddedModel> {
        if let Some(m) = self.models.get(&id) {
            return Some(m.clone());
        }
        for dir in &self.sidecar_dirs {
            let path = Self::sidecar_path(dir, id);
            let Ok(bytes) = std::fs::read(&path) else {
                continue;
            };
            let Ok((model, _)) = EmbeddedModel::from_frame(&bytes) else {
                continue;
            };
            if model.id == id {
                return Some(model);
            }
        }
        None
    }

    /// [`ModelStore::lookup`] that additionally caches sidecar hits in
    /// memory, so repeated resolutions of the same id read the file once.
    pub fn get(&mut self, id: ModelId) -> Option<&EmbeddedModel> {
        if !self.models.contains_key(&id) {
            if let Some(model) = self.lookup(id) {
                self.models.insert(id, model);
            }
        }
        self.models.get(&id)
    }

    /// Inventory a sidecar directory without registering anything: every
    /// `*.aesm` file, whether it parses, and whether its payload hashes to
    /// the id its file name claims — the `aesz models` listing and the
    /// daemon's `ListModels` answer. Entries are sorted by file name for
    /// deterministic output. Unreadable or corrupt files become unverified
    /// entries rather than errors, so one bad file cannot hide the rest.
    pub fn scan_sidecar_dir(dir: &Path) -> std::io::Result<Vec<SidecarEntry>> {
        let mut names: Vec<String> = std::fs::read_dir(dir)?
            .filter_map(|e| e.ok())
            .filter_map(|e| e.file_name().into_string().ok())
            .filter(|n| n.ends_with(".aesm"))
            .collect();
        names.sort();
        let mut entries = Vec::new();
        for name in names {
            let claimed = name.strip_suffix(".aesm").and_then(ModelId::from_hex);
            let entry = match std::fs::read(dir.join(&name)) {
                Ok(bytes) => match EmbeddedModel::from_frame(&bytes) {
                    Ok((model, codec)) => SidecarEntry {
                        verified: claimed == Some(model.id),
                        id: Some(model.id),
                        codec: Some(codec),
                        param_bytes: model.payload().len() as u64,
                        file_name: name,
                    },
                    Err(_) => SidecarEntry {
                        file_name: name,
                        id: claimed,
                        codec: None,
                        param_bytes: 0,
                        verified: false,
                    },
                },
                Err(_) => SidecarEntry {
                    file_name: name,
                    id: claimed,
                    codec: None,
                    param_bytes: 0,
                    verified: false,
                },
            };
            entries.push(entry);
        }
        Ok(entries)
    }

    /// Resolve `id` into a **trained compressor** for `codec` — the lazy
    /// `ModelId → trained compressor` step of the registry. Returns
    /// [`DecompressError::MissingModel`] when the id cannot be found
    /// anywhere (or is filed under a different codec), and a parse-level
    /// error when the stored payload is corrupt or geometrically impossible
    /// for its codec.
    pub fn build(
        &mut self,
        codec: CodecId,
        id: ModelId,
    ) -> Result<Box<dyn Compressor>, DecompressError> {
        let missing = DecompressError::MissingModel {
            codec,
            model_id: id,
        };
        let model = match self.get(id) {
            Some(m) if m.codec() == codec => m.clone(),
            _ => return Err(missing),
        };
        build_compressor(&model)
    }
}

/// Turn a verified model frame into a trained compressor instance for the
/// codec the frame names. Fails on codecs that carry no model and on
/// payloads the codec's loader rejects.
pub fn build_compressor(model: &EmbeddedModel) -> Result<Box<dyn Compressor>, DecompressError> {
    let (codec, payload) = read_model_frame(&model.frame)?;
    match codec {
        CodecId::AeSz => {
            let net = load_model(payload).map_err(model_error_to_decompress)?;
            Ok(Box::new(AeSz::from_model(net)))
        }
        CodecId::AeA => {
            let ae = AeA::from_model_bytes(payload).map_err(model_error_to_decompress)?;
            Ok(Box::new(ae))
        }
        CodecId::AeB => {
            let ae = AeB::from_model_bytes(payload).map_err(model_error_to_decompress)?;
            Ok(Box::new(ae))
        }
        _ => Err(DecompressError::Unsupported(
            "model frame names a codec that takes no model",
        )),
    }
}

fn model_error_to_decompress(e: ModelError) -> DecompressError {
    match e {
        ModelError::BadMagic => DecompressError::InvalidHeader("model payload magic"),
        ModelError::Truncated => DecompressError::Truncated("model payload"),
        ModelError::InvalidConfig(what) => DecompressError::InvalidHeader(what),
        ModelError::ParamMismatch { .. } => {
            DecompressError::Inconsistent("model parameter count mismatch")
        }
        ModelError::TrailingBytes => {
            DecompressError::Inconsistent("trailing bytes after model parameters")
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use aesz_core::training::{train_swae_for_field, TrainingOptions};
    use aesz_datagen::Application;
    use aesz_metrics::ErrorBound;
    use aesz_nn::serialize::save_model;
    use aesz_tensor::Dims;

    fn tiny_trained_aesz() -> AeSz {
        let field = Application::CesmCldhgh.generate(Dims::d2(24, 24), 1);
        let opts = TrainingOptions {
            block_size: 8,
            latent_dim: 4,
            channels: vec![4],
            epochs: 1,
            max_blocks: 6,
            seed: 9,
            ..TrainingOptions::default_for_rank(2)
        };
        AeSz::from_model(train_swae_for_field(std::slice::from_ref(&field), &opts))
    }

    #[test]
    fn memory_and_sidecar_resolution_build_the_same_compressor() {
        let aesz = tiny_trained_aesz();
        let model = Compressor::embedded_model(&aesz).expect("AE-SZ always has a model");
        assert_eq!(model.id, aesz.model_id());

        // In-memory path.
        let mut store = ModelStore::new();
        assert!(store.get(model.id).is_none());
        let id = store.insert_frame(&model.frame).expect("valid frame");
        assert_eq!(id, model.id);
        assert_eq!(store.ids(), vec![id]);
        let built = store.build(CodecId::AeSz, id).expect("resolves");
        assert_eq!(built.codec_id(), CodecId::AeSz);

        // Sidecar path, from a store that never saw the frame in memory.
        let dir = std::env::temp_dir().join(format!("aesz_store_test_{id}"));
        std::fs::create_dir_all(&dir).unwrap();
        let path = ModelStore::save_sidecar(&dir, &model).unwrap();
        assert_eq!(path, ModelStore::sidecar_path(&dir, id));
        let mut fresh = ModelStore::new();
        fresh.add_sidecar_dir(&dir);
        let built2 = fresh.build(CodecId::AeSz, id).expect("sidecar resolves");
        assert_eq!(built2.codec_id(), CodecId::AeSz);

        // Both builds decode a stream from the original trainer identically.
        let field = Application::CesmCldhgh.generate(Dims::d2(24, 24), 2);
        let mut aesz = aesz;
        let bytes = aesz.compress(&field, ErrorBound::rel(1e-2)).unwrap();
        let mut built = built;
        let mut built2 = built2;
        let a = built.decompress(&bytes).expect("memory-built decodes");
        let b = built2.decompress(&bytes).expect("sidecar-built decodes");
        assert_eq!(a.as_slice(), b.as_slice());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn unknown_ids_and_corrupt_files_are_rejected() {
        let mut store = ModelStore::new();
        let id = ModelId::of(b"never stored");
        assert!(matches!(
            store.build(CodecId::AeSz, id),
            Err(DecompressError::MissingModel { model_id, .. }) if model_id == id
        ));

        // A sidecar whose bytes do not hash to its file name is ignored.
        let dir = std::env::temp_dir().join("aesz_store_test_corrupt");
        std::fs::create_dir_all(&dir).unwrap();
        let model = EmbeddedModel::new(CodecId::AeA, b"not really a model");
        let mut frame = model.frame.clone();
        let last = frame.len() - 1;
        frame[last] ^= 1; // breaks the hash
        std::fs::write(ModelStore::sidecar_path(&dir, model.id), &frame).unwrap();
        let mut store = ModelStore::new();
        store.add_sidecar_dir(&dir);
        assert!(store.get(model.id).is_none());
        std::fs::remove_dir_all(&dir).ok();

        // Garbage frames cannot enter the store at all.
        assert!(matches!(
            ModelStore::new().insert_frame(b"garbage"),
            Err(ModelStoreError::Frame(_))
        ));

        // A structurally valid frame whose payload the codec rejects fails
        // at build time, not silently.
        let bogus = EmbeddedModel::new(CodecId::AeA, b"not really a model");
        let mut store = ModelStore::new();
        let id = store.insert(bogus);
        assert!(store.build(CodecId::AeA, id).is_err());

        // Model frames for model-free codecs are refused.
        let sz2 = EmbeddedModel::new(CodecId::Sz2, b"whatever");
        assert!(matches!(
            build_compressor(&sz2),
            Err(DecompressError::Unsupported(_))
        ));
    }

    #[test]
    fn geometry_is_validated_per_codec_at_build_time() {
        // A perfectly valid conv model, but framed as AE-B with the wrong
        // geometry: build must fail rather than construct a broken AE-B.
        let aesz = tiny_trained_aesz();
        let wrong = EmbeddedModel::new(CodecId::AeB, &save_model(aesz.model()));
        assert!(build_compressor(&wrong).is_err());
    }
}
