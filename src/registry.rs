//! Codec registry and cross-codec dispatch.
//!
//! Every stream produced through the [`Compressor`] trait carries the
//! self-describing container frame of [`aesz_metrics::container`], so bytes
//! of unknown provenance can be routed to the right decoder by codec id.
//! [`Registry`] owns one decoder per codec and [`Registry::decompress_any`]
//! performs that dispatch — the entry point a service front-end calls on
//! untrusted traffic.
//!
//! The learned codecs (AE-SZ, AE-A, AE-B) need the *same trained model* the
//! encoder used to reconstruct meaningfully; the default registry holds
//! fresh untrained instances, which decode self-produced streams consistently
//! but report [`DecompressError::Unsupported`] (AE-A/AE-B) or decode with
//! untrained weights (AE-SZ streams carrying latent payloads are rejected on
//! geometry mismatch, accepted otherwise). Swap in trained instances with
//! [`Registry::register`] — the latest registration per codec id wins.

use aesz_metrics::{CodecId, Compressor, DecompressError};
use aesz_tensor::Field;

/// One decoder/encoder per codec id, dispatchable by container frame.
pub struct Registry {
    entries: Vec<Box<dyn Compressor>>,
}

impl Registry {
    /// An empty registry; populate it with [`Registry::register`].
    pub fn empty() -> Self {
        Registry {
            entries: Vec::new(),
        }
    }

    /// A registry holding all seven compressors of the paper's evaluation.
    ///
    /// The five traditional codecs are fully functional. The learned codecs
    /// are fresh (untrained, deterministic-seed) instances — replace them
    /// with trained ones via [`Registry::register`] before decoding foreign
    /// AE streams.
    pub fn with_defaults() -> Self {
        use aesz_baselines::{AeA, AeB, Sz2, SzAuto, SzInterp, Zfp};
        use aesz_core::{AeSz, AeSzConfig};
        use aesz_nn::models::conv_ae::{AeConfig, ConvAutoencoder};

        let config = AeSzConfig::default_2d();
        let model = ConvAutoencoder::new(AeConfig {
            spatial_rank: 2,
            block_size: config.block_size,
            latent_dim: 8,
            channels: vec![8, 16],
            variational: false,
            seed: 0,
        });
        let mut registry = Registry::empty();
        registry.register(Box::new(AeSz::new(model, config)));
        registry.register(Box::new(Sz2::new()));
        registry.register(Box::new(Zfp::new()));
        registry.register(Box::new(SzAuto::new()));
        registry.register(Box::new(SzInterp::new()));
        registry.register(Box::new(AeA::new(0)));
        registry.register(Box::new(AeB::new(0)));
        registry
    }

    /// Register a compressor, replacing any previous entry with the same
    /// codec id (so trained models can shadow the defaults).
    pub fn register(&mut self, compressor: Box<dyn Compressor>) {
        let id = compressor.codec_id();
        self.entries.retain(|c| c.codec_id() != id);
        self.entries.push(compressor);
    }

    /// The codec ids currently registered, in registration order.
    pub fn codec_ids(&self) -> Vec<CodecId> {
        self.entries.iter().map(|c| c.codec_id()).collect()
    }

    /// Shared access to the compressor registered for `id`.
    pub fn get(&self, id: CodecId) -> Option<&(dyn Compressor + 'static)> {
        self.entries
            .iter()
            .find(|c| c.codec_id() == id)
            .map(|c| c.as_ref())
    }

    /// Mutable access to the compressor registered for `id`.
    pub fn get_mut(&mut self, id: CodecId) -> Option<&mut (dyn Compressor + 'static)> {
        self.entries
            .iter_mut()
            .find(|c| c.codec_id() == id)
            .map(|c| c.as_mut())
    }

    /// An independent deep copy of the compressor registered for `id`
    /// ([`Compressor::fork`]) — how the archive layer obtains one instance
    /// per in-flight chunk without sharing `&mut` state across threads.
    pub fn fork(&self, id: CodecId) -> Option<Box<dyn Compressor>> {
        self.get(id).map(|c| c.fork())
    }

    /// Iterate over every registered compressor mutably (the sweep harness's
    /// access path).
    pub fn iter_mut(&mut self) -> impl Iterator<Item = &mut Box<dyn Compressor>> {
        self.entries.iter_mut()
    }

    /// Decode a framed stream from *any* registered codec, dispatching by
    /// the codec id in the container frame. Returns the reconstruction and
    /// which codec produced it; fails (never panics) on malformed frames,
    /// unknown or unregistered codecs, and hostile payloads.
    pub fn decompress_any(&mut self, bytes: &[u8]) -> Result<(Field, CodecId), DecompressError> {
        let id = aesz_metrics::container::peek_codec(bytes)?;
        let codec = self
            .get_mut(id)
            .ok_or(DecompressError::UnknownCodec(id as u8))?;
        let field = codec.decompress(bytes)?;
        Ok((field, id))
    }
}

impl Default for Registry {
    fn default() -> Self {
        Registry::with_defaults()
    }
}

/// A fresh default registry of all seven codecs (see
/// [`Registry::with_defaults`] for the trained-model caveat on AE codecs).
pub fn registry() -> Registry {
    Registry::with_defaults()
}

/// Decode a framed stream from any known codec with a shared, lazily built
/// default registry (constructing the default AE models is not free, so the
/// registry is reused per thread across calls). A service that needs trained
/// AE models should hold its own [`Registry`] and call
/// [`Registry::decompress_any`] instead.
pub fn decompress_any(bytes: &[u8]) -> Result<(Field, CodecId), DecompressError> {
    thread_local! {
        static DEFAULT: std::cell::RefCell<Registry> =
            std::cell::RefCell::new(Registry::with_defaults());
    }
    DEFAULT.with(|r| r.borrow_mut().decompress_any(bytes))
}

#[cfg(test)]
mod tests {
    use super::*;
    use aesz_datagen::Application;
    use aesz_metrics::ErrorBound;
    use aesz_tensor::Dims;

    #[test]
    fn defaults_cover_all_seven_codecs() {
        let registry = Registry::with_defaults();
        let ids = registry.codec_ids();
        for id in CodecId::all() {
            assert!(ids.contains(&id), "{id} missing from the default registry");
        }
        assert_eq!(ids.len(), 7);
    }

    #[test]
    fn decompress_any_dispatches_by_frame() {
        let field = Application::CesmCldhgh.generate(Dims::d2(32, 32), 3);
        let mut registry = Registry::with_defaults();
        let bytes = registry
            .get_mut(CodecId::SzInterp)
            .unwrap()
            .compress(&field, ErrorBound::rel(1e-3))
            .unwrap();
        let (recon, id) = registry.decompress_any(&bytes).unwrap();
        assert_eq!(id, CodecId::SzInterp);
        assert_eq!(recon.dims(), field.dims());
        // The free function decodes traditional codecs too.
        let (recon2, id2) = decompress_any(&bytes).unwrap();
        assert_eq!(id2, CodecId::SzInterp);
        assert_eq!(recon2.as_slice(), recon.as_slice());
    }

    #[test]
    fn unregistered_codecs_are_reported() {
        let field = Application::CesmCldhgh.generate(Dims::d2(16, 16), 1);
        let mut registry = Registry::with_defaults();
        let bytes = registry
            .get_mut(CodecId::Sz2)
            .unwrap()
            .compress(&field, ErrorBound::rel(1e-2))
            .unwrap();
        let mut sparse = Registry::empty();
        sparse.register(Box::new(aesz_baselines::Zfp::new()));
        assert!(matches!(
            sparse.decompress_any(&bytes),
            Err(DecompressError::UnknownCodec(2))
        ));
        assert!(matches!(
            sparse.decompress_any(b"garbage!"),
            Err(DecompressError::BadMagic)
        ));
    }

    #[test]
    fn register_replaces_by_codec_id() {
        let mut registry = Registry::empty();
        registry.register(Box::new(aesz_baselines::Sz2 { block_size: 8 }));
        registry.register(Box::new(aesz_baselines::Sz2 { block_size: 4 }));
        assert_eq!(registry.codec_ids(), vec![CodecId::Sz2]);
    }
}
