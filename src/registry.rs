//! Codec registry, cross-codec dispatch, and lazy trained-model resolution.
//!
//! Every stream produced through the [`Compressor`] trait carries the
//! self-describing container frame of [`aesz_metrics::container`], so bytes
//! of unknown provenance can be routed to the right decoder by codec id.
//! [`Registry`] owns one decoder per codec and [`Registry::decompress_any`]
//! performs that dispatch — the entry point a service front-end calls on
//! untrusted traffic.
//!
//! The learned codecs (AE-SZ, AE-A, AE-B) need the *same trained model* the
//! encoder used. Their streams carry that model's content-addressed
//! [`ModelId`](aesz_metrics::ModelId), and the registry is backed by a
//! [`ModelStore`]: when a dispatched codec rejects a stream with
//! [`DecompressError::MissingModel`], [`Registry::decompress_any`] resolves
//! the id through the store (in-memory registrations, sidecar `.aesm`
//! files), registers the freshly built trained instance, and retries once —
//! so `ModelId → trained compressor` happens lazily, on first use. Streams
//! whose model cannot be resolved fail with that same dedicated
//! [`DecompressError::MissingModel`]; every other codec failure is wrapped
//! in [`DecompressError::CodecFailed`] naming the codec that rejected the
//! bytes.

use crate::model_store::ModelStore;
use aesz_metrics::{CodecId, Compressor, DecompressError};
use aesz_tensor::Field;

/// One decoder/encoder per codec id, dispatchable by container frame, backed
/// by a [`ModelStore`] for lazy trained-model resolution.
pub struct Registry {
    entries: Vec<Box<dyn Compressor>>,
    store: ModelStore,
}

impl Registry {
    /// An empty registry; populate it with [`Registry::register`].
    pub fn empty() -> Self {
        Registry {
            entries: Vec::new(),
            store: ModelStore::new(),
        }
    }

    /// A registry holding all seven compressors of the paper's evaluation.
    ///
    /// The five traditional codecs are fully functional immediately. The
    /// learned codecs (AE-SZ, AE-A, AE-B) start as fresh untrained
    /// instances: they encode/decode their *own* streams consistently, but a
    /// foreign learned stream names its trained model by id and is refused
    /// with [`DecompressError::MissingModel`] until that model is available
    /// — registered directly ([`Registry::register`] with a trained
    /// instance), added to the backing [`ModelStore`]
    /// ([`Registry::model_store_mut`], sidecar `.aesm` files), or embedded
    /// in the archive being decoded ([`crate::archive::decompress`]).
    /// Resolution is lazy: `decompress_any` builds and registers the trained
    /// instance on first use. Pre-model (id-less) AE-SZ streams fall back to
    /// geometry checks and decode with whatever model is registered.
    pub fn with_defaults() -> Self {
        use aesz_baselines::{AeA, AeB, Sz2, SzAuto, SzInterp, Zfp};
        use aesz_core::{AeSz, AeSzConfig};
        use aesz_nn::models::conv_ae::{AeConfig, ConvAutoencoder};

        let config = AeSzConfig::default_2d();
        let model = ConvAutoencoder::new(AeConfig {
            spatial_rank: 2,
            block_size: config.block_size,
            latent_dim: 8,
            channels: vec![8, 16],
            variational: false,
            seed: 0,
        });
        let mut registry = Registry::empty();
        registry.register(Box::new(AeSz::new(model, config)));
        registry.register(Box::new(Sz2::new()));
        registry.register(Box::new(Zfp::new()));
        registry.register(Box::new(SzAuto::new()));
        registry.register(Box::new(SzInterp::new()));
        registry.register(Box::new(AeA::new(0)));
        registry.register(Box::new(AeB::new(0)));
        registry
    }

    /// Register a compressor, replacing any previous entry with the same
    /// codec id (so trained models can shadow the defaults).
    pub fn register(&mut self, compressor: Box<dyn Compressor>) {
        let id = compressor.codec_id();
        self.entries.retain(|c| c.codec_id() != id);
        self.entries.push(compressor);
    }

    /// The codec ids currently registered, in registration order.
    pub fn codec_ids(&self) -> Vec<CodecId> {
        self.entries.iter().map(|c| c.codec_id()).collect()
    }

    /// Shared access to the compressor registered for `id`.
    pub fn get(&self, id: CodecId) -> Option<&(dyn Compressor + 'static)> {
        self.entries
            .iter()
            .find(|c| c.codec_id() == id)
            .map(|c| c.as_ref())
    }

    /// Mutable access to the compressor registered for `id`.
    pub fn get_mut(&mut self, id: CodecId) -> Option<&mut (dyn Compressor + 'static)> {
        self.entries
            .iter_mut()
            .find(|c| c.codec_id() == id)
            .map(|c| c.as_mut())
    }

    /// An independent deep copy of the compressor registered for `id`
    /// ([`Compressor::fork`]) — how the archive layer obtains one instance
    /// per in-flight chunk without sharing `&mut` state across threads.
    pub fn fork(&self, id: CodecId) -> Option<Box<dyn Compressor>> {
        self.get(id).map(|c| c.fork())
    }

    /// Iterate over every registered compressor mutably (the sweep harness's
    /// access path).
    pub fn iter_mut(&mut self) -> impl Iterator<Item = &mut Box<dyn Compressor>> {
        self.entries.iter_mut()
    }

    /// The backing model store.
    pub fn model_store(&self) -> &ModelStore {
        &self.store
    }

    /// Mutable access to the backing model store — where trained models are
    /// inserted ([`ModelStore::insert_frame`]) and sidecar directories
    /// attached ([`ModelStore::add_sidecar_dir`]) so `decompress_any` can
    /// resolve foreign learned streams.
    pub fn model_store_mut(&mut self) -> &mut ModelStore {
        &mut self.store
    }

    /// Decode a framed stream from *any* registered codec, dispatching by
    /// the codec id in the container frame. Returns the reconstruction and
    /// which codec produced it; fails (never panics) on malformed frames,
    /// unknown or unregistered codecs, and hostile payloads.
    ///
    /// # Errors
    ///
    /// Frame-level problems ([`DecompressError::BadMagic`],
    /// [`DecompressError::UnknownCodec`], …) are returned as-is. When the
    /// dispatched codec reports [`DecompressError::MissingModel`], the model
    /// id is resolved through the backing [`ModelStore`]; on success the
    /// trained instance is registered (shadowing the previous entry for that
    /// codec) and the decode retried, on failure the `MissingModel` error
    /// propagates unchanged. Any other codec failure is wrapped in
    /// [`DecompressError::CodecFailed`], which names the codec id that
    /// rejected the bytes.
    pub fn decompress_any(&mut self, bytes: &[u8]) -> Result<(Field, CodecId), DecompressError> {
        let id = aesz_metrics::container::peek(bytes)?.codec;
        let codec = self
            .get_mut(id)
            .ok_or(DecompressError::UnknownCodec(id as u8))?;
        let wrap = |error: DecompressError| DecompressError::CodecFailed {
            codec: id,
            error: Box::new(error),
        };
        match codec.decompress(bytes) {
            Ok(field) => Ok((field, id)),
            Err(DecompressError::MissingModel { codec, model_id }) => {
                // Lazy resolution: the stream told us exactly which trained
                // model it needs; build it from the store and retry once.
                let mut built = self.store.build(codec, model_id)?;
                let retried = built.decompress(bytes);
                // Registering the resolved instance evicts the current one —
                // which may be a directly-registered trained model the store
                // has never seen. Salvage its serialized form first, so
                // earlier streams stay resolvable instead of becoming
                // permanently undecodable in this process.
                if let Some(evicted) = self.get(id).and_then(|c| c.embedded_model()) {
                    self.store.insert(evicted);
                }
                self.register(built);
                retried.map(|field| (field, id)).map_err(wrap)
            }
            Err(e) => Err(wrap(e)),
        }
    }
}

impl Default for Registry {
    fn default() -> Self {
        Registry::with_defaults()
    }
}

/// The read-only registry surface the streaming decoder needs, abstracted
/// so a lock-guarded registry can scope each acquisition to one call.
///
/// [`StreamFieldDecoder`](crate::stream::StreamFieldDecoder) runs against
/// `&dyn RegistryAccess` while its caller blocks on transport reads between
/// polls. For a plain [`Registry`] the methods are direct calls; for
/// [`SharedRegistry`] each takes the read lock for just that call — so a
/// slow or hostile byte source can never hold the lock across I/O, and a
/// writer waiting behind it can never wedge every other reader (std's
/// `RwLock` queues new readers behind a blocked writer).
pub trait RegistryAccess {
    /// An independent instance of the compressor registered for `id`
    /// (see [`Registry::fork`]).
    fn fork_codec(&self, id: CodecId) -> Option<Box<dyn Compressor>>;
    /// The trained-model id embedded in the instance registered for
    /// `codec`, if any.
    fn registered_model_id(&self, codec: CodecId) -> Option<aesz_metrics::ModelId>;
    /// Verified model lookup in the backing store (memory, then sidecars).
    fn lookup_model(
        &self,
        id: aesz_metrics::ModelId,
    ) -> Option<aesz_metrics::container::EmbeddedModel>;
}

impl RegistryAccess for Registry {
    fn fork_codec(&self, id: CodecId) -> Option<Box<dyn Compressor>> {
        self.fork(id)
    }

    fn registered_model_id(&self, codec: CodecId) -> Option<aesz_metrics::ModelId> {
        self.get(codec).and_then(|c| c.embedded_model_id())
    }

    fn lookup_model(
        &self,
        id: aesz_metrics::ModelId,
    ) -> Option<aesz_metrics::container::EmbeddedModel> {
        self.model_store().lookup(id)
    }
}

impl RegistryAccess for SharedRegistry {
    fn fork_codec(&self, id: CodecId) -> Option<Box<dyn Compressor>> {
        self.read().fork(id)
    }

    fn registered_model_id(&self, codec: CodecId) -> Option<aesz_metrics::ModelId> {
        self.read().get(codec).and_then(|c| c.embedded_model_id())
    }

    fn lookup_model(
        &self,
        id: aesz_metrics::ModelId,
    ) -> Option<aesz_metrics::container::EmbeddedModel> {
        self.read().model_store().lookup(id)
    }
}

/// A thread-safe registry for long-running services: a [`Registry`] behind
/// an `RwLock`, plus atomic counters for model-cache observability.
///
/// Decompression forks the dispatched codec under a shared *read* lock and
/// decodes outside it, so concurrent requests on hot (already registered)
/// models never serialize on the lock. Lazy model resolution takes the
/// write lock, double-checks whether a racing thread already registered the
/// model while it waited, and only then builds from the store — so N
/// threads racing on the same unresolved model produce exactly one store
/// build ([`SharedRegistry::model_resolutions`]); the N−1 losers count as
/// cache hits ([`SharedRegistry::model_cache_hits`]).
///
/// Lock poisoning is tolerated (`unwrap_or_else(PoisonError::into_inner)`):
/// a panicking thread elsewhere must not wedge the daemon, and the registry
/// holds no invariants that a partial mutation could break — `register`
/// swaps whole entries.
pub struct SharedRegistry {
    inner: std::sync::RwLock<Registry>,
    hits: std::sync::atomic::AtomicU64,
    resolutions: std::sync::atomic::AtomicU64,
}

impl SharedRegistry {
    /// Wrap an existing registry.
    pub fn new(registry: Registry) -> Self {
        SharedRegistry {
            inner: std::sync::RwLock::new(registry),
            hits: std::sync::atomic::AtomicU64::new(0),
            resolutions: std::sync::atomic::AtomicU64::new(0),
        }
    }

    /// A shared default registry of all seven codecs.
    pub fn with_defaults() -> Self {
        SharedRegistry::new(Registry::with_defaults())
    }

    fn read(&self) -> std::sync::RwLockReadGuard<'_, Registry> {
        self.inner.read().unwrap_or_else(|p| p.into_inner())
    }

    fn write(&self) -> std::sync::RwLockWriteGuard<'_, Registry> {
        self.inner.write().unwrap_or_else(|p| p.into_inner())
    }

    /// Run `f` with shared access to the registry.
    pub fn with_read<T>(&self, f: impl FnOnce(&Registry) -> T) -> T {
        f(&self.read())
    }

    /// Run `f` with exclusive access to the registry.
    pub fn with_write<T>(&self, f: impl FnOnce(&mut Registry) -> T) -> T {
        f(&mut self.write())
    }

    /// Register a compressor (see [`Registry::register`]).
    pub fn register(&self, compressor: Box<dyn Compressor>) {
        self.write().register(compressor);
    }

    /// Insert a serialized model frame into the backing store.
    pub fn insert_model_frame(
        &self,
        frame: &[u8],
    ) -> Result<aesz_metrics::ModelId, crate::model_store::ModelStoreError> {
        self.write().model_store_mut().insert_frame(frame)
    }

    /// Attach a sidecar directory to the backing store.
    pub fn add_sidecar_dir(&self, dir: impl Into<std::path::PathBuf>) {
        self.write().model_store_mut().add_sidecar_dir(dir);
    }

    /// Fork an independent instance of the compressor registered for `id`.
    pub fn fork(&self, id: CodecId) -> Option<Box<dyn Compressor>> {
        self.read().fork(id)
    }

    /// Compress `field` with the codec registered for `id`, on a private
    /// fork so concurrent compressions never contend past the read lock.
    pub fn compress(
        &self,
        id: CodecId,
        field: &Field,
        bound: aesz_metrics::ErrorBound,
    ) -> Result<Vec<u8>, DecompressError> {
        let mut instance = self
            .fork(id)
            .ok_or(DecompressError::UnknownCodec(id as u8))?;
        Self::compress_on(instance.as_mut(), field, bound)
    }

    /// Compress `field` on a caller-owned codec instance with the same
    /// error mapping as [`SharedRegistry::compress`] — the entry point for
    /// callers that keep long-lived forks (e.g. the server's per-worker
    /// codec cache) instead of forking per call.
    pub fn compress_on(
        instance: &mut dyn Compressor,
        field: &Field,
        bound: aesz_metrics::ErrorBound,
    ) -> Result<Vec<u8>, DecompressError> {
        instance
            .compress(field, bound)
            .map_err(|e| DecompressError::Unsupported(compress_error_reason(e)))
    }

    /// What is registered for `id` right now: `None` when the codec is
    /// unregistered, `Some(embedded_model_id)` otherwise — so `Some(None)`
    /// means a registered stateless codec. Long-lived forks compare this
    /// against the id they were forked at to learn whether they are stale
    /// (a `Train` re-registering a learned codec changes the id).
    pub fn registered_codec_state(&self, id: CodecId) -> Option<Option<aesz_metrics::ModelId>> {
        self.read().get(id).map(|c| c.embedded_model_id())
    }

    /// Decode a framed stream from any registered codec (the concurrent
    /// counterpart of [`Registry::decompress_any`], taking `&self`).
    ///
    /// # Errors
    ///
    /// Same contract as [`Registry::decompress_any`]: frame-level errors
    /// as-is, unresolvable models as [`DecompressError::MissingModel`],
    /// other codec failures wrapped in [`DecompressError::CodecFailed`].
    pub fn decompress_any(&self, bytes: &[u8]) -> Result<(Field, CodecId), DecompressError> {
        let info = aesz_metrics::container::peek(bytes)?;
        let id = info.codec;
        let mut instance = self
            .fork(id)
            .ok_or(DecompressError::UnknownCodec(id as u8))?;
        let wrap = |error: DecompressError| DecompressError::CodecFailed {
            codec: id,
            error: Box::new(error),
        };
        match instance.decompress(bytes) {
            Ok(field) => {
                if info.model_id.is_some() {
                    // A learned stream decoded without store resolution:
                    // the registered trained instance served it.
                    self.hits.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                }
                Ok((field, id))
            }
            Err(DecompressError::MissingModel { codec, model_id }) => {
                let mut built = self.resolve(codec, model_id)?;
                built.decompress(bytes).map(|f| (f, id)).map_err(wrap)
            }
            Err(e) => Err(wrap(e)),
        }
    }

    /// Resolve `model_id` for `codec`, returning a private trained fork.
    /// Exactly one racing caller builds from the store; the rest fork the
    /// freshly registered instance.
    fn resolve(
        &self,
        codec: CodecId,
        model_id: aesz_metrics::ModelId,
    ) -> Result<Box<dyn Compressor>, DecompressError> {
        let mut guard = self.write();
        // Double-check under the write lock: a racing thread may have
        // resolved this exact model while we waited.
        if guard.get(codec).and_then(|c| c.embedded_model_id()) == Some(model_id) {
            self.hits.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
            return guard
                .fork(codec)
                .ok_or(DecompressError::UnknownCodec(codec as u8));
        }
        let built = guard.model_store_mut().build(codec, model_id)?;
        self.resolutions
            .fetch_add(1, std::sync::atomic::Ordering::Relaxed);
        // Salvage the evicted registered model (see Registry::decompress_any).
        if let Some(evicted) = guard.get(codec).and_then(|c| c.embedded_model()) {
            guard.model_store_mut().insert(evicted);
        }
        let fork = built.fork();
        guard.register(built);
        Ok(fork)
    }

    /// Decodes of learned streams served by an already-registered model.
    pub fn model_cache_hits(&self) -> u64 {
        self.hits.load(std::sync::atomic::Ordering::Relaxed)
    }

    /// Trained models built from the store on demand.
    pub fn model_resolutions(&self) -> u64 {
        self.resolutions.load(std::sync::atomic::Ordering::Relaxed)
    }

    /// Models currently resident in the backing store.
    pub fn models_resident(&self) -> usize {
        self.read().model_store().ids().len()
    }
}

fn compress_error_reason(e: aesz_metrics::CompressError) -> &'static str {
    match e {
        aesz_metrics::CompressError::InvalidBound(what)
        | aesz_metrics::CompressError::UnsupportedField(what)
        | aesz_metrics::CompressError::Untrained(what) => what,
    }
}

/// A fresh default registry of all seven codecs (see
/// [`Registry::with_defaults`] for the trained-model caveat on AE codecs).
pub fn registry() -> Registry {
    Registry::with_defaults()
}

/// Decode a framed stream from any known codec with a shared, lazily built
/// default registry (constructing the default AE models is not free, so the
/// registry is reused per thread across calls). A service that needs trained
/// AE models should hold its own [`Registry`] and call
/// [`Registry::decompress_any`] instead.
pub fn decompress_any(bytes: &[u8]) -> Result<(Field, CodecId), DecompressError> {
    thread_local! {
        static DEFAULT: std::cell::RefCell<Registry> =
            std::cell::RefCell::new(Registry::with_defaults());
    }
    DEFAULT.with(|r| r.borrow_mut().decompress_any(bytes))
}

#[cfg(test)]
mod tests {
    use super::*;
    use aesz_datagen::Application;
    use aesz_metrics::ErrorBound;
    use aesz_tensor::Dims;

    #[test]
    fn defaults_cover_all_seven_codecs() {
        let registry = Registry::with_defaults();
        let ids = registry.codec_ids();
        for id in CodecId::all() {
            assert!(ids.contains(&id), "{id} missing from the default registry");
        }
        assert_eq!(ids.len(), 7);
    }

    #[test]
    fn decompress_any_dispatches_by_frame() {
        let field = Application::CesmCldhgh.generate(Dims::d2(32, 32), 3);
        let mut registry = Registry::with_defaults();
        let bytes = registry
            .get_mut(CodecId::SzInterp)
            .unwrap()
            .compress(&field, ErrorBound::rel(1e-3))
            .unwrap();
        let (recon, id) = registry.decompress_any(&bytes).unwrap();
        assert_eq!(id, CodecId::SzInterp);
        assert_eq!(recon.dims(), field.dims());
        // The free function decodes traditional codecs too.
        let (recon2, id2) = decompress_any(&bytes).unwrap();
        assert_eq!(id2, CodecId::SzInterp);
        assert_eq!(recon2.as_slice(), recon.as_slice());
    }

    #[test]
    fn unregistered_codecs_are_reported() {
        let field = Application::CesmCldhgh.generate(Dims::d2(16, 16), 1);
        let mut registry = Registry::with_defaults();
        let bytes = registry
            .get_mut(CodecId::Sz2)
            .unwrap()
            .compress(&field, ErrorBound::rel(1e-2))
            .unwrap();
        let mut sparse = Registry::empty();
        sparse.register(Box::new(aesz_baselines::Zfp::new()));
        assert!(matches!(
            sparse.decompress_any(&bytes),
            Err(DecompressError::UnknownCodec(2))
        ));
        assert!(matches!(
            sparse.decompress_any(b"garbage!"),
            Err(DecompressError::BadMagic)
        ));
    }

    #[test]
    fn register_replaces_by_codec_id() {
        let mut registry = Registry::empty();
        registry.register(Box::new(aesz_baselines::Sz2 { block_size: 8 }));
        registry.register(Box::new(aesz_baselines::Sz2 { block_size: 4 }));
        assert_eq!(registry.codec_ids(), vec![CodecId::Sz2]);
    }

    #[test]
    fn codec_failures_name_the_failing_codec() {
        let field = Application::CesmCldhgh.generate(Dims::d2(16, 16), 4);
        let mut registry = Registry::with_defaults();
        let bytes = registry
            .get_mut(CodecId::Sz2)
            .unwrap()
            .compress(&field, ErrorBound::rel(1e-2))
            .unwrap();
        // Truncate the payload but keep the frame intact by rewriting the
        // declared length, so the failure comes from SZ2's own parser.
        let cut = bytes.len() - 10;
        let mut evil = bytes[..cut].to_vec();
        let payload_len = (cut - aesz_metrics::container::FRAME_LEN) as u64;
        evil[6..14].copy_from_slice(&payload_len.to_le_bytes());
        match registry.decompress_any(&evil) {
            Err(DecompressError::CodecFailed { codec, error }) => {
                assert_eq!(codec, CodecId::Sz2);
                assert!(!matches!(*error, DecompressError::CodecFailed { .. }));
            }
            other => panic!("expected CodecFailed, got {other:?}"),
        }
    }

    #[test]
    fn lazy_resolution_salvages_the_evicted_registered_model() {
        use aesz_core::training::{train_swae_for_field, TrainingOptions};
        use aesz_core::AeSz;

        let field = Application::CesmCldhgh.generate(Dims::d2(32, 32), 21);
        let train = |seed: u64| {
            let opts = TrainingOptions {
                block_size: 8,
                latent_dim: 4,
                channels: vec![4],
                epochs: 1,
                max_blocks: 8,
                seed,
                ..TrainingOptions::default_for_rank(2)
            };
            let mut t = AeSz::from_model(train_swae_for_field(std::slice::from_ref(&field), &opts));
            t.set_policy(aesz_core::PredictorPolicy::AeOnly);
            t
        };
        let mut a = train(1);
        let mut b = train(2);
        let stream_a = a.compress(&field, ErrorBound::rel(1e-2)).unwrap();
        let stream_b = b.compress(&field, ErrorBound::rel(1e-2)).unwrap();
        let ref_a = a.decompress(&stream_a).unwrap();

        // Model A is *directly registered* (never inserted into the store);
        // model B only exists in the store.
        let mut registry = Registry::with_defaults();
        registry.register(Box::new(a));
        registry
            .model_store_mut()
            .insert_frame(&Compressor::embedded_model(&b).unwrap().frame)
            .unwrap();
        let (got_a, _) = registry.decompress_any(&stream_a).expect("registered A");
        assert_eq!(got_a.as_slice(), ref_a.as_slice());
        // Resolving B registers it, evicting A — whose model must be
        // salvaged into the store so stream A stays decodable.
        registry.decompress_any(&stream_b).expect("resolved B");
        let (again_a, _) = registry
            .decompress_any(&stream_a)
            .expect("A must survive B's resolution");
        assert_eq!(again_a.as_slice(), ref_a.as_slice());
    }

    #[test]
    fn missing_models_resolve_lazily_from_the_store() {
        use aesz_core::training::{train_swae_for_field, TrainingOptions};
        use aesz_core::AeSz;

        let field = Application::CesmCldhgh.generate(Dims::d2(32, 32), 8);
        let opts = TrainingOptions {
            block_size: 8,
            latent_dim: 4,
            channels: vec![4],
            epochs: 2,
            max_blocks: 16,
            seed: 14,
            ..TrainingOptions::default_for_rank(2)
        };
        let mut trained =
            AeSz::from_model(train_swae_for_field(std::slice::from_ref(&field), &opts));
        // Force every block through the autoencoder so the stream is
        // guaranteed to need the model (Adaptive could route everything to
        // Lorenzo on an easy field and dodge the resolution path).
        trained.set_policy(aesz_core::PredictorPolicy::AeOnly);
        let bytes = trained.compress(&field, ErrorBound::rel(1e-2)).unwrap();
        assert_eq!(trained.last_report().ae_blocks, 16, "all blocks AE-coded");
        let reference = trained.decompress(&bytes).unwrap();
        let model = Compressor::embedded_model(&trained).expect("AE-SZ carries its model");

        // A fresh default registry that never saw the trainer refuses with
        // the dedicated missing-model error…
        let mut fresh = Registry::with_defaults();
        assert!(matches!(
            fresh.decompress_any(&bytes),
            Err(DecompressError::MissingModel { codec: CodecId::AeSz, model_id })
                if model_id == model.id
        ));
        // …until the model enters the store, after which the same call
        // resolves it lazily and decodes bit-identically.
        fresh
            .model_store_mut()
            .insert_frame(&model.frame)
            .expect("valid frame");
        let (recon, id) = fresh.decompress_any(&bytes).expect("resolved");
        assert_eq!(id, CodecId::AeSz);
        assert_eq!(recon.as_slice(), reference.as_slice());
        // The resolved instance is now registered: a second decode needs no
        // store lookup and still succeeds.
        let (again, _) = fresh.decompress_any(&bytes).expect("cached");
        assert_eq!(again.as_slice(), reference.as_slice());
    }
}
