//! Registry-driven entry points to the streaming archive layer.
//!
//! [`aesz_metrics::archive`] owns the mechanics (chunk grid, windowed
//! rayon-parallel batches, bounded-memory sources/sinks, the validated
//! on-disk format of [`aesz_metrics::container`]); this module binds them to
//! the codec [`Registry`], which is where per-chunk codec heterogeneity and
//! trained-model lookup live:
//!
//! * [`compress_field`] — archive an in-memory field with one codec;
//! * [`compress_field_with`] — pick the codec *per chunk* (e.g. a cheap
//!   traditional codec for boundary chunks and AE-SZ for the interior);
//! * [`decompress`] — windowed parallel decode of a whole archive,
//!   dispatching every chunk to the registered codec its index entry names;
//! * [`decompress_chunk`] — random-access decode of a single chunk by index
//!   without touching the rest of the archive.
//!
//! Out-of-core pipelines (raw files larger than RAM) skip the field-level
//! helpers and drive [`write_archive`] / [`ArchiveReader::decode_into`] with
//! their own [`ChunkSource`] / [`ChunkSink`] — the `aesz` CLI does exactly
//! that with seek-based file IO.

pub use aesz_metrics::archive::{
    chunk_dims, write_archive, write_field_archive, ArchiveOptions, ArchiveReadError,
    ArchiveReader, ArchiveStats, ArchiveWriteError, ChunkSink, ChunkSource, CompressorFork,
    DecoderFork, FieldSink, FieldSource,
};
pub use aesz_metrics::container::{ArchiveHeader, ChunkEntry};

use crate::registry::Registry;
use aesz_metrics::{CodecId, CompressError, DecompressError, ErrorBound};
use aesz_tensor::{BlockSpec, Field};

/// Compress `field` into a multi-chunk archive, every chunk through the
/// registered codec `codec`. Returns the archive bytes and the writer's
/// bounded-memory stats.
pub fn compress_field(
    registry: &Registry,
    field: &Field,
    bound: ErrorBound,
    opts: &ArchiveOptions,
    codec: CodecId,
) -> Result<(Vec<u8>, ArchiveStats), ArchiveWriteError> {
    compress_field_with(registry, field, bound, opts, |_| codec)
}

/// Compress `field` into a multi-chunk archive, choosing the codec **per
/// chunk** with `pick` (called with each chunk's placement). Every named
/// codec is forked from the registry, so trained models registered via
/// [`Registry::register`] are what encode.
pub fn compress_field_with(
    registry: &Registry,
    field: &Field,
    bound: ErrorBound,
    opts: &ArchiveOptions,
    mut pick: impl FnMut(&BlockSpec) -> CodecId,
) -> Result<(Vec<u8>, ArchiveStats), ArchiveWriteError> {
    write_field_archive(field, bound, opts, &mut |spec: &BlockSpec| {
        let id = pick(spec);
        registry
            .fork(id)
            .ok_or(CompressError::UnsupportedField("codec not registered"))
    })
}

/// Decode a whole archive into an in-memory field, dispatching every chunk
/// to the registered codec its index entry names, in rayon-parallel windows
/// of `window` chunks. Returns the field and the codec that decoded each
/// chunk (index order).
pub fn decompress(
    registry: &Registry,
    bytes: &[u8],
    window: usize,
) -> Result<(Field, Vec<CodecId>), ArchiveReadError> {
    let reader = ArchiveReader::open(bytes)?;
    let codecs: Vec<CodecId> = reader.entries().iter().map(|e| e.codec).collect();
    let field = reader.decode_all(window, &mut |id| {
        registry
            .fork(id)
            .ok_or(DecompressError::UnknownCodec(id as u8))
    })?;
    Ok((field, codecs))
}

/// Random-access decode of the single chunk `index`: returns its placement
/// in the field and its reconstructed values. Only that chunk's frame is
/// read and decoded.
pub fn decompress_chunk(
    registry: &Registry,
    bytes: &[u8],
    index: usize,
) -> Result<(BlockSpec, Field), ArchiveReadError> {
    let reader = ArchiveReader::open(bytes)?;
    let entry = *reader
        .entries()
        .get(index)
        .ok_or(ArchiveReadError::Archive(DecompressError::Inconsistent(
            "chunk index out of range",
        )))?;
    let mut codec = registry.fork(entry.codec).ok_or(ArchiveReadError::Archive(
        DecompressError::UnknownCodec(entry.codec as u8),
    ))?;
    let spec = reader.chunk_spec(index).expect("index checked");
    let field = reader
        .decode_chunk(index, codec.as_mut())
        .map_err(|error| ArchiveReadError::Chunk {
            chunk: index,
            error,
        })?;
    Ok((spec, field))
}

#[cfg(test)]
mod tests {
    use super::*;
    use aesz_datagen::Application;
    use aesz_tensor::Dims;

    #[test]
    fn registry_archive_roundtrip_with_mixed_codecs() {
        let registry = Registry::with_defaults();
        let field = Application::CesmCldhgh.generate(Dims::d2(40, 56), 9);
        let opts = ArchiveOptions {
            chunk: 16,
            window: 3,
        };
        let lenses = [
            CodecId::Sz2,
            CodecId::Zfp,
            CodecId::SzInterp,
            CodecId::SzAuto,
        ];
        let bound = ErrorBound::rel(1e-3);
        let (bytes, stats) =
            compress_field_with(&registry, &field, bound, &opts, |spec: &BlockSpec| {
                lenses[spec.index % lenses.len()]
            })
            .expect("archive write");
        assert_eq!(stats.chunks, 3 * 4);
        let (recon, codecs) = decompress(&registry, &bytes, 4).expect("archive read");
        assert_eq!(recon.dims(), field.dims());
        for (i, id) in codecs.iter().enumerate() {
            assert_eq!(*id, lenses[i % lenses.len()]);
        }
        let abs = bound.resolve(&field);
        for (a, b) in field.as_slice().iter().zip(recon.as_slice()) {
            assert!(((a - b) as f64).abs() <= abs * 1.0001);
        }
        // Random access agrees with the full decode, chunk by chunk.
        for i in 0..stats.chunks {
            let (spec, chunk) = decompress_chunk(&registry, &bytes, i).expect("chunk");
            assert_eq!(chunk.as_slice(), recon.read_block_valid(&spec).as_slice());
        }
        assert!(decompress_chunk(&registry, &bytes, stats.chunks).is_err());
    }

    #[test]
    fn unregistered_codecs_fail_cleanly() {
        let registry = Registry::with_defaults();
        let field = Application::CesmCldhgh.generate(Dims::d2(16, 16), 2);
        let opts = ArchiveOptions {
            chunk: 8,
            window: 2,
        };
        let (bytes, _) = compress_field(
            &registry,
            &field,
            ErrorBound::rel(1e-3),
            &opts,
            CodecId::Sz2,
        )
        .unwrap();
        let mut sparse = Registry::empty();
        sparse.register(Box::new(aesz_baselines::Zfp::new()));
        assert!(matches!(
            decompress(&sparse, &bytes, 2),
            Err(ArchiveReadError::Chunk { .. })
        ));
        assert!(
            compress_field(&sparse, &field, ErrorBound::rel(1e-3), &opts, CodecId::Sz2).is_err()
        );
    }
}
