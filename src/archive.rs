//! Registry-driven entry points to the streaming archive layer.
//!
//! [`aesz_metrics::archive`] owns the mechanics (chunk grid, windowed
//! rayon-parallel batches, bounded-memory sources/sinks, the validated
//! on-disk format of [`aesz_metrics::container`]); this module binds them to
//! the codec [`Registry`], which is where per-chunk codec heterogeneity and
//! trained-model lookup live:
//!
//! * [`compress_field`] — archive an in-memory field with one codec;
//! * [`compress_field_with`] — pick the codec *per chunk* (e.g. a cheap
//!   traditional codec for boundary chunks and AE-SZ for the interior);
//! * [`decompress`] — windowed parallel decode of a whole archive,
//!   dispatching every chunk to the registered codec its index entry names;
//! * [`decompress_chunk`] — random-access decode of a single chunk by index
//!   without touching the rest of the archive.
//!
//! Out-of-core pipelines (raw files larger than RAM) skip the field-level
//! helpers and drive [`write_archive`] / [`ArchiveReader::decode_into`] with
//! their own [`ChunkSource`] / [`ChunkSink`] — the `aesz` CLI does exactly
//! that with seek-based file IO.

pub use aesz_metrics::archive::{
    chunk_dims, write_archive, write_archive_embedding, write_archive_stream, write_field_archive,
    write_field_archive_embedding, ArchiveAppender, ArchiveOptions, ArchiveReadError,
    ArchiveReader, ArchiveStats, ArchiveWriteError, ChunkSink, ChunkSource, CompressorFork,
    DecoderFork, FieldSink, FieldSource,
};
pub use aesz_metrics::container::{ArchiveHeader, ChunkEntry};

use crate::model_store::build_compressor;
use crate::registry::Registry;
use aesz_metrics::{
    CodecId, CompressError, Compressor, DecompressError, EmbeddedModel, ErrorBound, ModelId,
};
use aesz_tensor::{BlockSpec, Field};
use std::collections::HashMap;

/// Compress `field` into a multi-chunk archive, every chunk through the
/// registered codec `codec`. Returns the archive bytes and the writer's
/// bounded-memory stats.
pub fn compress_field(
    registry: &Registry,
    field: &Field,
    bound: ErrorBound,
    opts: &ArchiveOptions,
    codec: CodecId,
) -> Result<(Vec<u8>, ArchiveStats), ArchiveWriteError> {
    compress_field_with(registry, field, bound, opts, |_| codec)
}

/// Compress `field` into a multi-chunk archive, choosing the codec **per
/// chunk** with `pick` (called with each chunk's placement). Every named
/// codec is forked from the registry, so trained models registered via
/// [`Registry::register`] are what encode.
pub fn compress_field_with(
    registry: &Registry,
    field: &Field,
    bound: ErrorBound,
    opts: &ArchiveOptions,
    mut pick: impl FnMut(&BlockSpec) -> CodecId,
) -> Result<(Vec<u8>, ArchiveStats), ArchiveWriteError> {
    write_field_archive(field, bound, opts, &mut |spec: &BlockSpec| {
        let id = pick(spec);
        registry
            .fork(id)
            .ok_or(CompressError::UnsupportedField("codec not registered"))
    })
}

/// [`compress_field_with`], but as a **version-2 archive that embeds the
/// trained models** of the learned codecs used: each distinct model is
/// shipped once in the archive's model section, so the archive bytes alone
/// are enough for a fresh process — one that never saw the trainer — to
/// decode every chunk ([`decompress`] resolves embedded models
/// automatically).
pub fn compress_field_embedding(
    registry: &Registry,
    field: &Field,
    bound: ErrorBound,
    opts: &ArchiveOptions,
    mut pick: impl FnMut(&BlockSpec) -> CodecId,
) -> Result<(Vec<u8>, ArchiveStats), ArchiveWriteError> {
    write_field_archive_embedding(field, bound, opts, &mut |spec: &BlockSpec| {
        let id = pick(spec);
        registry
            .fork(id)
            .ok_or(CompressError::UnsupportedField("codec not registered"))
    })
}

/// Read the model id stamped into a chunk frame's payload, for the learned
/// codecs that stamp one. Traditional codecs and pre-model streams yield
/// `None`, as does a frame whose codec disagrees with its index entry.
fn peek_stream_model_id(codec: CodecId, frame: &[u8]) -> Option<ModelId> {
    aesz_metrics::container::peek(frame)
        .ok()
        .filter(|info| info.codec == codec)?
        .model_id
}

/// Per-archive trained-model resolution: one built compressor prototype per
/// distinct `(codec, model id)` pair the archive's chunks reference, so an
/// archive whose chunks of one codec were encoded by *different* trained
/// models (all embedded, or all in the store) still decodes — dispatch is
/// per chunk, not per codec.
///
/// Models resolve from the archive's embedded model section (v2,
/// hash-verified at open) first, then from the registry's [`ModelStore`]
/// (in-memory registrations and sidecar files); ids the registered instance
/// already holds need no prototype (the plain registry fork serves them),
/// and unresolvable ids are left to the codec itself, which reports the
/// dedicated [`DecompressError::MissingModel`] at decode time.
///
/// [`ModelStore`]: crate::model_store::ModelStore
pub struct ArchiveDecoders<'a> {
    registry: &'a Registry,
    /// One entry per distinct `(codec, model id)` the chunks reference —
    /// `None` records a resolution that failed (model absent or corrupt),
    /// so a missing model costs one lookup, not one per chunk.
    resolved: HashMap<(CodecId, ModelId), Option<Box<dyn Compressor>>>,
}

impl<'a> ArchiveDecoders<'a> {
    /// Resolve every distinct `(codec, model id)` pair referenced by
    /// `reader`'s chunks (each model is looked up, verified and built once,
    /// however many chunks share it).
    pub fn resolve(registry: &'a Registry, reader: &ArchiveReader) -> Self {
        let mut resolved = HashMap::new();
        for (i, entry) in reader.entries().iter().enumerate() {
            let codec = entry.codec;
            if !matches!(codec, CodecId::AeSz | CodecId::AeA | CodecId::AeB) {
                continue;
            }
            let Some(frame) = reader.chunk_frame(i) else {
                continue;
            };
            let Some(model_id) = peek_stream_model_id(codec, frame) else {
                continue;
            };
            let key = (codec, model_id);
            if resolved.contains_key(&key) {
                continue;
            }
            // The registered instance may already hold this model (cached-id
            // comparison — no serialization).
            if registry.get(codec).and_then(|c| c.embedded_model_id()) == Some(model_id) {
                continue;
            }
            let model = match reader.model_frame(model_id) {
                // Embedded frames were hash-verified when the reader opened.
                Some(mf) => EmbeddedModel::from_frame(mf).ok().map(|(m, _)| m),
                None => registry
                    .model_store()
                    .lookup(model_id)
                    .filter(|m| m.codec() == codec),
            };
            // Failed resolutions are cached too (as None): the codec itself
            // reports MissingModel per chunk, and re-probing sidecar
            // directories for every chunk of an absent model would be
            // O(chunks × model bytes).
            resolved.insert(key, model.and_then(|m| build_compressor(&m).ok()));
        }
        ArchiveDecoders { registry, resolved }
    }

    /// The decoder for chunk `index` of `reader` (codec `id` per its index
    /// entry): a fork of the chunk's resolved trained prototype when one was
    /// built, the plain registry instance otherwise — the factory shape
    /// [`ArchiveReader::decode_into`] consumes.
    pub fn fork_for(
        &self,
        reader: &ArchiveReader,
        index: usize,
        id: CodecId,
    ) -> Result<Box<dyn Compressor>, DecompressError> {
        if let Some(frame) = reader.chunk_frame(index) {
            if let Some(model_id) = peek_stream_model_id(id, frame) {
                if let Some(Some(proto)) = self.resolved.get(&(id, model_id)) {
                    return Ok(proto.fork());
                }
            }
        }
        self.registry
            .fork(id)
            .ok_or(DecompressError::UnknownCodec(id as u8))
    }
}

/// Decode a whole archive into an in-memory field, dispatching every chunk
/// to the registered codec its index entry names, in rayon-parallel windows
/// of `window` chunks. Returns the field and the codec that decoded each
/// chunk (index order).
///
/// Learned chunks resolve their trained models automatically (per chunk, by
/// the model id stamped in the chunk's stream — see [`ArchiveDecoders`]) and
/// fail with [`DecompressError::MissingModel`] when neither the archive nor
/// the registry's store has the model a stream names.
pub fn decompress(
    registry: &Registry,
    bytes: &[u8],
    window: usize,
) -> Result<(Field, Vec<CodecId>), ArchiveReadError> {
    let reader = ArchiveReader::open(bytes)?;
    let codecs: Vec<CodecId> = reader.entries().iter().map(|e| e.codec).collect();
    let decoders = ArchiveDecoders::resolve(registry, &reader);
    let field = reader.decode_all(window, &mut |index, id| {
        decoders.fork_for(&reader, index, id)
    })?;
    Ok((field, codecs))
}

/// Random-access decode of the single chunk `index`: returns its placement
/// in the field and its reconstructed values. Only that chunk's frame is
/// read and decoded (plus, for a learned chunk, its model — embedded or from
/// the registry's store).
pub fn decompress_chunk(
    registry: &Registry,
    bytes: &[u8],
    index: usize,
) -> Result<(BlockSpec, Field), ArchiveReadError> {
    let reader = ArchiveReader::open(bytes)?;
    let entry = *reader
        .entries()
        .get(index)
        .ok_or(ArchiveReadError::Archive(DecompressError::Inconsistent(
            "chunk index out of range",
        )))?;
    // Resolve just this chunk's model (if any), not the whole archive's.
    let mut codec = resolve_one(registry, &reader, index, entry.codec).map_or_else(
        || {
            registry.fork(entry.codec).ok_or(ArchiveReadError::Archive(
                DecompressError::UnknownCodec(entry.codec as u8),
            ))
        },
        Ok,
    )?;
    let spec = reader.chunk_spec(index).ok_or(ArchiveReadError::Archive(
        DecompressError::Inconsistent("chunk index out of range"),
    ))?;
    let field = reader
        .decode_chunk(index, codec.as_mut())
        .map_err(|error| ArchiveReadError::Chunk {
            chunk: index,
            error,
        })?;
    Ok((spec, field))
}

/// Build the trained compressor chunk `index`'s stream names, if its model
/// can be found and the registered instance does not already hold it.
fn resolve_one(
    registry: &Registry,
    reader: &ArchiveReader,
    index: usize,
    codec: CodecId,
) -> Option<Box<dyn Compressor>> {
    if !matches!(codec, CodecId::AeSz | CodecId::AeA | CodecId::AeB) {
        return None;
    }
    let model_id = peek_stream_model_id(codec, reader.chunk_frame(index)?)?;
    if registry.get(codec).and_then(|c| c.embedded_model_id()) == Some(model_id) {
        return None;
    }
    let model = match reader.model_frame(model_id) {
        Some(mf) => EmbeddedModel::from_frame(mf).ok()?.0,
        None => registry
            .model_store()
            .lookup(model_id)
            .filter(|m| m.codec() == codec)?,
    };
    build_compressor(&model).ok()
}

#[cfg(test)]
mod tests {
    use super::*;
    use aesz_datagen::Application;
    use aesz_tensor::Dims;

    #[test]
    fn registry_archive_roundtrip_with_mixed_codecs() {
        let registry = Registry::with_defaults();
        let field = Application::CesmCldhgh.generate(Dims::d2(40, 56), 9);
        let opts = ArchiveOptions::new().chunk(16).window(3);
        let lenses = [
            CodecId::Sz2,
            CodecId::Zfp,
            CodecId::SzInterp,
            CodecId::SzAuto,
        ];
        let bound = ErrorBound::rel(1e-3);
        let (bytes, stats) =
            compress_field_with(&registry, &field, bound, &opts, |spec: &BlockSpec| {
                lenses[spec.index % lenses.len()]
            })
            .expect("archive write");
        assert_eq!(stats.chunks, 3 * 4);
        let (recon, codecs) = decompress(&registry, &bytes, 4).expect("archive read");
        assert_eq!(recon.dims(), field.dims());
        for (i, id) in codecs.iter().enumerate() {
            assert_eq!(*id, lenses[i % lenses.len()]);
        }
        let abs = bound.resolve(&field);
        for (a, b) in field.as_slice().iter().zip(recon.as_slice()) {
            assert!(((a - b) as f64).abs() <= abs * 1.0001);
        }
        // Random access agrees with the full decode, chunk by chunk.
        for i in 0..stats.chunks {
            let (spec, chunk) = decompress_chunk(&registry, &bytes, i).expect("chunk");
            assert_eq!(chunk.as_slice(), recon.read_block_valid(&spec).as_slice());
        }
        assert!(decompress_chunk(&registry, &bytes, stats.chunks).is_err());
    }

    #[test]
    fn unregistered_codecs_fail_cleanly() {
        let registry = Registry::with_defaults();
        let field = Application::CesmCldhgh.generate(Dims::d2(16, 16), 2);
        let opts = ArchiveOptions::new().chunk(8).window(2);
        let (bytes, _) = compress_field(
            &registry,
            &field,
            ErrorBound::rel(1e-3),
            &opts,
            CodecId::Sz2,
        )
        .unwrap();
        let mut sparse = Registry::empty();
        sparse.register(Box::new(aesz_baselines::Zfp::new()));
        assert!(matches!(
            decompress(&sparse, &bytes, 2),
            Err(ArchiveReadError::Chunk { .. })
        ));
        assert!(
            compress_field(&sparse, &field, ErrorBound::rel(1e-3), &opts, CodecId::Sz2).is_err()
        );
    }
}
