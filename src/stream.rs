//! Registry-driven incremental decoding of pushed byte streams.
//!
//! [`aesz_metrics::stream::StreamDecoder`] owns the byte-level state machine
//! (feed bytes in any granularity, get validated parse events out); this
//! module binds it to the codec [`Registry`], turning those events into
//! decoded fields:
//!
//! * [`StreamFieldDecoder`] — the push-based core: [`feed`] arbitrary byte
//!   slices (a socket, a pipe, a file tail), [`poll`] decoded output —
//!   archive geometry, decoded chunks with their placement, or a whole field
//!   for single-frame streams. Resident memory is bounded by one chunk
//!   frame plus the decoder's internal buffer, never the archive.
//! * [`decompress_reader`] — the pull convenience over any [`std::io::Read`]:
//!   drives a [`StreamFieldDecoder`] with a fixed read buffer and assembles
//!   the chunks into an in-memory field.
//!
//! Trained-model resolution works like the buffered
//! [`decompress`](crate::archive::decompress), with one twist inherent to
//! streaming: an archive's embedded model section arrives *after* its
//! chunks. A learned chunk whose model is not yet resolvable (not in the
//! registry, not in its [`ModelStore`](crate::model_store::ModelStore)) is
//! deferred — its compressed frame is parked, costing compressed (not raw)
//! bytes — and decoded the moment the tail supplies the model. Chunks whose
//! model never shows up fail with the dedicated
//! [`DecompressError::MissingModel`] when the stream ends.
//!
//! [`feed`]: StreamFieldDecoder::feed
//! [`poll`]: StreamFieldDecoder::poll

use std::collections::{HashMap, VecDeque};

use crate::archive::ArchiveReadError;
use crate::model_store::build_compressor;
use crate::registry::{Registry, RegistryAccess};
use aesz_metrics::container::{ArchiveHeader, CodecId, EmbeddedModel, ModelId};
use aesz_metrics::stream::{StreamDecoder, StreamEvent};
use aesz_metrics::{Compressor, DecompressError};
use aesz_tensor::{BlockSpec, Field};

/// One decoded unit of a pushed stream.
#[derive(Debug)]
pub enum StreamOutput {
    /// The stream is a multi-chunk archive with this geometry. Always the
    /// first output of an archive stream — a sink can size its destination
    /// before any chunk arrives.
    Header(ArchiveHeader),
    /// One decoded archive chunk and its placement in the field. Chunks
    /// normally arrive in index order; chunks deferred on a missing model
    /// are emitted later, when the archive's model tail resolves them.
    Chunk(BlockSpec, Field),
    /// The stream was a single container frame: the whole reconstruction.
    Field(Field),
}

/// A learned chunk frame parked until its trained model arrives.
struct Deferred {
    index: usize,
    codec: CodecId,
    model_id: ModelId,
    frame: Vec<u8>,
}

/// Push-based incremental decoder: bytes in ([`feed`]), decoded fields and
/// chunks out ([`poll`]), bounded residency throughout.
///
/// ```no_run
/// use aesz_repro::stream::{StreamFieldDecoder, StreamOutput};
/// use aesz_repro::Registry;
///
/// let registry = Registry::with_defaults();
/// let mut decoder = StreamFieldDecoder::new(&registry);
/// # let packets: Vec<Vec<u8>> = vec![];
/// for packet in packets {
///     decoder.feed(&packet);
///     while let Some(out) = decoder.poll().unwrap() {
///         match out {
///             StreamOutput::Header(h) => eprintln!("archive of {:?}", h.dims),
///             StreamOutput::Chunk(spec, chunk) => { /* place chunk at spec */ }
///             StreamOutput::Field(field) => { /* whole reconstruction */ }
///         }
///     }
/// }
/// decoder.finish();
/// while let Some(out) = decoder.poll().unwrap() { /* tail chunks */ }
/// ```
///
/// [`feed`]: StreamFieldDecoder::feed
/// [`poll`]: StreamFieldDecoder::poll
pub struct StreamFieldDecoder<'r> {
    /// Registry access is per-call ([`RegistryAccess`]): with a
    /// [`SharedRegistry`](crate::SharedRegistry) behind this reference, no
    /// lock is ever held between [`poll`](StreamFieldDecoder::poll) calls —
    /// a caller may block on transport I/O without starving writers.
    registry: &'r dyn RegistryAccess,
    inner: StreamDecoder,
    header: Option<ArchiveHeader>,
    /// Decoded-but-not-yet-polled output (a model arriving in the tail can
    /// unblock several deferred chunks at once).
    ready: VecDeque<StreamOutput>,
    deferred: Vec<Deferred>,
    /// Trained prototypes built for this stream, one per distinct
    /// `(codec, model id)` — forked per chunk like the buffered reader.
    protos: HashMap<(CodecId, ModelId), Box<dyn Compressor>>,
    /// Learned chunks served directly by the registered instance (the
    /// model-cache-hit half of the daemon's stats).
    registry_hits: u64,
}

impl<'r> StreamFieldDecoder<'r> {
    /// A decoder dispatching to `registry`'s codecs and model store — a
    /// plain [`Registry`] or anything else implementing [`RegistryAccess`]
    /// (a [`SharedRegistry`](crate::SharedRegistry) for concurrent callers).
    pub fn new<R: RegistryAccess>(registry: &'r R) -> Self {
        StreamFieldDecoder {
            registry,
            inner: StreamDecoder::new(),
            header: None,
            ready: VecDeque::new(),
            deferred: Vec::new(),
            protos: HashMap::new(),
            registry_hits: 0,
        }
    }

    /// Push the next bytes of the stream. Never fails — errors surface on
    /// [`poll`](StreamFieldDecoder::poll).
    pub fn feed(&mut self, bytes: &[u8]) {
        self.inner.feed(bytes);
    }

    /// Declare the end of input. Required: a stream that merely stops is
    /// indistinguishable from one still in flight, so truncation is only
    /// detected (and deferred chunks only fail with their missing-model
    /// error) after this call. Keep polling until `Ok(None)` afterwards.
    pub fn finish(&mut self) {
        self.inner.finish();
    }

    /// The archive geometry, once the header has been parsed (`None` before
    /// that, and forever for single-frame streams).
    pub fn archive_header(&self) -> Option<&ArchiveHeader> {
        self.header.as_ref()
    }

    /// High-water mark of the parser's internal byte buffer — the witness
    /// that residency is bounded by one section, not the stream.
    pub fn peak_buffered(&self) -> usize {
        self.inner.peak_buffered()
    }

    /// Distinct trained models this stream made resident (built from the
    /// registry's store or the archive's embedded model tail).
    pub fn resolved_models(&self) -> usize {
        self.protos.len()
    }

    /// Learned chunks decoded by the already-registered trained instance —
    /// no store lookup, no prototype build.
    pub fn registry_model_hits(&self) -> u64 {
        self.registry_hits
    }

    /// Next decoded output, `Ok(None)` when more input (or
    /// [`finish`](StreamFieldDecoder::finish)) is needed. Errors are sticky;
    /// decode failures name the codec via [`DecompressError::CodecFailed`],
    /// except [`DecompressError::MissingModel`], which propagates unchanged.
    pub fn poll(&mut self) -> Result<Option<StreamOutput>, DecompressError> {
        loop {
            if let Some(out) = self.ready.pop_front() {
                return Ok(Some(out));
            }
            let Some(event) = self.inner.poll()? else {
                // End of a well-formed stream: any chunk still deferred
                // references a model neither the archive nor the store has.
                if self.inner.is_done() {
                    if let Some(miss) = self.deferred.pop() {
                        return Err(DecompressError::MissingModel {
                            codec: miss.codec,
                            model_id: miss.model_id,
                        });
                    }
                }
                return Ok(None);
            };
            match event {
                StreamEvent::ArchiveHeader(h) => {
                    self.header = Some(h);
                    return Ok(Some(StreamOutput::Header(h)));
                }
                StreamEvent::IndexEntry { .. } | StreamEvent::FrameHeader(_) => {}
                StreamEvent::ChunkFrame {
                    index,
                    codec,
                    frame,
                } => {
                    if let Some(out) = self.decode_or_defer(index, codec, frame)? {
                        return Ok(Some(out));
                    }
                }
                StreamEvent::Model { id, frame } => {
                    // Hash-verified by the parser; a malformed model frame
                    // still fails here rather than poisoning the prototypes.
                    let (model, codec) = EmbeddedModel::from_frame(&frame)?;
                    if let Ok(proto) = build_compressor(&model) {
                        self.protos.insert((codec, id), proto);
                    }
                    // Un-defer every chunk this model unblocks, preserving
                    // index order among them.
                    let mut still = Vec::with_capacity(self.deferred.len());
                    for d in std::mem::take(&mut self.deferred) {
                        if d.model_id == id {
                            let out = self.decode_or_defer(d.index, d.codec, d.frame)?;
                            debug_assert!(
                                out.is_none() || !matches!(out, Some(StreamOutput::Header(_)))
                            );
                            if let Some(out) = out {
                                self.ready.push_back(out);
                            }
                        } else {
                            still.push(d);
                        }
                    }
                    // `decode_or_defer` may have re-parked a chunk just now
                    // (an unbuildable model, or a model whose codec is not
                    // the chunk's): merge those back, never clobber them.
                    still.append(&mut self.deferred);
                    self.deferred = still;
                }
            }
        }
    }

    /// Decode chunk `index` now if its codec (and, for learned streams, its
    /// trained model) is available; park it until the model tail otherwise.
    fn decode_or_defer(
        &mut self,
        index: usize,
        codec: CodecId,
        frame: Vec<u8>,
    ) -> Result<Option<StreamOutput>, DecompressError> {
        let model_id = aesz_metrics::container::peek(&frame)
            .ok()
            .and_then(|info| info.model_id);
        let mut decoder = match model_id {
            Some(id) if self.needs_resolution(codec, id) => {
                match self.resolve(codec, id) {
                    Some(proto) => proto,
                    // Not resolvable yet — the archive's model tail is still
                    // to come. Park the compressed frame.
                    None => {
                        self.deferred.push(Deferred {
                            index,
                            codec,
                            model_id: id,
                            frame,
                        });
                        return Ok(None);
                    }
                }
            }
            Some(_) => {
                // The registered instance already holds this exact model.
                self.registry_hits += 1;
                self.registry
                    .fork_codec(codec)
                    .ok_or(DecompressError::UnknownCodec(codec as u8))?
            }
            None => self
                .registry
                .fork_codec(codec)
                .ok_or(DecompressError::UnknownCodec(codec as u8))?,
        };
        let wrap = |error: DecompressError| match error {
            miss @ DecompressError::MissingModel { .. } => miss,
            error => DecompressError::CodecFailed {
                codec,
                error: Box::new(error),
            },
        };
        let field = match decoder.decompress(&frame) {
            Ok(field) => field,
            Err(miss @ DecompressError::MissingModel { .. }) => {
                let Some(id) = model_id else {
                    return Err(miss);
                };
                // With a shared registry each access above takes its own
                // short lock, so the instance `needs_resolution` vouched for
                // can be replaced before the fork. Models that were ever
                // resident are salvaged into the store, so a store retry
                // usually recovers; otherwise the chunk parks until the
                // archive's model tail arrives (or fails at finish).
                match self.resolve(codec, id) {
                    Some(mut proto) => proto.decompress(&frame).map_err(wrap)?,
                    None => {
                        self.deferred.push(Deferred {
                            index,
                            codec,
                            model_id: id,
                            frame,
                        });
                        return Ok(None);
                    }
                }
            }
            Err(error) => return Err(wrap(error)),
        };
        Ok(Some(match self.header {
            Some(h) => StreamOutput::Chunk(BlockSpec::of(h.dims, h.chunk, index), field),
            None => StreamOutput::Field(field),
        }))
    }

    /// Does decoding a `codec` stream naming model `id` need a prototype
    /// beyond the registered instance?
    fn needs_resolution(&self, codec: CodecId, id: ModelId) -> bool {
        self.registry.registered_model_id(codec) != Some(id)
    }

    /// A decoder holding model `id`: a fork of an already-built prototype,
    /// or one freshly built from the registry's model store.
    fn resolve(&mut self, codec: CodecId, id: ModelId) -> Option<Box<dyn Compressor>> {
        if let Some(proto) = self.protos.get(&(codec, id)) {
            return Some(proto.fork());
        }
        let model = self
            .registry
            .lookup_model(id)
            .filter(|m| m.codec() == codec)?;
        let proto = build_compressor(&model).ok()?;
        let fork = proto.fork();
        self.protos.insert((codec, id), proto);
        Some(fork)
    }
}

/// Decode a complete stream (single frame or archive) from any
/// [`std::io::Read`] into an in-memory field, reading in fixed-size slabs —
/// the pull-shaped convenience over [`StreamFieldDecoder`]. The *input* is
/// never buffered whole; the reconstruction of course is.
pub fn decompress_reader(
    registry: &Registry,
    input: &mut dyn std::io::Read,
) -> Result<Field, ArchiveReadError> {
    decompress_reader_limited(registry, input, usize::MAX)
}

/// [`decompress_reader`] with a reconstruction cap: streams whose declared
/// geometry (archive header dims, or a single frame's decoded field) exceeds
/// `max_elems` elements fail with [`DecompressError::Unsupported`] — for
/// archives *before* the destination field is allocated. This is the entry
/// point a server uses on untrusted sockets, so a hostile header cannot
/// drive resident memory.
pub fn decompress_reader_limited(
    registry: &Registry,
    input: &mut dyn std::io::Read,
    max_elems: usize,
) -> Result<Field, ArchiveReadError> {
    let over = || {
        ArchiveReadError::Archive(DecompressError::Unsupported(
            "reconstruction exceeds the element cap",
        ))
    };
    let mut decoder = StreamFieldDecoder::new(registry);
    let mut sink: Option<Field> = None;
    let mut buf = [0u8; 64 * 1024];
    loop {
        let n = input.read(&mut buf)?;
        if n == 0 {
            decoder.finish();
        } else {
            // A conforming `Read` never returns more than the buffer holds;
            // a broken one must not become an out-of-bounds slice.
            let fed =
                buf.get(..n)
                    .ok_or(ArchiveReadError::Archive(DecompressError::Inconsistent(
                        "reader returned more bytes than requested",
                    )))?;
            decoder.feed(fed);
        }
        while let Some(out) = decoder.poll().map_err(ArchiveReadError::Archive)? {
            match out {
                StreamOutput::Header(h) => {
                    if h.dims.len() > max_elems {
                        return Err(over());
                    }
                    sink = Some(Field::zeros(h.dims));
                }
                StreamOutput::Chunk(spec, chunk) => match sink.as_mut() {
                    Some(field) => field.write_block_valid(&spec, chunk.as_slice()),
                    None => {
                        return Err(ArchiveReadError::Archive(DecompressError::Inconsistent(
                            "chunk emitted before the archive header",
                        )))
                    }
                },
                StreamOutput::Field(field) => {
                    if field.len() > max_elems {
                        return Err(over());
                    }
                    sink = Some(field);
                }
            }
        }
        if n == 0 {
            return sink.ok_or(ArchiveReadError::Archive(DecompressError::Truncated(
                "empty stream",
            )));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::archive::{compress_field_with, ArchiveOptions};
    use aesz_metrics::{CodecId, ErrorBound};
    use aesz_tensor::Dims;

    #[test]
    fn pushed_archive_bytes_decode_chunk_by_chunk() {
        let registry = Registry::with_defaults();
        let field = aesz_datagen::Application::CesmCldhgh.generate(Dims::d2(24, 40), 11);
        let opts = ArchiveOptions::new().chunk(8).window(2);
        let lenses = [CodecId::Zfp, CodecId::Sz2, CodecId::SzInterp];
        let bound = ErrorBound::rel(1e-3);
        let (bytes, stats) = compress_field_with(&registry, &field, bound, &opts, |spec| {
            lenses[spec.index % lenses.len()]
        })
        .unwrap();
        let (buffered, _) = crate::archive::decompress(&registry, &bytes, 3).unwrap();

        // Feed in awkward 7-byte packets; the reconstruction must be
        // byte-identical to the buffered decode.
        let mut decoder = StreamFieldDecoder::new(&registry);
        let mut recon: Option<Field> = None;
        let mut chunks = 0;
        let mut drain = |d: &mut StreamFieldDecoder, recon: &mut Option<Field>| {
            while let Some(out) = d.poll().unwrap() {
                match out {
                    StreamOutput::Header(h) => {
                        assert_eq!(h.dims, field.dims());
                        *recon = Some(Field::zeros(h.dims));
                    }
                    StreamOutput::Chunk(spec, chunk) => {
                        chunks += 1;
                        recon
                            .as_mut()
                            .unwrap()
                            .write_block_valid(&spec, chunk.as_slice());
                    }
                    StreamOutput::Field(_) => panic!("archive stream, not a frame"),
                }
            }
        };
        for packet in bytes.chunks(7) {
            decoder.feed(packet);
            drain(&mut decoder, &mut recon);
        }
        decoder.finish();
        drain(&mut decoder, &mut recon);
        assert_eq!(chunks, stats.chunks);
        assert_eq!(recon.unwrap().as_slice(), buffered.as_slice());
        // Residency stayed far below the archive: parser buffering is
        // bounded by one section (frame/header/index slice), not the stream.
        assert!(decoder.peak_buffered() < bytes.len());
    }

    #[test]
    fn pushed_single_frames_yield_the_whole_field() {
        let mut registry = Registry::with_defaults();
        let field = aesz_datagen::Application::CesmCldhgh.generate(Dims::d2(16, 16), 3);
        let bytes = registry
            .get_mut(CodecId::SzAuto)
            .unwrap()
            .compress(&field, ErrorBound::rel(1e-3))
            .unwrap();
        let recon = decompress_reader(&registry, &mut &bytes[..]).unwrap();
        let buffered = registry.decompress_any(&bytes).unwrap().0;
        assert_eq!(recon.as_slice(), buffered.as_slice());
        // Truncations fail instead of hanging or panicking.
        for len in [0, 5, bytes.len() - 1] {
            assert!(decompress_reader(&registry, &mut &bytes[..len]).is_err());
        }
    }
}
